#pragma once

// Dense row-major float32 tensor. The whole library standardizes on the NCHW
// layout for 4-d tensors (batch, channels, height, width); lower-rank tensors
// are used for weights, flattened buffers and im2col matrices.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace parpde {

using Shape = std::vector<std::int64_t>;

// Number of elements of a shape (product of extents).
std::int64_t numel(const Shape& shape);

// Human-readable "[2, 4, 64, 64]".
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  // Takes ownership of `values`; size must match the shape.
  static Tensor from(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int ndim() const noexcept { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> values() noexcept { return data_; }
  [[nodiscard]] std::span<const float> values() const noexcept { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // 4-d NCHW accessors (bounds unchecked in release; asserted in debug).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }

  // 3-d CHW accessors (single-sample fields).
  float& at(std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(offset3(c, h, w))];
  }
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[static_cast<std::size_t>(offset3(c, h, w))];
  }

  // 2-d accessors (matrices).
  float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  void fill(float value);

  // Returns a copy with a new shape; element count must be preserved.
  [[nodiscard]] Tensor reshaped(Shape shape) const;

  // In-place reinterpretation of the shape (no data movement).
  void reshape(Shape shape);

 private:
  [[nodiscard]] std::int64_t offset4(std::int64_t n, std::int64_t c,
                                     std::int64_t h, std::int64_t w) const {
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }
  [[nodiscard]] std::int64_t offset3(std::int64_t c, std::int64_t h,
                                     std::int64_t w) const {
    return (c * shape_[1] + h) * shape_[2] + w;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace parpde
