#pragma once

// Dense row-major float32 tensor. The whole library standardizes on the NCHW
// layout for 4-d tensors (batch, channels, height, width); lower-rank tensors
// are used for weights, flattened buffers and im2col matrices.
//
// Element accessors are unchecked by default. Building with
// -DPARPDE_CHECKED_TENSOR=ON (the ASan leg of tools/check.sh does) makes
// operator[] and every at() overload verify rank and index ranges, throwing
// std::out_of_range with the offending index and shape.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace parpde {

using Shape = std::vector<std::int64_t>;

// Number of elements of a shape (product of extents).
std::int64_t numel(const Shape& shape);

// Human-readable "[2, 4, 64, 64]".
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  // Takes ownership of `values`; size must match the shape.
  static Tensor from(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int ndim() const noexcept { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> values() noexcept { return data_; }
  [[nodiscard]] std::span<const float> values() const noexcept { return data_; }

  float& operator[](std::int64_t i) {
    check_flat(i);
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    check_flat(i);
    return data_[static_cast<std::size_t>(i)];
  }

  // 4-d NCHW accessors (bounds unchecked unless PARPDE_CHECKED_TENSOR).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    check4(n, c, h, w);
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    check4(n, c, h, w);
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }

  // 3-d CHW accessors (single-sample fields).
  float& at(std::int64_t c, std::int64_t h, std::int64_t w) {
    check3(c, h, w);
    return data_[static_cast<std::size_t>(offset3(c, h, w))];
  }
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const {
    check3(c, h, w);
    return data_[static_cast<std::size_t>(offset3(c, h, w))];
  }

  // 2-d accessors (matrices).
  float& at(std::int64_t r, std::int64_t c) {
    check2(r, c);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    check2(r, c);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  void fill(float value);

  // Returns a copy with a new shape; element count must be preserved.
  [[nodiscard]] Tensor reshaped(Shape shape) const;

  // In-place reinterpretation of the shape (no data movement).
  void reshape(Shape shape);

 private:
  [[nodiscard]] std::int64_t offset4(std::int64_t n, std::int64_t c,
                                     std::int64_t h, std::int64_t w) const {
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }
  [[nodiscard]] std::int64_t offset3(std::int64_t c, std::int64_t h,
                                     std::int64_t w) const {
    return (c * shape_[1] + h) * shape_[2] + w;
  }

#ifdef PARPDE_CHECKED_TENSOR
  void check_rank(int want) const {
    if (ndim() != want) {
      throw std::out_of_range("Tensor: " + std::to_string(want) +
                              "-d accessor on tensor of shape " +
                              shape_to_string(shape_));
    }
  }
  void check_axis(std::int64_t i, int axis) const {
    if (i < 0 || i >= shape_[static_cast<std::size_t>(axis)]) {
      throw std::out_of_range(
          "Tensor: index " + std::to_string(i) + " out of range for axis " +
          std::to_string(axis) + " of shape " + shape_to_string(shape_));
    }
  }
  void check_flat(std::int64_t i) const {
    if (i < 0 || i >= size()) {
      throw std::out_of_range("Tensor: flat index " + std::to_string(i) +
                              " out of range for shape " +
                              shape_to_string(shape_));
    }
  }
  void check2(std::int64_t r, std::int64_t c) const {
    check_rank(2);
    check_axis(r, 0);
    check_axis(c, 1);
  }
  void check3(std::int64_t c, std::int64_t h, std::int64_t w) const {
    check_rank(3);
    check_axis(c, 0);
    check_axis(h, 1);
    check_axis(w, 2);
  }
  void check4(std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w) const {
    check_rank(4);
    check_axis(n, 0);
    check_axis(c, 1);
    check_axis(h, 2);
    check_axis(w, 3);
  }
#else
  // Checked builds only; zero-cost no-ops otherwise.
  void check_flat(std::int64_t) const noexcept {}
  void check2(std::int64_t, std::int64_t) const noexcept {}
  void check3(std::int64_t, std::int64_t, std::int64_t) const noexcept {}
  void check4(std::int64_t, std::int64_t, std::int64_t,
              std::int64_t) const noexcept {}
#endif

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace parpde
