#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace parpde {

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("numel: negative extent");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(numel(shape_)), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from(Shape shape, std::vector<float> values) {
  if (numel(shape) != static_cast<std::int64_t>(values.size())) {
    throw std::invalid_argument("Tensor::from: size mismatch for shape " +
                                shape_to_string(shape));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::reshaped(Shape shape) const {
  Tensor t = *this;
  t.reshape(std::move(shape));
  return t;
}

void Tensor::reshape(Shape shape) {
  if (numel(shape) != size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch (" +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(shape) + ")");
  }
  shape_ = std::move(shape);
}

}  // namespace parpde
