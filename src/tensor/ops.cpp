#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace parpde::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

void check_nchw(const Tensor& x, const char* what) {
  if (x.ndim() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected NCHW tensor, got " +
                                shape_to_string(x.shape()));
  }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

void axpy(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

void scale(Tensor& a, float s) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] *= s;
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) acc += a[i];
  return acc;
}

double mean(const Tensor& a) {
  if (a.size() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.size());
}

double max_abs(const Tensor& a) {
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a[i])));
  }
  return m;
}

double rms(const Tensor& a) {
  if (a.size() == 0) return 0.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double l2_distance(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "l2_distance");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

Tensor pad_nchw(const Tensor& x, std::int64_t pad, float value) {
  check_nchw(x, "pad_nchw");
  if (pad < 0) throw std::invalid_argument("pad_nchw: negative pad");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out = Tensor::full({n, c, h + 2 * pad, w + 2 * pad}, value);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t ih = 0; ih < h; ++ih) {
        const float* src = x.data() + (((in * c + ic) * h + ih) * w);
        float* dst = out.data() +
                     (((in * c + ic) * (h + 2 * pad) + ih + pad) * (w + 2 * pad) + pad);
        std::memcpy(dst, src, static_cast<std::size_t>(w) * sizeof(float));
      }
    }
  }
  return out;
}

Tensor crop_nchw(const Tensor& x, std::int64_t crop) {
  check_nchw(x, "crop_nchw");
  const auto h = x.dim(2), w = x.dim(3);
  if (crop < 0 || 2 * crop >= h || 2 * crop >= w) {
    throw std::invalid_argument("crop_nchw: crop too large");
  }
  return slice_hw(x, crop, h - 2 * crop, crop, w - 2 * crop);
}

Tensor slice_hw(const Tensor& x, std::int64_t h0, std::int64_t hh,
                std::int64_t w0, std::int64_t ww) {
  check_nchw(x, "slice_hw");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h0 < 0 || w0 < 0 || h0 + hh > h || w0 + ww > w || hh <= 0 || ww <= 0) {
    throw std::invalid_argument("slice_hw: window out of range");
  }
  Tensor out({n, c, hh, ww});
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t ih = 0; ih < hh; ++ih) {
        const float* src = x.data() + (((in * c + ic) * h + h0 + ih) * w + w0);
        float* dst = out.data() + (((in * c + ic) * hh + ih) * ww);
        std::memcpy(dst, src, static_cast<std::size_t>(ww) * sizeof(float));
      }
    }
  }
  return out;
}

void paste_hw(Tensor& dst, const Tensor& patch, std::int64_t h0, std::int64_t w0) {
  check_nchw(dst, "paste_hw");
  check_nchw(patch, "paste_hw");
  const auto n = dst.dim(0), c = dst.dim(1), h = dst.dim(2), w = dst.dim(3);
  const auto ph = patch.dim(2), pw = patch.dim(3);
  if (patch.dim(0) != n || patch.dim(1) != c || h0 < 0 || w0 < 0 ||
      h0 + ph > h || w0 + pw > w) {
    throw std::invalid_argument("paste_hw: patch does not fit");
  }
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t ih = 0; ih < ph; ++ih) {
        const float* src = patch.data() + (((in * c + ic) * ph + ih) * pw);
        float* out = dst.data() + (((in * c + ic) * h + h0 + ih) * w + w0);
        std::memcpy(out, src, static_cast<std::size_t>(pw) * sizeof(float));
      }
    }
  }
}

Tensor select_sample(const Tensor& x, std::int64_t n) {
  check_nchw(x, "select_sample");
  if (n < 0 || n >= x.dim(0)) throw std::invalid_argument("select_sample: bad index");
  const auto c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t stride = c * h * w;
  std::vector<float> values(static_cast<std::size_t>(stride));
  std::memcpy(values.data(), x.data() + n * stride,
              static_cast<std::size_t>(stride) * sizeof(float));
  return Tensor::from({1, c, h, w}, std::move(values));
}

Tensor stack_samples(const std::vector<Tensor>& samples) {
  if (samples.empty()) throw std::invalid_argument("stack_samples: empty input");
  const auto& first = samples.front();
  check_nchw(first, "stack_samples");
  const auto c = first.dim(1), h = first.dim(2), w = first.dim(3);
  Tensor out({static_cast<std::int64_t>(samples.size()), c, h, w});
  const std::int64_t stride = c * h * w;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (s.dim(0) != 1 || s.dim(1) != c || s.dim(2) != h || s.dim(3) != w) {
      throw std::invalid_argument("stack_samples: inconsistent sample shape");
    }
    std::memcpy(out.data() + static_cast<std::int64_t>(i) * stride, s.data(),
                static_cast<std::size_t>(stride) * sizeof(float));
  }
  return out;
}

}  // namespace parpde::ops
