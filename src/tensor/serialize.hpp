#pragma once

// Binary tensor (de)serialization: a small self-describing container used for
// model checkpoints and dataset dumps.
//
// Layout (little-endian):
//   magic "PPDT"  | u32 version | u32 ndim | i64 dims[ndim] | f32 data[numel]

#include <istream>
#include <ostream>
#include <string>

#include "tensor/tensor.hpp"

namespace parpde {

void write_tensor(std::ostream& out, const Tensor& t);
Tensor read_tensor(std::istream& in);

// Whole-file convenience wrappers.
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

}  // namespace parpde
