#pragma once

// Single-precision matrix multiplication kernels. The convolution layers are
// lowered to GEMM through im2col, so this is the compute hot spot of the whole
// library.
//
// The production kernels are cache-blocked and register-tiled: A is packed
// into MR-tall k-major panels, B is consumed in place when row-major (packed
// into NR-wide panels otherwise), and an MR x NR micro-kernel accumulates
// into registers (GotoBLAS loop structure). Work is split over the global
// util::ThreadPool across *row/column blocks only* — the k-summation of every
// C element always runs on one thread in one fixed order, so results are
// bit-identical at any thread count.
//
// The original triple loops are kept as gemm_naive_* reference
// implementations for tests and the kernel benchmark.

#include <cstdint>

namespace parpde {

// C[m x n] = A[m x k] * B[k x n], row-major, C overwritten.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

// C[m x n] = A^T * B where A is stored [k x m] and used transposed.
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

// C[m x n] += A[m x k] * B^T where B is stored [n x k].
void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n);

// Single-threaded reference versions of the four kernels above (the seed
// repo's original i-k-j loops). Used by tests to validate the blocked path
// and by bench_kernels as the speedup baseline.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n);
void gemm_naive_acc(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n);
void gemm_naive_at(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n);
void gemm_naive_bt_acc(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace parpde
