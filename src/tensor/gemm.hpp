#pragma once

// Single-precision matrix multiplication kernels. The convolution layers are
// lowered to GEMM through im2col, so this is the compute hot spot of the whole
// library. A register-blocked micro-kernel with k-major packing keeps it fast
// enough for the 256x256 full-scale runs without external BLAS.

#include <cstdint>

namespace parpde {

// C[m x n] = A[m x k] * B[k x n], row-major, C overwritten.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

// C[m x n] = A^T[k x m]^T * B ... i.e. A is stored [k x m] and used transposed.
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

// C[m x n] += A[m x k] * B^T where B is stored [n x k].
void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n);

}  // namespace parpde
