#pragma once

// Elementwise operations, reductions, and spatial pad/crop helpers on Tensor.
// All binary ops require identical shapes (no broadcasting — keeps the math
// explicit and the library small).

#include "tensor/tensor.hpp"

namespace parpde::ops {

// out = a + b, a - b, a ⊙ b (entrywise).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// In-place: a += s * b  (AXPY).
void axpy(Tensor& a, float s, const Tensor& b);
// In-place: a *= s.
void scale(Tensor& a, float s);

// Reductions over all elements.
double sum(const Tensor& a);
double mean(const Tensor& a);
double max_abs(const Tensor& a);
// Sqrt of the mean squared entry (RMS norm).
double rms(const Tensor& a);
// L2 distance between two tensors of equal shape.
double l2_distance(const Tensor& a, const Tensor& b);

// Spatial padding of an NCHW tensor with a constant value: adds `pad` rows and
// columns on each side of H and W.
Tensor pad_nchw(const Tensor& x, std::int64_t pad, float value = 0.0f);

// Crops `crop` rows/columns from each side of H and W of an NCHW tensor.
Tensor crop_nchw(const Tensor& x, std::int64_t crop);

// Extracts the window [h0, h0+hh) x [w0, w0+ww) from every sample/channel of
// an NCHW tensor.
Tensor slice_hw(const Tensor& x, std::int64_t h0, std::int64_t hh,
                std::int64_t w0, std::int64_t ww);

// Writes `patch` (NCHW) into `dst` (NCHW, same N and C) at offset (h0, w0).
void paste_hw(Tensor& dst, const Tensor& patch, std::int64_t h0, std::int64_t w0);

// Selects a single sample `n` from an NCHW tensor, producing a [1,C,H,W] tensor.
Tensor select_sample(const Tensor& x, std::int64_t n);

// Concatenates same-shaped [1,C,H,W] samples along the batch dimension.
Tensor stack_samples(const std::vector<Tensor>& samples);

}  // namespace parpde::ops
