#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace parpde {

namespace {

constexpr char kMagic[4] = {'P', 'P', 'D', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_tensor: truncated stream");
  return value;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(t.ndim()));
  for (int i = 0; i < t.ndim(); ++i) write_pod(out, t.dim(i));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_tensor: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) throw std::runtime_error("read_tensor: bad version");
  const auto ndim = read_pod<std::uint32_t>(in);
  if (ndim > 8) throw std::runtime_error("read_tensor: implausible rank");
  Shape shape(ndim);
  for (auto& d : shape) d = read_pod<std::int64_t>(in);
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!in) throw std::runtime_error("read_tensor: truncated data");
  return t;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensor: cannot open " + path);
  write_tensor(out, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor: cannot open " + path);
  return read_tensor(in);
}

}  // namespace parpde
