#pragma once

// im2col / col2im lowering for 2-d convolution (stride 1, square kernels,
// symmetric zero padding). The column matrix layout is
//   [Cin * kh * kw,  Hout * Wout]
// so that conv forward is a single GEMM with the [Cout, Cin*kh*kw] weight
// matrix.

#include <cstdint>

#include "tensor/tensor.hpp"

namespace parpde {

struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t height = 0;      // input height (unpadded)
  std::int64_t width = 0;       // input width (unpadded)
  std::int64_t kernel = 0;      // square kernel extent
  std::int64_t pad = 0;         // symmetric zero padding

  [[nodiscard]] std::int64_t out_height() const { return height + 2 * pad - kernel + 1; }
  [[nodiscard]] std::int64_t out_width() const { return width + 2 * pad - kernel + 1; }
  [[nodiscard]] std::int64_t col_rows() const { return in_channels * kernel * kernel; }
  [[nodiscard]] std::int64_t col_cols() const { return out_height() * out_width(); }
};

// Expands one CHW sample `x` into the column matrix `col` (preallocated,
// col_rows x col_cols, row-major). Out-of-range taps contribute zeros.
void im2col(const float* x, const ConvGeometry& g, float* col);

// Scatters a column matrix back into CHW sample gradients, accumulating
// overlapping contributions. `x_grad` must be zero-initialized by the caller.
void col2im(const float* col, const ConvGeometry& g, float* x_grad);

}  // namespace parpde
