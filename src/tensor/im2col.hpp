#pragma once

// im2col / col2im lowering for 2-d convolution (stride 1, square kernels,
// symmetric zero padding). The column matrix layout is
//   [Cin * kh * kw,  Hout * Wout]
// so that conv forward is a single GEMM with the [Cout, Cin*kh*kw] weight
// matrix.

#include <cstdint>

#include "tensor/tensor.hpp"

namespace parpde {

struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t height = 0;      // input height (unpadded)
  std::int64_t width = 0;       // input width (unpadded)
  std::int64_t kernel = 0;      // square kernel extent
  std::int64_t pad = 0;         // symmetric zero padding

  [[nodiscard]] std::int64_t out_height() const { return height + 2 * pad - kernel + 1; }
  [[nodiscard]] std::int64_t out_width() const { return width + 2 * pad - kernel + 1; }
  [[nodiscard]] std::int64_t col_rows() const { return in_channels * kernel * kernel; }
  [[nodiscard]] std::int64_t col_cols() const { return out_height() * out_width(); }
};

// Expands one CHW sample `x` into the column matrix `col` (preallocated,
// col_rows x col_cols, row-major). Out-of-range taps contribute zeros.
// `ld` is the row stride (leading dimension) of `col`; the default -1 means
// a dense matrix (ld == col_cols). A larger ld lets several samples share one
// wide [col_rows x N*col_cols] matrix, each writing its own column window.
void im2col(const float* x, const ConvGeometry& g, float* col,
            std::int64_t ld = -1);

// Scatters a column matrix back into CHW sample gradients, accumulating
// overlapping contributions. `x_grad` must be zero-initialized by the caller.
// `ld` as in im2col.
void col2im(const float* col, const ConvGeometry& g, float* x_grad,
            std::int64_t ld = -1);

// Whole-batch lowering: expands `batch` NCHW samples at `x` into one wide
// column matrix col[col_rows x batch*col_cols], sample s occupying columns
// [s*col_cols, (s+1)*col_cols). Samples are processed in parallel on the
// global thread pool; each writes a disjoint column window, so the result is
// bit-identical at any worker count.
void im2col_batched(const float* x, std::int64_t batch, const ConvGeometry& g,
                    float* col);

// Inverse of im2col_batched: scatters the wide column matrix back into the
// NCHW gradient `x_grad` (caller zero-initialized), parallel over samples.
void col2im_batched(const float* col, std::int64_t batch,
                    const ConvGeometry& g, float* x_grad);

}  // namespace parpde
