#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace parpde {

void im2col(const float* x, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = x + c * g.height * g.width;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y + ky - g.pad;
          float* orow = out + y * ow;
          if (sy < 0 || sy >= g.height) {
            std::memset(orow, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* srow = plane + sy * g.width;
          // Valid x-range of the shifted row: sx = x' + kx - pad in [0, W).
          const std::int64_t x_lo = std::max<std::int64_t>(0, g.pad - kx);
          const std::int64_t x_hi =
              std::min<std::int64_t>(ow, g.width + g.pad - kx);
          if (x_lo > 0) {
            std::memset(orow, 0, static_cast<std::size_t>(x_lo) * sizeof(float));
          }
          if (x_hi > x_lo) {
            std::memcpy(orow + x_lo, srow + x_lo + kx - g.pad,
                        static_cast<std::size_t>(x_hi - x_lo) * sizeof(float));
          }
          if (x_hi < ow) {
            std::memset(orow + x_hi, 0,
                        static_cast<std::size_t>(ow - x_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* x_grad) {
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = x_grad + c * g.height * g.width;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y + ky - g.pad;
          if (sy < 0 || sy >= g.height) continue;
          const float* irow = in + y * ow;
          float* drow = plane + sy * g.width;
          const std::int64_t x_lo = std::max<std::int64_t>(0, g.pad - kx);
          const std::int64_t x_hi =
              std::min<std::int64_t>(ow, g.width + g.pad - kx);
          for (std::int64_t xi = x_lo; xi < x_hi; ++xi) {
            drow[xi + kx - g.pad] += irow[xi];
          }
        }
      }
    }
  }
}

}  // namespace parpde
