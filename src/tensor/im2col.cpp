#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.hpp"

namespace parpde {

void im2col(const float* x, const ConvGeometry& g, float* col,
            std::int64_t ld) {
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t cols = ld < 0 ? oh * ow : ld;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = x + c * g.height * g.width;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y + ky - g.pad;
          float* orow = out + y * ow;
          if (sy < 0 || sy >= g.height) {
            std::memset(orow, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* srow = plane + sy * g.width;
          // Valid x-range of the shifted row: sx = x' + kx - pad in [0, W).
          const std::int64_t x_lo = std::max<std::int64_t>(0, g.pad - kx);
          const std::int64_t x_hi =
              std::min<std::int64_t>(ow, g.width + g.pad - kx);
          if (x_lo > 0) {
            std::memset(orow, 0, static_cast<std::size_t>(x_lo) * sizeof(float));
          }
          if (x_hi > x_lo) {
            std::memcpy(orow + x_lo, srow + x_lo + kx - g.pad,
                        static_cast<std::size_t>(x_hi - x_lo) * sizeof(float));
          }
          if (x_hi < ow) {
            std::memset(orow + x_hi, 0,
                        static_cast<std::size_t>(ow - x_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* x_grad,
            std::int64_t ld) {
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t cols = ld < 0 ? oh * ow : ld;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = x_grad + c * g.height * g.width;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in = col + row * cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y + ky - g.pad;
          if (sy < 0 || sy >= g.height) continue;
          const float* irow = in + y * ow;
          float* drow = plane + sy * g.width;
          const std::int64_t x_lo = std::max<std::int64_t>(0, g.pad - kx);
          const std::int64_t x_hi =
              std::min<std::int64_t>(ow, g.width + g.pad - kx);
          for (std::int64_t xi = x_lo; xi < x_hi; ++xi) {
            drow[xi + kx - g.pad] += irow[xi];
          }
        }
      }
    }
  }
}

void im2col_batched(const float* x, std::int64_t batch, const ConvGeometry& g,
                    float* col) {
  const std::int64_t in_stride = g.in_channels * g.height * g.width;
  const std::int64_t cols = g.col_cols();
  const std::int64_t ld = batch * cols;
  util::ThreadPool::global().parallel_for(
      batch, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t s = begin; s < end; ++s) {
          im2col(x + s * in_stride, g, col + s * cols, ld);
        }
      });
}

void col2im_batched(const float* col, std::int64_t batch,
                    const ConvGeometry& g, float* x_grad) {
  const std::int64_t in_stride = g.in_channels * g.height * g.width;
  const std::int64_t cols = g.col_cols();
  const std::int64_t ld = batch * cols;
  util::ThreadPool::global().parallel_for(
      batch, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t s = begin; s < end; ++s) {
          col2im(col + s * cols, g, x_grad + s * in_stride, ld);
        }
      });
}

}  // namespace parpde
