#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/aligned.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace parpde {

namespace {

// Micro-tile extents. MR x NR = 96 accumulators pack into 12 ymm (AVX2) or
// 6 zmm (AVX-512) with headroom for the B loads and the A broadcast; the
// micro-kernel is multi-versioned so those ISAs are used even in a baseline
// x86-64 build.
constexpr std::int64_t MR = 6;
constexpr std::int64_t NR = 16;
// Cache-block extents. KC is deliberately small: a direct-B tile sweep
// touches one 4 KiB page per B row per step, so kc is what bounds the live
// dTLB set — kc = 32 keeps it inside the L1 dTLB, which measures ~1.5x
// faster than kc = 256 on the wide conv GEMM shapes (page-walk bound).
// MC is a multiple of MR, NC of NR.
constexpr std::int64_t MC = 120;
constexpr std::int64_t KC = 32;
constexpr std::int64_t NC = 512;

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Generic element access for the packing routines: a(i, p) = a[i*rs + p*cs].
// The four public kernels only differ in these strides; packing absorbs the
// transposes so a single micro-kernel serves all of them.

// Packs rows [i0, i0+mc) x cols [p0, p0+kc) of A into MR-tall k-major panels:
// dst[panel][p * MR + r], short edge panels zero-padded. Zero rows contribute
// exact +0 products, so padding never perturbs results.
void pack_a(const float* a, std::int64_t rs, std::int64_t cs, std::int64_t i0,
            std::int64_t mc, std::int64_t p0, std::int64_t kc, float* dst) {
  for (std::int64_t i = 0; i < mc; i += MR) {
    const std::int64_t mr = std::min(MR, mc - i);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t r = 0;
      for (; r < mr; ++r) {
        dst[p * MR + r] = a[(i0 + i + r) * rs + (p0 + p) * cs];
      }
      for (; r < MR; ++r) dst[p * MR + r] = 0.0f;
    }
    dst += KC * MR;
  }
}

// Packs rows [p0, p0+kc) x cols [j0, j0+nc) of B into NR-wide k-major panels:
// dst[panel][p * NR + j], short edge panels zero-padded.
void pack_b(const float* b, std::int64_t rs, std::int64_t cs, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nc, float* dst) {
  if (cs == 1) {
    // Row-major B: sweep each source row once (sequential DRAM reads — the
    // panel-major order below would stride a full matrix row per load) and
    // scatter it across the NR-wide panels, which stay cache-resident.
    const std::int64_t nc_full = (nc / NR) * NR;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = b + (p0 + p) * rs + j0;
      for (std::int64_t j = 0; j < nc_full; j += NR) {
        std::memcpy(dst + (j / NR) * KC * NR + p * NR, src + j,
                    NR * sizeof(float));
      }
      if (nc_full < nc) {
        float* tail = dst + (nc_full / NR) * KC * NR + p * NR;
        std::int64_t q = 0;
        for (; q < nc - nc_full; ++q) tail[q] = src[nc_full + q];
        for (; q < NR; ++q) tail[q] = 0.0f;
      }
    }
    return;
  }
  for (std::int64_t j = 0; j < nc; j += NR) {
    const std::int64_t nr = std::min(NR, nc - j);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t q = 0;
      for (; q < nr; ++q) {
        dst[p * NR + q] = b[(p0 + p) * rs + (j0 + j + q) * cs];
      }
      for (; q < NR; ++q) dst[p * NR + q] = 0.0f;
    }
    dst += KC * NR;
  }
}

// MR x NR register tile: acc = Apanel * Bpanel over kc steps (acc is fully
// overwritten). One fixed code path for full and edge tiles (edges are
// zero-padded in the packs), so every C element sees the identical operation
// sequence regardless of where block boundaries fall — the bit-determinism
// contract of this file.
//
// The accumulators are GCC vector-extension values rather than plain arrays:
// letting the auto-vectorizer loop over a float[MR][NR] here produces a
// shuffle-bound SLP kernel an order of magnitude slower than the naive loops.
// With explicit vectors each k step is MR broadcast-FMAs against one B load,
// which is the GotoBLAS inner loop. Vector-extension arithmetic is
// elementwise, so the FLOP order (and thus the result) is unchanged.
//
// target_clones compiles AVX-512/AVX2+FMA versions next to the baseline and
// picks one at load time, so the packed panels are consumed at full SIMD
// width without requiring -march=native for the whole build. Clone choice is
// fixed per machine, so it cannot break thread-count determinism. The
// dispatch runs through an IFUNC resolver during early relocation — before
// the TSan/ASan runtimes initialize — so sanitized builds (tools/check.sh)
// fall back to single-version kernels; only SIMD width changes, not results.
typedef float vNf __attribute__((vector_size(NR * sizeof(float))));

#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define PARPDE_TARGET_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define PARPDE_TARGET_CLONES
#endif

// `pb` is either a packed NR-wide panel (ldb == NR) or, when B is row-major
// contiguous, a window straight into the caller's B (ldb == row stride) —
// full tiles then skip the B pack entirely, which is what makes the
// skinny-m conv shapes memory-efficient.
PARPDE_TARGET_CLONES
void micro_kernel(std::int64_t kc, const float* __restrict pa,
                  const float* __restrict pb, std::int64_t ldb,
                  float* __restrict acc) {
  static_assert(MR == 6, "micro_kernel is unrolled for MR == 6");
  vNf c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (std::int64_t p = 0; p < kc; ++p) {
    vNf b;
    __builtin_memcpy(&b, pb + p * ldb, sizeof(b));
    const float* ap = pa + p * MR;
    c0 += ap[0] * b;
    c1 += ap[1] * b;
    c2 += ap[2] * b;
    c3 += ap[3] * b;
    c4 += ap[4] * b;
    c5 += ap[5] * b;
  }
  __builtin_memcpy(acc + 0 * NR, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * NR, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * NR, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * NR, &c3, sizeof(c3));
  __builtin_memcpy(acc + 4 * NR, &c4, sizeof(c4));
  __builtin_memcpy(acc + 5 * NR, &c5, sizeof(c5));
}

// Short-tile variants: a skinny conv GEMM (m = 4 channels) run through the
// 6-row kernel wastes a third of its FMA slots on padded rows, so row counts
// below MR dispatch to a matching kernel. Rows it does compute see the exact
// FLOP sequence of the 6-row kernel (the variant choice depends only on the
// tile geometry), so determinism is unaffected.
PARPDE_TARGET_CLONES
void micro_kernel_4(std::int64_t kc, const float* __restrict pa,
                    const float* __restrict pb, std::int64_t ldb,
                    float* __restrict acc) {
  vNf c0{}, c1{}, c2{}, c3{};
  for (std::int64_t p = 0; p < kc; ++p) {
    vNf b;
    __builtin_memcpy(&b, pb + p * ldb, sizeof(b));
    const float* ap = pa + p * MR;
    c0 += ap[0] * b;
    c1 += ap[1] * b;
    c2 += ap[2] * b;
    c3 += ap[3] * b;
  }
  __builtin_memcpy(acc + 0 * NR, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * NR, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * NR, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * NR, &c3, sizeof(c3));
}

PARPDE_TARGET_CLONES
void micro_kernel_2(std::int64_t kc, const float* __restrict pa,
                    const float* __restrict pb, std::int64_t ldb,
                    float* __restrict acc) {
  vNf c0{}, c1{};
  for (std::int64_t p = 0; p < kc; ++p) {
    vNf b;
    __builtin_memcpy(&b, pb + p * ldb, sizeof(b));
    const float* ap = pa + p * MR;
    c0 += ap[0] * b;
    c1 += ap[1] * b;
  }
  __builtin_memcpy(acc + 0 * NR, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * NR, &c1, sizeof(c1));
}

// Dispatch on the live row count; acc rows >= the variant's height are left
// untouched and must be masked off by the caller's writeback.
void micro_kernel_mr(std::int64_t mr, std::int64_t kc,
                     const float* __restrict pa, const float* __restrict pb,
                     std::int64_t ldb, float* __restrict acc) {
  if (mr > 4) {
    micro_kernel(kc, pa, pb, ldb, acc);
  } else if (mr > 2) {
    micro_kernel_4(kc, pa, pb, ldb, acc);
  } else {
    micro_kernel_2(kc, pa, pb, ldb, acc);
  }
}

// Per-thread packing workspaces; persistent so steady-state training does no
// allocation in the hot path, 64-byte aligned for clean vector loads.
thread_local util::AlignedVector<float> t_pack_a;
thread_local util::AlignedVector<float> t_pack_b;

// Sequential blocked GEMM on the sub-matrix C[i0:i0+ms, j0:j0+ns] with the
// full k extent (k is never split across threads). GotoBLAS loop order:
// NC columns -> KC depth (packed B) -> MC rows (packed A) -> micro-tiles.
void gemm_block(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c,
                std::int64_t ldc, std::int64_t k, bool accumulate,
                std::int64_t i0, std::int64_t ms, std::int64_t j0,
                std::int64_t ns) {
  t_pack_a.resize(static_cast<std::size_t>(MC * KC));
  t_pack_b.resize(static_cast<std::size_t>(KC * NC));
  float* pa = t_pack_a.data();
  float* pb = t_pack_b.data();
  float acc[MR * NR];

  // Row-major B lets full tiles stream straight from the caller's buffer;
  // only the ragged right-edge panel (nr < NR, unsafe to vector-load past the
  // row end) gets packed. Transposed B (b_cs != 1) always packs.
  const bool direct_b = (b_cs == 1);

  for (std::int64_t jc = 0; jc < ns; jc += NC) {
    const std::int64_t nc = std::min(NC, ns - jc);
    const std::int64_t nc_full = direct_b ? (nc / NR) * NR : nc;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      const bool overwrite = !accumulate && pc == 0;
      if (nc_full < nc) {
        pack_b(b, b_rs, b_cs, pc, kc, j0 + jc + nc_full, nc - nc_full, pb);
      } else if (!direct_b) {
        pack_b(b, b_rs, b_cs, pc, kc, j0 + jc, nc, pb);
      }
      for (std::int64_t ic = 0; ic < ms; ic += MC) {
        const std::int64_t mc = std::min(MC, ms - ic);
        pack_a(a, a_rs, a_cs, i0 + ic, mc, pc, kc, pa);
        for (std::int64_t jr = 0; jr < nc;) {
          const std::int64_t nr = std::min(NR, nc - jr);
          const float* bpanel;
          std::int64_t ldb;
          if (direct_b && jr < nc_full) {
            bpanel = b + pc * b_rs + j0 + jc + jr;
            ldb = b_rs;
          } else {
            bpanel = pb + ((jr - nc_full * direct_b) / NR) * KC * NR;
            ldb = NR;
          }
          for (std::int64_t ir = 0; ir < mc; ir += MR) {
            const std::int64_t mr = std::min(MR, mc - ir);
            const float* apanel = pa + (ir / MR) * KC * MR;
            micro_kernel_mr(mr, kc, apanel, bpanel, ldb, acc);
            float* ctile = c + (i0 + ic + ir) * ldc + j0 + jc + jr;
            if (nr == NR) {
              // Full-width tile: whole-row vector copy/add. Matters for
              // small-k GEMMs where writeback rivals the kernel body.
              if (overwrite) {
                for (std::int64_t i = 0; i < mr; ++i) {
                  __builtin_memcpy(ctile + i * ldc, acc + i * NR,
                                   NR * sizeof(float));
                }
              } else {
                for (std::int64_t i = 0; i < mr; ++i) {
                  vNf cv, av;
                  __builtin_memcpy(&cv, ctile + i * ldc, sizeof(cv));
                  __builtin_memcpy(&av, acc + i * NR, sizeof(av));
                  cv += av;
                  __builtin_memcpy(ctile + i * ldc, &cv, sizeof(cv));
                }
              }
            } else if (overwrite) {
              for (std::int64_t i = 0; i < mr; ++i) {
                for (std::int64_t j = 0; j < nr; ++j) {
                  ctile[i * ldc + j] = acc[i * NR + j];
                }
              }
            } else {
              for (std::int64_t i = 0; i < mr; ++i) {
                for (std::int64_t j = 0; j < nr; ++j) {
                  ctile[i * ldc + j] += acc[i * NR + j];
                }
              }
            }
          }
          jr += NR;
        }
      }
    }
  }
}

// Threaded entry point: splits C into row/column stripes (multiples of the
// micro-tile so packing stays aligned) and runs gemm_block per stripe on the
// global pool. Only m and n are partitioned — never k — so results are
// bit-identical for any worker count.
void gemm_strided(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                  const float* b, std::int64_t b_rs, std::int64_t b_cs,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n,
                  bool accumulate) {
  // Flop accounting for the run report; references cached once, so the
  // steady-state cost is two relaxed fetch_adds per GEMM call.
  static telemetry::Counter& flops = telemetry::counter("gemm.flops");
  static telemetry::Counter& calls = telemetry::counter("gemm.calls");
  flops.add(static_cast<std::uint64_t>(2 * m * k * n));
  calls.add(1);
  // The tensor-layer GEMM is fp32 on every backend; tag the span so Chrome
  // traces separate it from the int8 conv spans ("conv.int8" in the backend).
  telemetry::Span span("gemm.fp32", "gemm");

  auto& pool = util::ThreadPool::global();
  // Below ~0.5 MFLOP the fork/join overhead dominates; run inline.
  if (pool.workers() == 0 || m * n * k < (std::int64_t{1} << 18)) {
    gemm_block(a, a_rs, a_cs, b, b_rs, b_cs, c, n, k, accumulate, 0, m, 0, n);
    return;
  }

  const std::int64_t target = 4 * pool.degree();
  const std::int64_t tiles_n = ceil_div(n, NR);
  const std::int64_t tiles_m = ceil_div(m, MR);
  std::int64_t tn = std::min(tiles_n, target);
  std::int64_t tm = std::min(tiles_m, ceil_div(target, tn));
  const std::int64_t step_n = ceil_div(tiles_n, tn) * NR;
  const std::int64_t step_m = ceil_div(tiles_m, tm) * MR;
  tn = ceil_div(n, step_n);
  tm = ceil_div(m, step_m);

  pool.parallel_for(tn * tm, 1, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t t = begin; t < end; ++t) {
      const std::int64_t i0 = (t / tn) * step_m;
      const std::int64_t j0 = (t % tn) * step_n;
      gemm_block(a, a_rs, a_cs, b, b_rs, b_cs, c, n, k, accumulate, i0,
                 std::min(step_m, m - i0), j0, std::min(step_n, n - j0));
    }
  });
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  gemm_strided(a, k, 1, b, n, 1, c, m, k, n, /*accumulate=*/false);
}

void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  gemm_strided(a, k, 1, b, n, 1, c, m, k, n, /*accumulate=*/true);
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  // A stored [k x m]: a(i, p) = a[p*m + i].
  gemm_strided(a, 1, m, b, n, 1, c, m, k, n, /*accumulate=*/false);
}

void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  // B stored [n x k]: b(p, j) = b[j*k + p].
  gemm_strided(a, k, 1, b, 1, k, c, m, k, n, /*accumulate=*/true);
}

// ---------------------------------------------------------------------------
// Naive reference kernels: the seed repo's original loops, single-threaded.

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_naive_acc(a, b, c, m, k, n);
}

void gemm_naive_acc(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_naive_at(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_naive_bt_acc(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace parpde
