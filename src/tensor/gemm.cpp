#include "tensor/gemm.hpp"

#include <cstring>

namespace parpde {

namespace {

// i-k-j loop order: the inner j loop is a contiguous SAXPY over a C row, which
// the compiler auto-vectorizes; A is read once per (i,k), B rows stream
// sequentially. Good enough to stay within ~2-3x of a tuned BLAS for the
// small-k GEMMs produced by im2col (k = Cin * kh * kw <= 400 here).
void gemm_core(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  gemm_core(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  gemm_core(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  // A stored [k x m]; C = A^T * B. Loop p over k: for each p, A^T column
  // access a[p*m + i] is strided but the inner j loop stays contiguous.
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  // B stored [n x k]; C += A * B^T. Inner loop is a dot product over
  // contiguous rows of both A and B.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace parpde
