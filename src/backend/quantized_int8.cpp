#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "tensor/im2col.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PARPDE_INT8_X86 1
#endif

// QuantizedInt8Backend — inference-only int8 execution provider.
//
// Numerics (see docs/performance.md for the calibration scheme):
//   - Weights: per-output-channel symmetric, qw = round(w / s_w[c]) clamped
//     to ±63. Seven bits instead of eight so the AVX2 vpmaddubsw pair sums
//     (max 2*255*63 = 32130) cannot saturate int16 — every ISA path computes
//     the identical int32 accumulator.
//   - Activations: uint8, zero point 128, fixed per-layer scale
//     s_x = max_abs * headroom / 127 from a one-time fp32 calibration pass.
//     A fixed scale (never derived from the tile at hand) is what makes the
//     overlapped engine's interior/rim sub-tile evaluation bit-identical to
//     the serialized full-tile pass.
//   - Accumulation: int32, exact. The zero-point correction
//     corr[c] = 128 * sum_p qw[c][p] is folded in by the epilogue:
//     y = (float)(acc - corr[c]) * (s_x * s_w[c]) + bias[c], then the fused
//     activation. The epilogue is compiled once (no per-ISA clones), so its
//     float contraction is the same no matter which int8 kernel ran.
//
// Layout: K is padded to a multiple of 4 and Cout to a multiple of 4 with
// zero weight rows, so the micro-kernel always works on full 4-row x
// 16-column int32 tiles; each 16-column block packs its B panel as
// panel[g*64 + j*4 + t] = colrow(4g+t)[j0+j] (the byte-quad layout vpdpbusd
// consumes directly). Column rows are addressed through a per-call offset
// table: for unpadded convs (the halo-pad rollout path) row r = (c,ky,kx)
// of the implicit column matrix is just the quantized input shifted by
// (c*h + ky)*w + kx, so the panel packs straight out of the small qin tile
// and the big column matrix is never materialized; padded convs fall back
// to an explicit uint8 im2col (pad byte 128 == the quantized zero) with
// off[r] = r*plane. Parallelism is over column blocks only — each thread
// writes disjoint output columns, so results are bit-identical at any
// worker count.

namespace parpde::backend {

namespace {

constexpr std::int64_t kBlockCols = 16;  // columns per micro-kernel block
constexpr std::int64_t kQuantizeGrain = 1 << 14;
// Calibration headroom: activations may exceed the step-0 calibrated range
// as the autoregressive rollout drifts; 2x costs one bit of resolution and
// keeps later steps inside the representable range.
constexpr float kHeadroom = 2.0f;

std::int64_t round_up4(std::int64_t v) { return (v + 3) & ~std::int64_t{3}; }

// --- per-layer quantized state ---------------------------------------------

struct QLayer {
  std::int64_t cin = 0, cout = 0, kernel = 0, pad = 0;
  std::int64_t krows = 0;    // cin*k*k (real K extent)
  std::int64_t kpad = 0;     // K rounded up to a multiple of 4
  std::int64_t kgroups = 0;  // kpad / 4
  std::int64_t cpad = 0;     // Cout rounded up to a multiple of 4
  const float* bias = nullptr;
  Fused fused = Fused::kNone;
  float slope = 0.0f;

  util::AlignedVector<std::int32_t> wq;      // [cpad x kgroups] packed quads
  util::AlignedVector<std::int32_t> corr;    // [cpad] 128 * sum(qw row)
  util::AlignedVector<float> wscale;         // [cout] per-channel weight scale
  util::AlignedVector<float> dscale;         // [cpad] s_x * wscale (calibrated)
  float sx = 1.0f;      // activation scale (set by calibration)
  float inv_sx = 1.0f;  // 1 / sx
};

class Int8PlanContext final : public PlanContext {
 public:
  Int8PlanContext(const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
                  std::int64_t max_w, std::int64_t max_batch) {
    std::int64_t h = max_h, w = max_w;
    std::int64_t qin_peak = 0, qcol_peak = 0, off_peak = 0;
    layers_.reserve(layers.size());
    for (const ConvLayerDesc& l : layers) {
      QLayer q;
      q.cin = l.in_channels;
      q.cout = l.out_channels;
      q.kernel = l.kernel;
      q.pad = l.pad;
      q.krows = l.in_channels * l.kernel * l.kernel;
      q.kpad = round_up4(q.krows);
      q.kgroups = q.kpad / 4;
      q.cpad = round_up4(l.out_channels);
      q.bias = l.bias;
      q.fused = l.fused;
      q.slope = l.slope;
      quantize_weights(q, l.weight);
      const ConvGeometry g{q.cin, h, w, q.kernel, q.pad};
      // +16 slack: the direct-from-qin panel pack vector-loads up to 14
      // bytes past the tile (the lanes are discarded by the epilogue). In a
      // batch the interior samples' overshoot reads the next sample's bytes
      // instead — still defined memory, still discarded lanes.
      qin_peak = std::max(qin_peak, max_batch * q.cin * h * w + 16);
      // +64 slack: same story for the right-edge pack out of the explicit
      // column matrix (padded convs only).
      if (q.pad > 0) {
        qcol_peak = std::max(qcol_peak, max_batch * q.kpad * g.col_cols() + 64);
      }
      off_peak = std::max(off_peak, q.kpad);
      panel_bytes_ = std::max(panel_bytes_, q.kgroups * 64);
      acc_ints_ = std::max(acc_ints_, q.cpad * kBlockCols);
      h = g.out_height();
      w = g.out_width();
      layers_.push_back(std::move(q));
    }
    qin_.resize(static_cast<std::size_t>(qin_peak));
    qcol_.resize(static_cast<std::size_t>(qcol_peak));
    off_.resize(static_cast<std::size_t>(off_peak));
  }

  [[nodiscard]] std::uint64_t growth_events() const noexcept override {
    return growths_;
  }

  std::uint8_t* qin(std::int64_t bytes) { return ensure(qin_, bytes); }
  std::uint8_t* qcol(std::int64_t bytes) { return ensure(qcol_, bytes); }
  std::int32_t* off(std::int64_t entries) {
    if (static_cast<std::int64_t>(off_.size()) < entries) {
      off_.resize(static_cast<std::size_t>(entries));
      ++growths_;
    }
    return off_.data();
  }

  [[nodiscard]] const QLayer& layer(int i) const {
    return layers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] bool calibrated() const noexcept { return calibrated_; }
  [[nodiscard]] std::int64_t panel_bytes() const noexcept { return panel_bytes_; }
  [[nodiscard]] std::int64_t acc_ints() const noexcept { return acc_ints_; }

  void set_ranges(const std::vector<float>& max_abs) {
    if (max_abs.size() != layers_.size()) {
      throw std::invalid_argument(
          "QuantizedInt8Backend: one input range per conv layer required");
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      QLayer& q = layers_[i];
      q.sx = max_abs[i] > 0.0f ? max_abs[i] * kHeadroom / 127.0f : 1.0f;
      q.inv_sx = 1.0f / q.sx;
      for (std::int64_t c = 0; c < q.cout; ++c) {
        q.dscale[static_cast<std::size_t>(c)] =
            q.sx * q.wscale[static_cast<std::size_t>(c)];
      }
    }
    calibrated_ = true;
  }

 private:
  static void quantize_weights(QLayer& q, const float* w) {
    q.wq.assign(static_cast<std::size_t>(q.cpad * q.kgroups), 0);
    q.corr.assign(static_cast<std::size_t>(q.cpad), 0);
    q.wscale.assign(static_cast<std::size_t>(q.cout), 0.0f);
    q.dscale.assign(static_cast<std::size_t>(q.cpad), 0.0f);
    std::vector<std::int8_t> row(static_cast<std::size_t>(q.kpad));
    for (std::int64_t c = 0; c < q.cout; ++c) {
      const float* wrow = w + c * q.krows;
      float maxw = 0.0f;
      for (std::int64_t p = 0; p < q.krows; ++p) {
        maxw = std::max(maxw, std::fabs(wrow[p]));
      }
      const float scale = maxw > 0.0f ? maxw / 63.0f : 1.0f;
      const float inv = 1.0f / scale;
      q.wscale[static_cast<std::size_t>(c)] = scale;
      std::fill(row.begin(), row.end(), std::int8_t{0});
      std::int32_t sum = 0;
      for (std::int64_t p = 0; p < q.krows; ++p) {
        const long v = std::lrintf(wrow[p] * inv);
        const auto qv = static_cast<std::int8_t>(
            std::clamp<long>(v, -63, 63));
        row[static_cast<std::size_t>(p)] = qv;
        sum += qv;
      }
      std::memcpy(&q.wq[static_cast<std::size_t>(c * q.kgroups)], row.data(),
                  static_cast<std::size_t>(q.kpad));
      q.corr[static_cast<std::size_t>(c)] = 128 * sum;
    }
  }

  std::uint8_t* ensure(util::AlignedVector<std::uint8_t>& buf,
                       std::int64_t bytes) {
    if (static_cast<std::int64_t>(buf.size()) < bytes) {
      buf.resize(static_cast<std::size_t>(bytes));
      ++growths_;
    }
    return buf.data();
  }

  std::vector<QLayer> layers_;
  util::AlignedVector<std::uint8_t> qin_;
  util::AlignedVector<std::uint8_t> qcol_;
  util::AlignedVector<std::int32_t> off_;  // column-row offset table
  std::int64_t panel_bytes_ = 0;
  std::int64_t acc_ints_ = 0;
  std::uint64_t growths_ = 0;
  bool calibrated_ = false;
};

// Per-thread micro-kernel scratch (panel + accumulator tile); persists across
// calls like the fp32 GEMM packing buffers, so the steady state never
// allocates.
thread_local util::AlignedVector<std::uint8_t> t_qpanel;
thread_local util::AlignedVector<std::int32_t> t_qacc;

// --- quantization + uint8 im2col -------------------------------------------

// Round-to-nearest-even (cvtps2dq under the default MXCSR == lrintf), add
// the 128 zero point, saturate to [0, 255]. The scalar tail goes through
// the same cvt instruction (_mm_cvtss_si32) and mimics the packed path's
// wrap-then-saturate, so an element quantizes to the same byte no matter
// where the vector/tail boundary falls — the boundary shifts between the
// overlapped engine's interior/rim sub-tiles and the serialized full tile.
void quantize_u8(const float* x, std::int64_t n, float inv_sx,
                 std::uint8_t* q) {
  // Health monitor: values the uint8 clamp actually clipped. Counted per
  // chunk into a thread-local accumulator, published once per chunk — the
  // saturating pack stays branch-free and the clean path costs two compares
  // per vector. Persistent saturation means the calibrated activation scale
  // no longer covers the data (HealthReport::quant_saturations).
  static telemetry::Counter& saturated =
      telemetry::counter("backend.int8.saturated");
  util::ThreadPool::global().parallel_for(
      n, kQuantizeGrain, [&](std::int64_t b, std::int64_t e) {
        std::uint64_t clipped = 0;
#if defined(PARPDE_INT8_X86)
        const __m128 s = _mm_set1_ps(inv_sx);
        const __m128i zp = _mm_set1_epi32(128);
        const __m128i lo = _mm_setzero_si128();
        const __m128i hi = _mm_set1_epi32(255);
        std::int64_t i = b;
        for (; i + 16 <= e; i += 16) {
          const __m128i a0 = _mm_add_epi32(
              _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i), s)), zp);
          const __m128i a1 = _mm_add_epi32(
              _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 4), s)), zp);
          const __m128i a2 = _mm_add_epi32(
              _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 8), s)), zp);
          const __m128i a3 = _mm_add_epi32(
              _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 12), s)), zp);
          _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                           _mm_packus_epi16(_mm_packs_epi32(a0, a1),
                                            _mm_packs_epi32(a2, a3)));
          const __m128i bad01 = _mm_or_si128(
              _mm_or_si128(_mm_cmplt_epi32(a0, lo), _mm_cmpgt_epi32(a0, hi)),
              _mm_or_si128(_mm_cmplt_epi32(a1, lo), _mm_cmpgt_epi32(a1, hi)));
          const __m128i bad23 = _mm_or_si128(
              _mm_or_si128(_mm_cmplt_epi32(a2, lo), _mm_cmpgt_epi32(a2, hi)),
              _mm_or_si128(_mm_cmplt_epi32(a3, lo), _mm_cmpgt_epi32(a3, hi)));
          if (_mm_movemask_epi8(_mm_or_si128(bad01, bad23)) != 0) {
            // Rare path: re-test each register to get an exact lane count.
            const __m128i regs[4] = {a0, a1, a2, a3};
            for (const __m128i& a : regs) {
              const int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_or_si128(
                  _mm_cmplt_epi32(a, lo), _mm_cmpgt_epi32(a, hi))));
              clipped += static_cast<std::uint64_t>(
                  std::popcount(static_cast<unsigned>(mask)));
            }
          }
        }
        for (; i < e; ++i) {
          const auto v = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(_mm_cvtss_si32(
                  _mm_mul_ss(_mm_set_ss(x[i]), _mm_set_ss(inv_sx)))) +
              128u);
          clipped += static_cast<std::uint64_t>(v < 0 || v > 255);
          q[i] = static_cast<std::uint8_t>(std::clamp<std::int32_t>(v, 0, 255));
        }
#else
        for (std::int64_t i = b; i < e; ++i) {
          const long v = std::lrintf(x[i] * inv_sx) + 128;
          clipped += static_cast<std::uint64_t>(v < 0 || v > 255);
          q[i] = static_cast<std::uint8_t>(std::clamp<long>(v, 0, 255));
        }
#endif
        if (clipped != 0) saturated.add(clipped);
      });
}

// uint8 twin of parpde::im2col: identical loop structure, pad byte 128
// (the quantized zero, so zero padding commutes with quantization).
void im2col_u8(const std::uint8_t* x, const ConvGeometry& g,
               std::uint8_t* col) {
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t plane = oh * ow;
  std::int64_t r = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const std::uint8_t* src = x + c * g.height * g.width;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++r) {
        std::uint8_t* dst = col + r * plane;
        const std::int64_t x_lo = std::max<std::int64_t>(0, g.pad - kx);
        const std::int64_t x_hi =
            std::min<std::int64_t>(ow, g.width + g.pad - kx);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y + ky - g.pad;
          std::uint8_t* drow = dst + y * ow;
          if (sy < 0 || sy >= g.height) {
            std::memset(drow, 128, static_cast<std::size_t>(ow));
            continue;
          }
          if (x_lo > 0) std::memset(drow, 128, static_cast<std::size_t>(x_lo));
          if (x_hi > x_lo) {
            std::memcpy(drow + x_lo, src + sy * g.width + x_lo + kx - g.pad,
                        static_cast<std::size_t>(x_hi - x_lo));
          }
          if (ow > x_hi) {
            std::memset(drow + x_hi, 128, static_cast<std::size_t>(ow - x_hi));
          }
        }
      }
    }
  }
}

// --- B-panel packing --------------------------------------------------------

// panel[g*64 + j*4 + t] = base[off[4g+t] + j] for 16 columns — the row
// offsets come from the per-call table, so the same pack serves both the
// direct-from-qin path and the explicit column matrix. The 4x16 byte
// transpose runs in ~11 SSE2 ops per k-group; edge blocks pack a full 16
// columns anyway (the loads stay inside the buffer thanks to the slack
// bytes) and the epilogue simply discards the out-of-range lanes.
#if defined(PARPDE_INT8_X86)
void pack_panel(const std::uint8_t* base, const std::int32_t* off,
                std::int64_t kgroups, std::uint8_t* panel) {
  for (std::int64_t g = 0; g < kgroups; ++g) {
    const std::int32_t* o = off + 4 * g;
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + o[0]));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + o[1]));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + o[2]));
    const __m128i v3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + o[3]));
    const __m128i ab_lo = _mm_unpacklo_epi8(v0, v1);
    const __m128i ab_hi = _mm_unpackhi_epi8(v0, v1);
    const __m128i cd_lo = _mm_unpacklo_epi8(v2, v3);
    const __m128i cd_hi = _mm_unpackhi_epi8(v2, v3);
    __m128i* out = reinterpret_cast<__m128i*>(panel + g * 64);
    _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));  // cols 0-3
    _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));  // cols 4-7
    _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));  // cols 8-11
    _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));  // 12-15
  }
}
#else
void pack_panel(const std::uint8_t* base, const std::int32_t* off,
                std::int64_t kgroups, std::uint8_t* panel) {
  for (std::int64_t g = 0; g < kgroups; ++g) {
    for (std::int64_t j = 0; j < kBlockCols; ++j) {
      for (std::int64_t t = 0; t < 4; ++t) {
        panel[g * 64 + j * 4 + t] = base[off[4 * g + t] + j];
      }
    }
  }
}
#endif

// --- int8 micro-kernels -----------------------------------------------------

// acc[r*16 + j] = sum_g sum_t panel[g*64 + j*4 + t] * qw_byte(r, 4g+t) for
// all cpad rows of one 16-column block. Weights stay within ±63, so every
// path below produces the identical int32 result (no int16 saturation is
// reachable on the AVX2 path).
using KernelFn = void (*)(const std::uint8_t*, const std::int32_t*,
                          std::int64_t, std::int64_t, std::int32_t*);

void kernel_scalar(const std::uint8_t* panel, const std::int32_t* wq,
                   std::int64_t kgroups, std::int64_t row_quads,
                   std::int32_t* acc) {
  for (std::int64_t r = 0; r < 4 * row_quads; ++r) {
    const std::int32_t* wrow = wq + r * kgroups;
    std::int32_t* arow = acc + r * kBlockCols;
    for (std::int64_t j = 0; j < kBlockCols; ++j) arow[j] = 0;
    for (std::int64_t g = 0; g < kgroups; ++g) {
      std::int8_t w4[4];
      std::memcpy(w4, &wrow[g], 4);
      const std::uint8_t* pj = panel + g * 64;
      for (std::int64_t j = 0; j < kBlockCols; ++j) {
        std::int32_t s = 0;
        for (std::int64_t t = 0; t < 4; ++t) {
          s += static_cast<std::int32_t>(pj[j * 4 + t]) *
               static_cast<std::int32_t>(w4[t]);
        }
        arow[j] += s;
      }
    }
  }
}

#if defined(PARPDE_INT8_X86)
__attribute__((target("avx2"))) void kernel_avx2(
    const std::uint8_t* panel, const std::int32_t* wq, std::int64_t kgroups,
    std::int64_t row_quads, std::int32_t* acc) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t rq = 0; rq < row_quads; ++rq) {
    const std::int32_t* w0 = wq + (rq * 4 + 0) * kgroups;
    const std::int32_t* w1 = wq + (rq * 4 + 1) * kgroups;
    const std::int32_t* w2 = wq + (rq * 4 + 2) * kgroups;
    const std::int32_t* w3 = wq + (rq * 4 + 3) * kgroups;
    __m256i a0lo = _mm256_setzero_si256(), a0hi = _mm256_setzero_si256();
    __m256i a1lo = _mm256_setzero_si256(), a1hi = _mm256_setzero_si256();
    __m256i a2lo = _mm256_setzero_si256(), a2hi = _mm256_setzero_si256();
    __m256i a3lo = _mm256_setzero_si256(), a3hi = _mm256_setzero_si256();
    for (std::int64_t g = 0; g < kgroups; ++g) {
      const __m256i blo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(panel + g * 64));
      const __m256i bhi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(panel + g * 64 + 32));
      // vpmaddubsw pairs (max |2*255*63| < 2^15) then vpmaddwd completes the
      // exact 4-byte dot product per 32-bit lane.
      const __m256i q0 = _mm256_set1_epi32(w0[g]);
      a0lo = _mm256_add_epi32(
          a0lo, _mm256_madd_epi16(_mm256_maddubs_epi16(blo, q0), ones));
      a0hi = _mm256_add_epi32(
          a0hi, _mm256_madd_epi16(_mm256_maddubs_epi16(bhi, q0), ones));
      const __m256i q1 = _mm256_set1_epi32(w1[g]);
      a1lo = _mm256_add_epi32(
          a1lo, _mm256_madd_epi16(_mm256_maddubs_epi16(blo, q1), ones));
      a1hi = _mm256_add_epi32(
          a1hi, _mm256_madd_epi16(_mm256_maddubs_epi16(bhi, q1), ones));
      const __m256i q2 = _mm256_set1_epi32(w2[g]);
      a2lo = _mm256_add_epi32(
          a2lo, _mm256_madd_epi16(_mm256_maddubs_epi16(blo, q2), ones));
      a2hi = _mm256_add_epi32(
          a2hi, _mm256_madd_epi16(_mm256_maddubs_epi16(bhi, q2), ones));
      const __m256i q3 = _mm256_set1_epi32(w3[g]);
      a3lo = _mm256_add_epi32(
          a3lo, _mm256_madd_epi16(_mm256_maddubs_epi16(blo, q3), ones));
      a3hi = _mm256_add_epi32(
          a3hi, _mm256_madd_epi16(_mm256_maddubs_epi16(bhi, q3), ones));
    }
    std::int32_t* out = acc + rq * 4 * kBlockCols;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0), a0lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), a0hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16), a1lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 24), a1hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32), a2lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 40), a2hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 48), a3lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 56), a3hi);
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
kernel_vnni(const std::uint8_t* panel, const std::int32_t* wq,
            std::int64_t kgroups, std::int64_t row_quads, std::int32_t* acc) {
  for (std::int64_t rq = 0; rq < row_quads; ++rq) {
    const std::int32_t* w0 = wq + (rq * 4 + 0) * kgroups;
    const std::int32_t* w1 = wq + (rq * 4 + 1) * kgroups;
    const std::int32_t* w2 = wq + (rq * 4 + 2) * kgroups;
    const std::int32_t* w3 = wq + (rq * 4 + 3) * kgroups;
    __m512i a0 = _mm512_setzero_si512();
    __m512i a1 = _mm512_setzero_si512();
    __m512i a2 = _mm512_setzero_si512();
    __m512i a3 = _mm512_setzero_si512();
    for (std::int64_t g = 0; g < kgroups; ++g) {
      const __m512i b = _mm512_loadu_si512(panel + g * 64);
      a0 = _mm512_dpbusd_epi32(a0, b, _mm512_set1_epi32(w0[g]));
      a1 = _mm512_dpbusd_epi32(a1, b, _mm512_set1_epi32(w1[g]));
      a2 = _mm512_dpbusd_epi32(a2, b, _mm512_set1_epi32(w2[g]));
      a3 = _mm512_dpbusd_epi32(a3, b, _mm512_set1_epi32(w3[g]));
    }
    std::int32_t* out = acc + rq * 4 * kBlockCols;
    _mm512_storeu_si512(out + 0, a0);
    _mm512_storeu_si512(out + 16, a1);
    _mm512_storeu_si512(out + 32, a2);
    _mm512_storeu_si512(out + 48, a3);
  }
}
#endif  // PARPDE_INT8_X86

KernelFn pick_kernel() {
#if defined(PARPDE_INT8_X86)
  // Explicit dispatch through a cached function pointer (no IFUNC), so the
  // sanitizer builds that disable PARPDE_TARGET_CLONES stay clean here too.
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return kernel_vnni;
  }
  if (__builtin_cpu_supports("avx2")) return kernel_avx2;
#endif
  return kernel_scalar;
}

const KernelFn g_kernel = pick_kernel();

// --- fused dequant epilogue -------------------------------------------------

// Compiled exactly once (no target clones): the int32 -> float conversion,
// scale, bias and activation use one fixed instruction sequence regardless
// of which int8 kernel produced the accumulators — a prerequisite for the
// backend's bit-determinism guarantee. On x86 the sequence is hand-written
// SSE2 (separate mulps/addps, never FMA) and EVERY element goes through the
// same 4-wide ops — edge blocks compute full vectors and store only the
// valid lanes — so results cannot depend on where a tail begins.
#if defined(PARPDE_INT8_X86)

inline void store_lanes(float* dst, __m128 v, std::int64_t count) {
  if (count >= 4) {
    _mm_storeu_ps(dst, v);
    return;
  }
  alignas(16) float tmp[4];
  _mm_store_ps(tmp, v);
  for (std::int64_t t = 0; t < count; ++t) dst[t] = tmp[t];
}

void dequant_epilogue(const std::int32_t* acc, const QLayer& l,
                      std::int64_t j0, std::int64_t jn, std::int64_t plane,
                      float* y) {
  const __m128 zero = _mm_setzero_ps();
  const __m128 slope = _mm_set1_ps(l.slope);
  for (std::int64_t c = 0; c < l.cout; ++c) {
    const std::int32_t* arow = acc + c * kBlockCols;
    const __m128i corr = _mm_set1_epi32(l.corr[static_cast<std::size_t>(c)]);
    const __m128 ds = _mm_set1_ps(l.dscale[static_cast<std::size_t>(c)]);
    const __m128 b =
        _mm_set1_ps(l.bias != nullptr ? l.bias[c] : 0.0f);
    float* yrow = y + c * plane + j0;
    for (std::int64_t j = 0; j < jn; j += 4) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(arow + j));
      const __m128 v = _mm_add_ps(
          _mm_mul_ps(_mm_cvtepi32_ps(_mm_sub_epi32(a, corr)), ds), b);
      __m128 r = v;
      switch (l.fused) {
        case Fused::kNone:
          break;
        case Fused::kLeakyReLU: {
          const __m128 pos = _mm_cmpge_ps(v, zero);
          r = _mm_or_ps(_mm_and_ps(pos, v),
                        _mm_andnot_ps(pos, _mm_mul_ps(slope, v)));
          break;
        }
        case Fused::kReLU:
          r = _mm_and_ps(_mm_cmpgt_ps(v, zero), v);
          break;
        case Fused::kTanh: {
          alignas(16) float tmp[4];
          _mm_store_ps(tmp, v);
          for (std::int64_t t = 0; t < 4 && j + t < jn; ++t) {
            yrow[j + t] = std::tanh(tmp[t]);
          }
          continue;
        }
      }
      store_lanes(yrow + j, r, jn - j);
    }
  }
}

#else  // !PARPDE_INT8_X86

void dequant_epilogue(const std::int32_t* acc, const QLayer& l,
                      std::int64_t j0, std::int64_t jn, std::int64_t plane,
                      float* y) {
  for (std::int64_t c = 0; c < l.cout; ++c) {
    const std::int32_t* arow = acc + c * kBlockCols;
    const std::int32_t corr = l.corr[static_cast<std::size_t>(c)];
    const float ds = l.dscale[static_cast<std::size_t>(c)];
    const float b = l.bias != nullptr ? l.bias[c] : 0.0f;
    float* yrow = y + c * plane + j0;
    switch (l.fused) {
      case Fused::kNone:
        for (std::int64_t j = 0; j < jn; ++j) {
          yrow[j] = static_cast<float>(arow[j] - corr) * ds + b;
        }
        break;
      case Fused::kLeakyReLU:
        for (std::int64_t j = 0; j < jn; ++j) {
          const float v = static_cast<float>(arow[j] - corr) * ds + b;
          yrow[j] = v >= 0.0f ? v : l.slope * v;
        }
        break;
      case Fused::kReLU:
        for (std::int64_t j = 0; j < jn; ++j) {
          const float v = static_cast<float>(arow[j] - corr) * ds + b;
          yrow[j] = v > 0.0f ? v : 0.0f;
        }
        break;
      case Fused::kTanh:
        for (std::int64_t j = 0; j < jn; ++j) {
          yrow[j] = std::tanh(static_cast<float>(arow[j] - corr) * ds + b);
        }
        break;
    }
  }
}

#endif  // PARPDE_INT8_X86

// --- the backend ------------------------------------------------------------

class QuantizedInt8Backend final : public BlockedF32Backend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "int8"; }

  [[nodiscard]] std::unique_ptr<PlanContext> make_plan_context(
      const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
      std::int64_t max_w, std::int64_t max_batch = 1) const override {
    return std::make_unique<Int8PlanContext>(layers, max_h, max_w, max_batch);
  }

  [[nodiscard]] bool needs_calibration(const PlanContext& ctx) const override {
    return !static_cast<const Int8PlanContext&>(ctx).calibrated();
  }

  void set_input_ranges(PlanContext& ctx,
                        const std::vector<float>& max_abs) const override {
    static_cast<Int8PlanContext&>(ctx).set_ranges(max_abs);
  }

  // The solo path is the batched path at B = 1: the quantize chunking, the
  // offset table, the block decomposition and every kernel call are byte-for
  // byte the same, so delegating keeps one code path with no identity risk.
  void conv_forward(PlanContext& ctx, int layer, const float* x,
                    std::int64_t h, std::int64_t w, float* y) const override {
    conv_forward_batched(ctx, layer, x, 1, h, w, y);
  }

  void conv_forward_batched(PlanContext& ctx, int layer, const float* x,
                            std::int64_t batch, std::int64_t h, std::int64_t w,
                            float* y) const override {
    auto& c = static_cast<Int8PlanContext&>(ctx);
    if (!c.calibrated()) {
      throw std::logic_error(
          "QuantizedInt8Backend: conv_forward before calibration "
          "(ForwardPlan::calibrate or set_calibration)");
    }
    const QLayer& l = c.layer(layer);
    const ConvGeometry g{l.cin, h, w, l.kernel, l.pad};
    const std::int64_t oh = g.out_height();
    const std::int64_t ow = g.out_width();
    const std::int64_t plane = oh * ow;
    if (plane <= 0) {
      throw std::invalid_argument("conv_forward: input below kernel size");
    }

    static telemetry::Counter& flops =
        telemetry::counter("backend.int8.gemm_flops");
    static telemetry::Gauge& quant_s =
        telemetry::gauge("backend.int8.quantize_seconds");
    static telemetry::Gauge& dequant_s =
        telemetry::gauge("backend.int8.dequantize_seconds");
    flops.add(
        static_cast<std::uint64_t>(2 * l.cout * l.krows * batch * plane));
    telemetry::Span span(batch == 1 ? "conv.int8" : "conv.int8.batched",
                         "backend");

    // 1. Quantize the fp32 input at the layer's fixed calibrated scale —
    //    whole batch in one elementwise pass. quantize_u8 is chunk-boundary
    //    independent per element, so sample s's bytes match what a solo call
    //    on that sample alone would produce. The 16 trailing slack bytes are
    //    set to the quantized zero so the last sample's edge panel pack reads
    //    defined memory (interior samples overshoot into their neighbor).
    const std::int64_t sample = l.cin * h * w;
    std::uint8_t* qin = c.qin(batch * sample + 16);
    {
      util::WallTimer timer;
      quantize_u8(x, batch * sample, l.inv_sx, qin);
      quant_s.add(timer.seconds());
    }
    std::memset(qin + batch * sample, 128, 16);

    // 2. Column-row offset table — geometry-only, shared by every sample.
    //    Unpadded convs (the rollout's halo-pad path) pack panels straight
    //    out of qin: relative to an output pixel, row r = (ci,ky,kx) of the
    //    implicit column matrix lives at offset (ci*h + ky)*w + kx. Padded
    //    convs materialize the uint8 column matrix (pad byte 128 = quantized
    //    zero) per sample and the table degenerates to off[r] = r*plane.
    //    K-pad rows repeat the last real row — their weights are zero, so
    //    any in-range bytes contribute exactly zero.
    std::int32_t* off = c.off(l.kpad);

    // 3. Blocked int8 GEMM + fused dequant epilogue, parallel over disjoint
    //    16-column blocks across the covered samples (bit-identical at any
    //    worker count and any batch composition — each block's
    //    pack/kernel/epilogue sees only its own sample's bytes). Blocks never
    //    span output rows — the direct-from-qin base pointer is only linear
    //    within one — so the right edge of every row is a short block.
    //    Epilogue timing is trace-mode only: per-block stopwatches are too
    //    hot for the always-on path (see docs/observability.md).
    const std::int64_t nxb = (ow + kBlockCols - 1) / kBlockCols;
    const std::int64_t nblocks = oh * nxb;
    const bool trace = telemetry::enabled();
    const auto run_blocks = [&](std::int64_t s_base, std::int64_t scount,
                                const std::uint8_t* colbase,
                                std::int64_t sample_cols) {
      util::ThreadPool::global().parallel_for(
          scount * nblocks, 8, [&](std::int64_t b0, std::int64_t b1) {
            t_qpanel.resize(static_cast<std::size_t>(c.panel_bytes()));
            t_qacc.resize(static_cast<std::size_t>(c.acc_ints()));
            std::uint8_t* panel = t_qpanel.data();
            std::int32_t* acc = t_qacc.data();
            double dq = 0.0;
            for (std::int64_t t = b0; t < b1; ++t) {
              const std::int64_t s = t / nblocks;
              const std::int64_t blk = t % nblocks;
              const std::int64_t oy = blk / nxb;
              const std::int64_t x0 = (blk % nxb) * kBlockCols;
              const std::int64_t j0 = oy * ow + x0;
              const std::int64_t jn = std::min(kBlockCols, ow - x0);
              const std::uint8_t* scol = colbase + s * sample_cols;
              const std::uint8_t* base =
                  l.pad == 0 ? scol + oy * w + x0 : scol + j0;
              float* sy = y + (s_base + s) * l.cout * plane;
              pack_panel(base, off, l.kgroups, panel);
              g_kernel(panel, l.wq.data(), l.kgroups, l.cpad / 4, acc);
              if (trace) {
                util::WallTimer timer;
                dequant_epilogue(acc, l, j0, jn, plane, sy);
                dq += timer.seconds();
              } else {
                dequant_epilogue(acc, l, j0, jn, plane, sy);
              }
            }
            if (trace && dq > 0.0) dequant_s.add(dq);
          });
    };

    if (l.pad == 0) {
      std::int64_t r = 0;
      for (std::int64_t ci = 0; ci < l.cin; ++ci) {
        for (std::int64_t ky = 0; ky < l.kernel; ++ky) {
          for (std::int64_t kx = 0; kx < l.kernel; ++kx, ++r) {
            off[r] = static_cast<std::int32_t>((ci * h + ky) * w + kx);
          }
        }
      }
      for (; r < l.kpad; ++r) off[r] = off[r - 1];
      // No column matrix is materialized — panels pack straight out of qin —
      // so the working set per block is one sample's input plane and the
      // whole batch can run as one block sweep.
      run_blocks(0, batch, qin, sample);
    } else {
      std::int64_t r = 0;
      for (; r < l.krows; ++r) off[r] = static_cast<std::int32_t>(r * plane);
      for (; r < l.kpad; ++r) off[r] = off[r - 1];
      // Column-budget chunking, same rationale as the fp32 batched path: the
      // materialized uint8 column matrix must stay cache-resident between
      // im2col_u8 and the block sweep that consumes it, so large tiles are
      // lowered in sample groups. The budget is tighter than fp32's: the u8
      // column bytes are re-read by every pack_panel sweep, so they need to
      // sit in L2, not just L3. Per-sample bits are unchanged — every block
      // still packs from its own sample's columns only.
      constexpr std::int64_t kColBudgetBytes = std::int64_t{1} << 20;
      const std::int64_t col_bytes = l.kpad * plane;
      const std::int64_t chunk = std::min(
          batch, std::max<std::int64_t>(1, kColBudgetBytes / col_bytes));
      std::uint8_t* qcol = c.qcol(chunk * col_bytes + 64);
      for (std::int64_t s0 = 0; s0 < batch; s0 += chunk) {
        const std::int64_t cb = std::min(chunk, batch - s0);
        util::ThreadPool::global().parallel_for(
            cb, 1, [&](std::int64_t c0, std::int64_t c1) {
              for (std::int64_t s = c0; s < c1; ++s) {
                im2col_u8(qin + (s0 + s) * sample, g, qcol + s * col_bytes);
              }
            });
        run_blocks(s0, cb, qcol, col_bytes);
      }
    }
  }
};

}  // namespace

const KernelBackend& quantized_int8() {
  static const QuantizedInt8Backend backend;
  return backend;
}

}  // namespace parpde::backend
