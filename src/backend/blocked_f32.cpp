#include "backend/kernel_backend.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace parpde::backend {

namespace {

// Same grain the activation layers have always used, so the dispatched
// elementwise passes chunk identically (values are order-independent anyway).
constexpr std::int64_t kElementwiseGrain = 1 << 14;

// fp32 plan state: one shared im2col workspace sized for the widest conv of
// the plan at its maximum geometry (times max_batch for the batched path),
// plus a channel-major staging buffer for the batched GEMM output.
class F32PlanContext final : public PlanContext {
 public:
  F32PlanContext(const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
                 std::int64_t max_w, std::int64_t max_batch)
      : layers_(layers) {
    std::int64_t h = max_h, w = max_w, peak_col = 0, peak_out = 0;
    for (const ConvLayerDesc& l : layers_) {
      const ConvGeometry g{l.in_channels, h, w, l.kernel, l.pad};
      peak_col =
          std::max(peak_col, g.col_rows() * max_batch * g.col_cols());
      peak_out = std::max(peak_out, l.out_channels * max_batch *
                                        g.out_height() * g.out_width());
      h = g.out_height();
      w = g.out_width();
    }
    col_.resize(static_cast<std::size_t>(peak_col));
    if (max_batch > 1) out_.resize(static_cast<std::size_t>(peak_out));
  }

  [[nodiscard]] std::uint64_t growth_events() const noexcept override {
    return growths_;
  }

  float* col(std::int64_t floats) {
    if (static_cast<std::int64_t>(col_.size()) < floats) {
      col_.resize(static_cast<std::size_t>(floats));
      ++growths_;
    }
    return col_.data();
  }

  float* out(std::int64_t floats) {
    if (static_cast<std::int64_t>(out_.size()) < floats) {
      out_.resize(static_cast<std::size_t>(floats));
      ++growths_;
    }
    return out_.data();
  }

  [[nodiscard]] const ConvLayerDesc& layer(int i) const {
    return layers_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<ConvLayerDesc> layers_;
  util::AlignedVector<float> col_;
  util::AlignedVector<float> out_;
  std::uint64_t growths_ = 0;
};

// Fused bias + activation epilogue over the channel-major conv output.
// Per element this is the exact float sequence the pre-backend ForwardPlan
// produced with its separate bias and activation passes (t = v + b, then the
// activation formula), so fusing changes nothing but memory traffic.
void fused_epilogue(float* dst, std::int64_t cout, std::int64_t plane,
                    const float* bias, Fused fused, float slope) {
  if (bias == nullptr && fused == Fused::kNone) return;
  util::ThreadPool::global().parallel_for(
      cout, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t c = begin; c < end; ++c) {
          float* row = dst + c * plane;
          const float b = bias != nullptr ? bias[c] : 0.0f;
          switch (fused) {
            case Fused::kNone:
              for (std::int64_t i = 0; i < plane; ++i) row[i] = row[i] + b;
              break;
            case Fused::kLeakyReLU:
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = row[i] + b;
                row[i] = v >= 0.0f ? v : slope * v;
              }
              break;
            case Fused::kReLU:
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = row[i] + b;
                row[i] = v > 0.0f ? v : 0.0f;
              }
              break;
            case Fused::kTanh:
              for (std::int64_t i = 0; i < plane; ++i) {
                row[i] = std::tanh(row[i] + b);
              }
              break;
          }
        }
      });
}

// Batched scatter epilogue: the wide GEMM writes [Cout x B*plane] with sample
// s at columns [s*plane, (s+1)*plane); the caller wants NCHW [B, Cout, plane].
// Per element this applies the exact float sequence of fused_epilogue
// (t = v + b, then the activation formula) while de-interleaving, so each
// sample's bytes match a solo conv_forward on the same input.
void scatter_epilogue(const float* wide, std::int64_t batch, std::int64_t cout,
                      std::int64_t plane, const float* bias, Fused fused,
                      float slope, float* y) {
  util::ThreadPool::global().parallel_for(
      batch * cout, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t sc = begin; sc < end; ++sc) {
          const std::int64_t s = sc / cout, c = sc % cout;
          const float* row = wide + c * batch * plane + s * plane;
          float* dst = y + (s * cout + c) * plane;
          const float b = bias != nullptr ? bias[c] : 0.0f;
          switch (fused) {
            case Fused::kNone:
              if (bias == nullptr) {
                for (std::int64_t i = 0; i < plane; ++i) dst[i] = row[i];
              } else {
                for (std::int64_t i = 0; i < plane; ++i) dst[i] = row[i] + b;
              }
              break;
            case Fused::kLeakyReLU:
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = row[i] + b;
                dst[i] = v >= 0.0f ? v : slope * v;
              }
              break;
            case Fused::kReLU:
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = row[i] + b;
                dst[i] = v > 0.0f ? v : 0.0f;
              }
              break;
            case Fused::kTanh:
              for (std::int64_t i = 0; i < plane; ++i) {
                dst[i] = std::tanh(row[i] + b);
              }
              break;
          }
        }
      });
}

}  // namespace

PlanContext::~PlanContext() = default;
KernelBackend::~KernelBackend() = default;

bool KernelBackend::needs_calibration(const PlanContext&) const { return false; }
void KernelBackend::set_input_ranges(PlanContext&,
                                     const std::vector<float>&) const {}

void BlockedF32Backend::gemm(const float* a, const float* b, float* c,
                             std::int64_t m, std::int64_t k,
                             std::int64_t n) const {
  parpde::gemm(a, b, c, m, k, n);
}
void BlockedF32Backend::gemm_acc(const float* a, const float* b, float* c,
                                 std::int64_t m, std::int64_t k,
                                 std::int64_t n) const {
  parpde::gemm_acc(a, b, c, m, k, n);
}
void BlockedF32Backend::gemm_at(const float* a, const float* b, float* c,
                                std::int64_t m, std::int64_t k,
                                std::int64_t n) const {
  parpde::gemm_at(a, b, c, m, k, n);
}
void BlockedF32Backend::gemm_bt_acc(const float* a, const float* b, float* c,
                                    std::int64_t m, std::int64_t k,
                                    std::int64_t n) const {
  parpde::gemm_bt_acc(a, b, c, m, k, n);
}

void BlockedF32Backend::conv2d_forward_batched(const Tensor& x, const Tensor& w,
                                               const Tensor& b,
                                               std::int64_t pad, Tensor& y,
                                               nn::Conv2dWorkspace& ws) const {
  nn::conv2d_forward_batched(x, w, b, pad, y, ws);
}
void BlockedF32Backend::conv2d_backward_batched(
    const Tensor& x, const Tensor& dy, const Tensor& w, std::int64_t pad,
    Tensor& dx, Tensor& dw, Tensor& db, nn::Conv2dWorkspace& ws) const {
  nn::conv2d_backward_batched(x, dy, w, pad, dx, dw, db, ws);
}
void BlockedF32Backend::conv2d_forward(const Tensor& x, const Tensor& w,
                                       const Tensor& b, std::int64_t pad,
                                       Tensor& y,
                                       util::AlignedVector<float>& col) const {
  nn::conv2d_forward(x, w, b, pad, y, col);
}
void BlockedF32Backend::conv2d_backward_data(
    const Tensor& dy, const Tensor& w, std::int64_t pad, Tensor& dx,
    util::AlignedVector<float>& col) const {
  nn::conv2d_backward_data(dy, w, pad, dx, col);
}
void BlockedF32Backend::conv2d_backward_weights(
    const Tensor& x, const Tensor& dy, std::int64_t pad, Tensor& dw, Tensor& db,
    util::AlignedVector<float>& col) const {
  nn::conv2d_backward_weights(x, dy, pad, dw, db, col);
}

void BlockedF32Backend::conv_transpose2d_forward(
    const float* x, const float* w, const float* bias, std::int64_t n,
    std::int64_t cin, std::int64_t cout, std::int64_t h, std::int64_t width,
    std::int64_t kernel, float* y) const {
  // Direct scatter loop nest (moved verbatim from nn::ConvTranspose2d): the
  // deconv head is tiny compared with the conv stack, so a GEMM lowering has
  // never been worth its col2im traffic here.
  const std::int64_t oh = h + kernel - 1, ow = width + kernel - 1;
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t co = 0; co < cout; ++co) {
      float* yplane = y + ((s * cout + co) * oh) * ow;
      const float b = bias != nullptr ? bias[co] : 0.0f;
      for (std::int64_t i = 0; i < oh * ow; ++i) yplane[i] = b;
    }
    for (std::int64_t ci = 0; ci < cin; ++ci) {
      const float* xplane = x + ((s * cin + ci) * h) * width;
      for (std::int64_t co = 0; co < cout; ++co) {
        const float* ker = w + ((ci * cout + co) * kernel) * kernel;
        float* yplane = y + ((s * cout + co) * oh) * ow;
        for (std::int64_t iy = 0; iy < h; ++iy) {
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            float* yrow = yplane + (iy + ky) * ow;
            const float* krow = ker + ky * kernel;
            const float* xrow = xplane + iy * width;
            for (std::int64_t ix = 0; ix < width; ++ix) {
              const float xv = xrow[ix];
              if (xv == 0.0f) continue;
              for (std::int64_t kx = 0; kx < kernel; ++kx) {
                yrow[ix + kx] += xv * krow[kx];
              }
            }
          }
        }
      }
    }
  }
}

void BlockedF32Backend::leaky_relu(const float* x, float* y, std::int64_t n,
                                   float slope) const {
  util::ThreadPool::global().parallel_for(
      n, kElementwiseGrain, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const float v = x[i];
          y[i] = v >= 0.0f ? v : slope * v;
        }
      });
}
void BlockedF32Backend::relu(const float* x, float* y, std::int64_t n) const {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}
void BlockedF32Backend::tanh(const float* x, float* y, std::int64_t n) const {
  for (std::int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

std::unique_ptr<PlanContext> BlockedF32Backend::make_plan_context(
    const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
    std::int64_t max_w, std::int64_t max_batch) const {
  return std::make_unique<F32PlanContext>(layers, max_h, max_w, max_batch);
}

void BlockedF32Backend::conv_forward(PlanContext& ctx, int layer,
                                     const float* x, std::int64_t h,
                                     std::int64_t w, float* y) const {
  auto& c = static_cast<F32PlanContext&>(ctx);
  const ConvLayerDesc& l = c.layer(layer);
  const ConvGeometry g{l.in_channels, h, w, l.kernel, l.pad};
  const std::int64_t plane = g.out_height() * g.out_width();
  if (plane <= 0) {
    throw std::invalid_argument("conv_forward: input below kernel size");
  }
  static telemetry::Counter& flops =
      telemetry::counter("backend.fp32.gemm_flops");
  flops.add(static_cast<std::uint64_t>(2 * l.out_channels * g.col_rows() *
                                       plane));
  telemetry::Span span("conv.fp32", "backend");
  float* col = c.col(g.col_rows() * g.col_cols());
  im2col(x, g, col);
  // y [Cout x plane] = W [Cout x Cin*k*k] * col — the same lowering
  // Conv2d::forward uses, so every output element sees the identical
  // k-reduction order as the module graph.
  parpde::gemm(l.weight, col, y, l.out_channels, g.col_rows(), plane);
  fused_epilogue(y, l.out_channels, plane, l.bias, l.fused, l.slope);
}

void BlockedF32Backend::conv_forward_batched(PlanContext& ctx, int layer,
                                             const float* x,
                                             std::int64_t batch, std::int64_t h,
                                             std::int64_t w, float* y) const {
  auto& c = static_cast<F32PlanContext&>(ctx);
  const ConvLayerDesc& l = c.layer(layer);
  const ConvGeometry g{l.in_channels, h, w, l.kernel, l.pad};
  const std::int64_t plane = g.out_height() * g.out_width();
  if (plane <= 0) {
    throw std::invalid_argument("conv_forward_batched: input below kernel size");
  }
  static telemetry::Counter& flops =
      telemetry::counter("backend.fp32.gemm_flops");
  flops.add(static_cast<std::uint64_t>(2 * l.out_channels * g.col_rows() *
                                       batch * plane));
  telemetry::Span span("conv.fp32.batched", "backend");
  // Column-budget chunking: the wide lowering only pays off while the col
  // slice stays cache-resident between im2col and the GEMM that consumes it.
  // Lowering the whole batch at once on large tiles (e.g. 8 x 64x64 Table-I:
  // a 37 MB col) measures ~25-35% slower per sample than solo calls — the
  // GEMM re-reads the col from DRAM — so the batch is processed in sample
  // groups whose col fits the budget. Chunking cannot change bits: im2col is
  // per-sample, the GEMM's per-element k-reduction order is independent of
  // the matrix width, and the epilogue is elementwise.
  constexpr std::int64_t kColBudgetBytes = std::int64_t{4} << 20;
  const std::int64_t col_bytes = g.col_rows() * plane *
                                 static_cast<std::int64_t>(sizeof(float));
  const std::int64_t chunk =
      std::min(batch, std::max<std::int64_t>(1, kColBudgetBytes / col_bytes));
  float* col = c.col(g.col_rows() * chunk * plane);
  float* wide = c.out(l.out_channels * chunk * plane);
  for (std::int64_t s0 = 0; s0 < batch; s0 += chunk) {
    const std::int64_t cb = std::min(chunk, batch - s0);
    im2col_batched(x + s0 * l.in_channels * h * w, cb, g, col);
    // One GEMM of width cb*plane. The blocked kernel's per-element
    // k-reduction order depends only on the row/k indices, never on the
    // matrix width, so column s*plane+i here accumulates in the identical
    // order as column i of a solo conv_forward — the wide product is
    // bit-identical per sample.
    parpde::gemm(l.weight, col, wide, l.out_channels, g.col_rows(),
                 cb * plane);
    scatter_epilogue(wide, cb, l.out_channels, plane, l.bias, l.fused,
                     l.slope, y + s0 * l.out_channels * plane);
  }
}

const KernelBackend& blocked_f32() {
  static const BlockedF32Backend backend;
  return backend;
}

const KernelBackend* by_name(std::string_view name) {
  if (name == "fp32") return &blocked_f32();
  if (name == "int8") return &quantized_int8();
  return nullptr;
}

}  // namespace parpde::backend
