#pragma once

// Execution-provider split for the compute kernels (the onnxruntime idiom):
// a KernelBackend owns GEMM, im2col/convolution, transpose-convolution and
// activation execution, and every layer above this directory dispatches
// through it instead of calling tensor::gemm / nn::conv_ops directly
// (enforced by the backend-bypass rule in tools/parpde_lint.py).
//
// Two providers exist:
//   - blocked_f32(): the reference backend — the blocked fp32 kernels from
//     PR 1, repackaged. Bit-identical to the pre-backend call paths.
//   - quantized_int8(): inference-only low-precision provider. Weights are
//     quantized per output channel to symmetric int8, activations to uint8
//     with a fixed per-layer scale calibrated from one fp32 reference pass;
//     the conv runs an int8xint8->int32 blocked micro-kernel with an fp32
//     dequant epilogue that fuses the bias add and the activation. Training
//     entry points delegate to the fp32 kernels (quantization applies to the
//     fused inference convolution only).
//
// The fused inference path works on a PlanContext: an opaque per-plan state
// object the backend pre-sizes at construction (packed/quantized weights,
// im2col workspaces), so nn::ForwardPlan keeps its zero-allocation
// steady-state contract under any backend. Integer accumulation is exact and
// the fp32 epilogue is elementwise, so each backend is bit-deterministic at
// any thread count and across the serialized/overlapped rollout engines.

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "nn/conv_ops.hpp"
#include "tensor/tensor.hpp"

namespace parpde::backend {

// Activation fused into a convolution's epilogue (the ForwardPlan peephole
// merges a conv step with the pointwise layer that follows it).
enum class Fused { kNone, kLeakyReLU, kReLU, kTanh };

// One convolution layer of a fused inference plan. Weight/bias pointers are
// non-owning views into the live model (same contract as nn::ForwardPlan).
struct ConvLayerDesc {
  const float* weight = nullptr;  // [Cout x Cin*k*k] row-major
  const float* bias = nullptr;    // [Cout], nullptr = no bias
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t pad = 0;
  Fused fused = Fused::kNone;
  float slope = 0.0f;  // kLeakyReLU only
};

// Backend-owned per-plan state: packed/quantized weights plus every workspace
// conv_forward touches, pre-sized for the plan's maximum geometry.
class PlanContext {
 public:
  virtual ~PlanContext();
  // Workspace regrowths since construction (0 in a pre-sized steady state);
  // feeds ForwardPlan::growth_events().
  [[nodiscard]] virtual std::uint64_t growth_events() const noexcept = 0;
};

class KernelBackend {
 public:
  virtual ~KernelBackend();

  // Stable identifier ("fp32", "int8") used by RolloutOptions/CLI selection
  // and the backend.* telemetry tags.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  // --- raw fp32 GEMM (training + module-graph path) -----------------------
  virtual void gemm(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) const = 0;
  virtual void gemm_acc(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n) const = 0;
  virtual void gemm_at(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t k, std::int64_t n) const = 0;
  virtual void gemm_bt_acc(const float* a, const float* b, float* c,
                           std::int64_t m, std::int64_t k,
                           std::int64_t n) const = 0;

  // --- convolution (module-graph path, fp32 on every backend) -------------
  virtual void conv2d_forward_batched(const Tensor& x, const Tensor& w,
                                      const Tensor& b, std::int64_t pad,
                                      Tensor& y, nn::Conv2dWorkspace& ws) const = 0;
  virtual void conv2d_backward_batched(const Tensor& x, const Tensor& dy,
                                       const Tensor& w, std::int64_t pad,
                                       Tensor& dx, Tensor& dw, Tensor& db,
                                       nn::Conv2dWorkspace& ws) const = 0;
  virtual void conv2d_forward(const Tensor& x, const Tensor& w,
                              const Tensor& b, std::int64_t pad, Tensor& y,
                              util::AlignedVector<float>& col) const = 0;
  virtual void conv2d_backward_data(const Tensor& dy, const Tensor& w,
                                    std::int64_t pad, Tensor& dx,
                                    util::AlignedVector<float>& col) const = 0;
  virtual void conv2d_backward_weights(const Tensor& x, const Tensor& dy,
                                       std::int64_t pad, Tensor& dw, Tensor& db,
                                       util::AlignedVector<float>& col) const = 0;

  // --- transpose convolution (deconv border mode) --------------------------
  // y [N, Cout, H+k-1, W+k-1] = w (*)^T x + b for x [N, Cin, H, W] and
  // w [Cin, Cout, k, k]; y is fully overwritten.
  virtual void conv_transpose2d_forward(const float* x, const float* w,
                                        const float* bias, std::int64_t n,
                                        std::int64_t cin, std::int64_t cout,
                                        std::int64_t h, std::int64_t width,
                                        std::int64_t kernel, float* y) const = 0;

  // --- pointwise activations (src == dst allowed) --------------------------
  virtual void leaky_relu(const float* x, float* y, std::int64_t n,
                          float slope) const = 0;
  virtual void relu(const float* x, float* y, std::int64_t n) const = 0;
  virtual void tanh(const float* x, float* y, std::int64_t n) const = 0;

  // --- fused inference path (ForwardPlan) ----------------------------------
  // Pre-sizes all per-plan state for inputs up to [_, max_h, max_w], with
  // workspaces wide enough for conv_forward_batched calls up to `max_batch`
  // samples (1 = the classic single-sample plan).
  [[nodiscard]] virtual std::unique_ptr<PlanContext> make_plan_context(
      const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
      std::int64_t max_w, std::int64_t max_batch = 1) const = 0;

  // y [Cout x OH*OW] = fused_act(W * im2col(x) + b) for layer `layer` of the
  // context on one [Cin, h, w] sample. Never allocates for in-range
  // geometries (growths are counted by the context).
  virtual void conv_forward(PlanContext& ctx, int layer, const float* x,
                            std::int64_t h, std::int64_t w, float* y) const = 0;

  // Batched variant over `batch` stacked samples: x is [B, Cin, h, w], y is
  // [B, Cout, OH, OW], both contiguous. The whole batch is lowered into one
  // wide im2col matrix and one GEMM of width B*OH*OW — bit-identical per
  // sample to `batch` solo conv_forward calls, because the blocked GEMM's
  // per-element k-reduction order does not depend on the matrix width and the
  // epilogue is elementwise. This is the contract SurrogateServer's
  // cross-session coalescing relies on; test_serve proves it end-to-end.
  virtual void conv_forward_batched(PlanContext& ctx, int layer,
                                    const float* x, std::int64_t batch,
                                    std::int64_t h, std::int64_t w,
                                    float* y) const = 0;

  // Activation-scale calibration protocol. The fp32 backend needs none; the
  // int8 backend must see per-conv-layer input ranges (max-abs over a
  // representative fp32 tile) before conv_forward may run.
  [[nodiscard]] virtual bool needs_calibration(const PlanContext& ctx) const;
  virtual void set_input_ranges(PlanContext& ctx,
                                const std::vector<float>& max_abs) const;
};

// Process-lifetime singletons.
[[nodiscard]] const KernelBackend& blocked_f32();
[[nodiscard]] const KernelBackend& quantized_int8();
// nullptr for unknown names ("fp32" and "int8" are valid).
[[nodiscard]] const KernelBackend* by_name(std::string_view name);

// --- reference backend ------------------------------------------------------

// The blocked fp32 kernels behind a KernelBackend face. QuantizedInt8Backend
// derives from it: training and module-graph execution stay fp32; only the
// fused inference conv is overridden.
class BlockedF32Backend : public KernelBackend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "fp32"; }

  void gemm(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n) const override;
  void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) const override;
  void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) const override;
  void gemm_bt_acc(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) const override;

  void conv2d_forward_batched(const Tensor& x, const Tensor& w, const Tensor& b,
                              std::int64_t pad, Tensor& y,
                              nn::Conv2dWorkspace& ws) const override;
  void conv2d_backward_batched(const Tensor& x, const Tensor& dy,
                               const Tensor& w, std::int64_t pad, Tensor& dx,
                               Tensor& dw, Tensor& db,
                               nn::Conv2dWorkspace& ws) const override;
  void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::int64_t pad, Tensor& y,
                      util::AlignedVector<float>& col) const override;
  void conv2d_backward_data(const Tensor& dy, const Tensor& w, std::int64_t pad,
                            Tensor& dx,
                            util::AlignedVector<float>& col) const override;
  void conv2d_backward_weights(const Tensor& x, const Tensor& dy,
                               std::int64_t pad, Tensor& dw, Tensor& db,
                               util::AlignedVector<float>& col) const override;

  void conv_transpose2d_forward(const float* x, const float* w,
                                const float* bias, std::int64_t n,
                                std::int64_t cin, std::int64_t cout,
                                std::int64_t h, std::int64_t width,
                                std::int64_t kernel, float* y) const override;

  void leaky_relu(const float* x, float* y, std::int64_t n,
                  float slope) const override;
  void relu(const float* x, float* y, std::int64_t n) const override;
  void tanh(const float* x, float* y, std::int64_t n) const override;

  [[nodiscard]] std::unique_ptr<PlanContext> make_plan_context(
      const std::vector<ConvLayerDesc>& layers, std::int64_t max_h,
      std::int64_t max_w, std::int64_t max_batch = 1) const override;
  void conv_forward(PlanContext& ctx, int layer, const float* x,
                    std::int64_t h, std::int64_t w, float* y) const override;
  void conv_forward_batched(PlanContext& ctx, int layer, const float* x,
                            std::int64_t batch, std::int64_t h, std::int64_t w,
                            float* y) const override;
};

}  // namespace parpde::backend
