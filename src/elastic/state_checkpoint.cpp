#include "elastic/state_checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/crc32.hpp"
#include "util/telemetry.hpp"

namespace parpde::elastic {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'P', 'P', 'E', 'S'};
constexpr std::uint32_t kVersion = 1;

std::string state_name(int task, int step) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "task%03d_step%06d.ppes", task, step);
  return buf;
}

// Same crash-consistency protocol as core/train_checkpoint.cpp: tmp file,
// fsync, rename into place, fsync the directory.
void atomic_write(const fs::path& dir, const std::string& name,
                  const std::string& data) {
  const fs::path final_path = dir / name;
  const fs::path tmp_path = dir / (name + ".tmp");
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("task state: cannot open " + tmp_path.string() +
                             ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("task state: write to " + tmp_path.string() +
                               " failed: " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("task state: fsync of " + tmp_path.string() +
                             " failed: " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("task state: rename to " + final_path.string() +
                             " failed: " + std::strerror(errno));
  }
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: persist the rename
    ::close(dir_fd);
  }
}

}  // namespace

std::string save_task_state(const std::string& dir, int task, int step,
                            const Tensor& interior) {
  if (task < 0 || step < 0) {
    throw std::invalid_argument("save_task_state: negative task or step");
  }
  fs::create_directories(dir);

  std::ostringstream body(std::ios::binary);
  const auto task32 = static_cast<std::int32_t>(task);
  const auto step32 = static_cast<std::int32_t>(step);
  body.write(reinterpret_cast<const char*>(&task32), sizeof(task32));
  body.write(reinterpret_cast<const char*>(&step32), sizeof(step32));
  write_tensor(body, interior);
  const std::string payload = std::move(body).str();

  std::ostringstream framed(std::ios::binary);
  framed.write(kMagic, sizeof(kMagic));
  framed.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  framed.write(reinterpret_cast<const char*>(&len), sizeof(len));
  framed.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  framed.write(payload.data(), static_cast<std::streamsize>(payload.size()));

  const std::string name = state_name(task, step);
  atomic_write(dir, name, std::move(framed).str());

  static telemetry::Counter& writes =
      telemetry::counter("checkpoint.state_writes");
  static telemetry::Counter& bytes =
      telemetry::counter("checkpoint.state_bytes_written");
  writes.add(1);
  bytes.add(payload.size());
  return (fs::path(dir) / name).string();
}

bool load_task_state(const std::string& dir, int task, int step, Tensor* out,
                     std::string* why) {
  const fs::path path = fs::path(dir) / state_name(task, step);
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = path.string() + ": " + reason;
    static telemetry::Counter& invalid =
        telemetry::counter("checkpoint.invalid_skipped");
    invalid.add(1);
    return false;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not a task state snapshot)");
  }
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in) return fail("truncated header");
  if (version != kVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  if (payload_len > (1ull << 32)) return fail("implausible payload length");
  std::string payload(static_cast<std::size_t>(payload_len), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_len)) {
    return fail("truncated payload (torn write?)");
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    return fail("CRC mismatch (corrupt file)");
  }
  try {
    std::istringstream body(payload, std::ios::binary);
    std::int32_t file_task = -1;
    std::int32_t file_step = -1;
    body.read(reinterpret_cast<char*>(&file_task), sizeof(file_task));
    body.read(reinterpret_cast<char*>(&file_step), sizeof(file_step));
    if (!body) return fail("truncated payload");
    if (file_task != task || file_step != step) {
      return fail("snapshot names task " + std::to_string(file_task) +
                  " step " + std::to_string(file_step) + ", expected task " +
                  std::to_string(task) + " step " + std::to_string(step));
    }
    *out = read_tensor(body);
  } catch (const std::exception& e) {
    return fail(std::string("malformed payload: ") + e.what());
  }
  return true;
}

}  // namespace parpde::elastic
