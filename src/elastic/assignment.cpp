#include "elastic/assignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace parpde::elastic {

Assignment::Assignment(int tasks, int ranks) : ranks_(ranks) {
  if (tasks < ranks || ranks < 1) {
    throw std::invalid_argument("Assignment: need tasks >= ranks >= 1");
  }
  owner_.resize(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) owner_[t] = t % ranks;
  alive_.assign(static_cast<std::size_t>(ranks), 1);
}

int Assignment::live_ranks() const {
  return static_cast<int>(std::count(alive_.begin(), alive_.end(), 1));
}

std::vector<int> Assignment::tasks_of(int rank) const {
  std::vector<int> out;
  for (int t = 0; t < tasks(); ++t) {
    if (owner_[t] == rank) out.push_back(t);
  }
  return out;
}

std::vector<int> Assignment::rebalance(const std::vector<int>& failed) {
  for (int r : failed) {
    if (r < 0 || r >= ranks_) {
      throw std::invalid_argument("Assignment::rebalance: rank out of range");
    }
    alive_[r] = 0;
  }
  if (live_ranks() == 0) {
    throw std::runtime_error("Assignment::rebalance: no live ranks left");
  }
  std::vector<int> load(static_cast<std::size_t>(ranks_), 0);
  std::vector<int> orphans;
  for (int t = 0; t < tasks(); ++t) {
    if (alive_[owner_[t]]) {
      ++load[owner_[t]];
    } else {
      orphans.push_back(t);
    }
  }
  for (int t : orphans) {
    int best = -1;
    for (int r = 0; r < ranks_; ++r) {
      if (!alive_[r]) continue;
      if (best < 0 || load[r] < load[best]) best = r;
    }
    owner_[t] = best;
    ++load[best];
  }
  ++epoch_;
  return orphans;
}

}  // namespace parpde::elastic
