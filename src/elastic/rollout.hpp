#pragma once

// Self-healing elastic rollout runtime.
//
// The default parallel_rollout freezes one subdomain per rank at launch, so
// a rank death leaves a permanent hole: survivors finish, but every border
// facing the dead rank degrades to zero padding for the rest of the run.
// This engine decouples subdomains from ranks:
//
//   * the grid is over-decomposed into M = trained.ranks subdomain *tasks*
//     hosted on P = M / tasks_per_rank physical ranks, routed through the
//     versioned Assignment map (elastic/assignment.hpp) instead of the
//     implicit (cx, cy) == rank identity;
//   * every step starts with a heartbeat barrier on the kElastic tag range
//     — each rank stamps {assignment epoch, step} to every live peer and
//     waits for the same from them, so a rank that dies at a step boundary
//     is noticed by *all* survivors at the *same* step once its lease
//     (lease x missed_leases) runs out — no coordinator, no collectives
//     (which would hang on the dead rank);
//   * on detection every survivor computes the identical rebalanced map
//     (a pure function of the failed set), adopts the orphaned tasks by
//     rebuilding their models from the trained report and rolling *all*
//     tasks back to the newest common PPES state snapshot
//     (elastic/state_checkpoint.hpp), re-points the per-task halo channels,
//     and resumes — BorderHealth goes healthy again and the final frames
//     are bit-identical to an uninterrupted run (placement independence:
//     per-task arithmetic does not depend on the hosting rank).
//
// Per-task forwards run through pre-sized ForwardPlans (zero-alloc steady
// state); task-to-task halo traffic reuses the exact two-phase strip
// geometry of domain/exchange.cpp, so an elastic rollout of an M-task
// report produces bit-identical frames to the default engines rolling the
// same report on M ranks — the property the chaos and mc suites pin down.
//
// Deaths are supported at step boundaries (kill:rank=R,step=S and the
// check_kill_step hook); rank 0 hosts the recorded frames and must survive.
// Training stays zero-comm: heartbeats exist only inside this rollout loop.

#include "core/inference.hpp"

namespace parpde::elastic {

// Entry point used by core::parallel_rollout when options.elastic.enabled;
// see core/inference.hpp for the option and result contracts.
core::RolloutResult elastic_rollout(const core::TrainConfig& config,
                                    const core::ParallelTrainReport& trained,
                                    const Tensor& initial, int steps,
                                    const core::RolloutOptions& options);

}  // namespace parpde::elastic
