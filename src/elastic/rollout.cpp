#include "elastic/rollout.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/model.hpp"
#include "domain/halo.hpp"
#include "domain/partition.hpp"
#include "elastic/assignment.hpp"
#include "elastic/state_checkpoint.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/environment.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/tags.hpp"
#include "nn/forward_plan.hpp"
#include "util/log.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace parpde::elastic {

namespace {

using mpi::Direction;

// Task id of the grid neighbour in direction `d`, or -1 at the physical
// boundary. Tasks tile the (px, py) grid exactly like ranks do in CartComm:
// task t sits at (cx, cy) = (t % px, t / px).
int neighbor_task(int cx, int cy, Direction d, int px, int py) {
  int nx = cx;
  int ny = cy;
  switch (d) {
    case Direction::kWest: --nx; break;
    case Direction::kEast: ++nx; break;
    case Direction::kSouth: --ny; break;
    case Direction::kNorth: ++ny; break;
  }
  if (nx < 0 || nx >= px || ny < 0 || ny >= py) return -1;
  return ny * px + nx;
}

// Strip travelling in direction `travel` toward task `task` — the per-task
// analogue of the kHalo travel-tag scheme, so one rank can host several
// tasks' channels without collisions.
int strip_tag(int task, Direction travel) {
  return mpi::tags::elastic_halo_tag(task, static_cast<int>(travel));
}

// Packed-window plumbing (same layouts as domain/exchange.cpp, kept local so
// the elastic engine has no private-header dependency on it).
void pack_window(const Tensor& t, std::int64_t y0, std::int64_t hh,
                 std::int64_t x0, std::int64_t ww, std::vector<float>& out) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  out.resize(static_cast<std::size_t>(c * hh * ww));
  float* dst = out.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      const float* src = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      dst += ww;
    }
  }
}

void unpack_window(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                   std::int64_t ww, const std::vector<float>& strip) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  if (strip.size() != static_cast<std::size_t>(c * hh * ww)) {
    throw std::runtime_error("elastic rollout: strip size mismatch");
  }
  const float* src = strip.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      src += ww;
    }
  }
}

void zero_window(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                 std::int64_t ww) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::fill(dst, dst + ww, 0.0f);
    }
  }
}

// Copies a dense [c, sh, sw] plane block into the (y0, x0) window of dst.
void insert_plane(Tensor& dst, std::int64_t y0, std::int64_t x0,
                  const float* src, std::int64_t c, std::int64_t sh,
                  std::int64_t sw) {
  const auto h = dst.dim(1), w = dst.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < sh; ++y) {
      float* d = dst.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + sw, d);
      src += sw;
    }
  }
}

std::uint64_t count_nonfinite(const float* x, std::int64_t n) {
  std::uint64_t bad = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &x[i], sizeof(bits));
    bad += static_cast<std::uint64_t>((bits & 0x7f800000u) == 0x7f800000u);
  }
  return bad;
}

// Module-graph fallback for plan-incompatible models (deconv mode).
Tensor module_forward(nn::Sequential& model, Tensor& input) {
  input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
  Tensor out = model.forward(input);
  input.reshape({input.dim(1), input.dim(2), input.dim(3)});
  out.reshape({out.dim(1), out.dim(2), out.dim(3)});
  return out;
}

// One subdomain task hosted on this rank: its model + pre-sized plan, its
// field, and the persistent exchange staging. `active` flips on at
// activation (initial ownership or adoption) — inactive slots only carry
// geometry.
struct TaskState {
  int id = -1;
  int cx = 0;
  int cy = 0;
  domain::BlockRange block{};
  bool active = false;
  bool use_plan = false;
  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<nn::ForwardPlan> plan;
  Tensor interior;  // [c, bh, bw], the task's current field
  Tensor next;      // assembled step output
  Tensor ext_x;     // [c, bh, bw + 2 halo] phase-1 staging
  Tensor padded;    // [c, bh + 2 halo, bw + 2 halo]
  domain::BorderHealth health;
  std::vector<float> send_strip;
  std::vector<float> recv_strip;
};

// Thrown out of the heartbeat barrier when a peer's lease budget is
// exhausted; carries every peer that expired at that moment so simultaneous
// deaths rebalance as one batch on every survivor.
struct DeathNotice {
  std::vector<int> failed;
  double waited_seconds = 0.0;
};

}  // namespace

core::RolloutResult elastic_rollout(const core::TrainConfig& config,
                                    const core::ParallelTrainReport& trained,
                                    const Tensor& initial, int steps,
                                    const core::RolloutOptions& options) {
  using core::BorderMode;
  if (config.border == BorderMode::kValidInner) {
    throw std::invalid_argument(
        "elastic_rollout: valid-inner mode cannot roll out (output loses the "
        "subdomain rim)");
  }
  if (initial.ndim() != 3) {
    throw std::invalid_argument("elastic_rollout: initial frame must be [C,H,W]");
  }
  if (steps <= 0) throw std::invalid_argument("elastic_rollout: steps must be > 0");

  const core::ElasticOptions& el = options.elastic;
  const int tasks = trained.ranks;
  if (el.tasks_per_rank < 1 || tasks % el.tasks_per_rank != 0) {
    throw std::invalid_argument(
        "elastic_rollout: tasks_per_rank must divide the trained report's rank "
        "count (" +
        std::to_string(tasks) + ")");
  }
  if (tasks > mpi::tags::kMaxElasticTasks) {
    throw std::invalid_argument("elastic_rollout: more tasks than the kElastic "
                                "tag range can address");
  }
  const int nranks = tasks / el.tasks_per_rank;
  const int px = trained.dims.px;
  const int py = trained.dims.py;
  if (px * py != tasks) {
    throw std::invalid_argument("elastic_rollout: trained dims do not tile the "
                                "task count");
  }
  const std::chrono::milliseconds lease =
      std::max(el.lease, std::chrono::milliseconds(1));
  const std::int64_t lease_budget_ms =
      lease.count() * static_cast<std::int64_t>(std::max(el.missed_leases, 1));
  const bool snapshots = el.state_every > 0 && !el.state_dir.empty();

  const domain::Partition partition(initial.dim(1), initial.dim(2), px, py);
  const std::int64_t halo = config.border == BorderMode::kHaloPad
                                ? config.network.receptive_halo()
                                : 0;
  const std::int64_t chans = initial.dim(0);
  const backend::KernelBackend* bk =
      options.backend != nullptr ? options.backend : &backend::blocked_f32();
  const bool non_reference = bk != &backend::blocked_f32();

  auto recorded = [&](int step) {
    if (options.record_every <= 0) return false;
    return (step + 1) % options.record_every == 0 || step + 1 == steps;
  };
  std::vector<int> recorded_steps;
  for (int s = 0; s < steps; ++s) {
    if (recorded(s)) recorded_steps.push_back(s);
  }

  core::RolloutResult result;
  result.backend = bk->name();
  result.recorded_steps = recorded_steps;
  result.frames.resize(recorded_steps.size());
  result.step_seconds.resize(static_cast<std::size_t>(steps), 0.0);

  const auto np = static_cast<std::size_t>(nranks);
  std::vector<double> comm_seconds(np, 0.0);
  std::vector<double> compute_seconds(np, 0.0);
  std::vector<std::uint64_t> steady_allocs(np, 0);
  std::vector<std::uint64_t> halo_bytes(np, 0);
  std::vector<std::uint64_t> halo_bytes_recv(np, 0);
  std::vector<std::uint64_t> total_sent(np, 0);
  std::vector<std::uint64_t> total_recv(np, 0);
  std::vector<std::uint64_t> nonfinite(np, 0);
  std::vector<int> first_bad_step(np, -1);
  std::vector<int> recoveries_of(np, 0);
  std::vector<int> adopted_of(np, 0);
  std::vector<int> detect_step_of(np, -1);
  std::vector<double> detect_seconds_of(np, 0.0);
  std::vector<double> rebalance_seconds_of(np, 0.0);
  std::vector<int> epoch_of(np, 0);
  std::vector<int> blip_of(np, 0);
  // Final per-task border state, written by each task's last owner.
  std::vector<int> task_degraded(static_cast<std::size_t>(tasks), 0);
  std::vector<std::string> task_border(static_cast<std::size_t>(tasks));

  static telemetry::Counter& saturated =
      telemetry::counter("backend.int8.saturated");
  static telemetry::Counter& nonfinite_counter =
      telemetry::counter("health.nonfinite_values");
  const std::uint64_t saturated_before = saturated.value();

  mpi::Environment env(nranks);
  const mpi::RunOutcome outcome = env.run_collect([&](mpi::Communicator& comm) {
    const int rank = comm.rank();
    const auto ri = static_cast<std::size_t>(rank);
    mpi::PhaseScope phase(comm, "elastic.rollout");

    static telemetry::Counter& adoptions_counter =
        telemetry::counter("recover.adoptions");
    static telemetry::Gauge& epoch_gauge =
        telemetry::gauge("recover.assignment_epoch");
    static telemetry::Histogram& rebalance_hist =
        telemetry::histogram("recover.rebalance_seconds");
    static telemetry::Histogram& detection_hist =
        telemetry::histogram("recover.detection_seconds");
    static telemetry::Histogram& step_latency =
        telemetry::histogram("rollout.step_seconds");
    static telemetry::Counter& steady_counter =
        telemetry::counter("inference.steady_state_allocs");

    Assignment assign(tasks, nranks);
    std::vector<char> live(static_cast<std::size_t>(nranks), 1);
    std::vector<TaskState> task(static_cast<std::size_t>(tasks));
    for (int t = 0; t < tasks; ++t) {
      TaskState& ts = task[static_cast<std::size_t>(t)];
      ts.id = t;
      ts.cx = t % px;
      ts.cy = t / px;
      ts.block = partition.block(ts.cx, ts.cy);
      if (halo > ts.block.height() || halo > ts.block.width()) {
        throw std::invalid_argument(
            "elastic_rollout: halo exceeds the task block size (too many "
            "tasks for this grid)");
      }
    }

    util::AccumulatingTimer comm_timer;
    util::AccumulatingTimer compute_timer;
    comm.reset_counters();
    std::uint64_t exchange_bytes = 0;
    std::uint64_t exchange_bytes_recv = 0;
    std::uint64_t buffer_growths = 0;

    // Builds (or rebuilds, on adoption) one task's model, plan and initial
    // field. Int8 calibration always runs on the *initial* interior so an
    // adopted task installs the exact activation scales its original owner
    // calibrated at step 0 — a prerequisite for bit-identical resumption.
    auto activate = [&](TaskState& ts) {
      util::Rng rng(config.seed);
      ts.model = core::build_model(config.network, config.border, rng);
      core::import_parameters(
          *ts.model,
          trained.rank_outcomes[static_cast<std::size_t>(ts.id)].parameters);
      ts.interior = domain::extract_interior(initial, ts.block);
      const std::int64_t bh = ts.block.height();
      const std::int64_t bw = ts.block.width();
      ts.plan = std::make_unique<nn::ForwardPlan>(*ts.model, chans,
                                                  bh + 2 * halo, bw + 2 * halo,
                                                  bk);
      if (non_reference && !ts.plan->supported()) {
        throw std::invalid_argument(
            std::string("elastic_rollout: the ") + bk->name() +
            " backend requires a plan-compatible model (deconv mode runs fp32 "
            "only)");
      }
      ts.use_plan = ts.plan->supported();
      if (ts.use_plan && ts.plan->needs_calibration()) {
        if (halo > 0) {
          Tensor calib({chans, bh + 2 * halo, bw + 2 * halo});
          calib.fill(0.0f);
          insert_plane(calib, halo, halo, ts.interior.data(), chans, bh, bw);
          ts.plan->calibrate(calib.data(), calib.dim(1), calib.dim(2));
        } else {
          ts.plan->calibrate(ts.interior.data(), bh, bw);
        }
      }
      if (ts.next.ndim() != 3 || ts.next.dim(1) != bh || ts.next.dim(2) != bw) {
        ts.next = Tensor({chans, bh, bw});
      }
      ts.active = true;
    };

    std::vector<int> owned = assign.tasks_of(rank);
    for (const int t : owned) activate(task[static_cast<std::size_t>(t)]);

    // --- heartbeat barrier -------------------------------------------------
    // Per-peer high-water mark of the (epoch, step) key the last heartbeat
    // carried; the lexicographic key lets post-recovery barriers consume any
    // stale pre-recovery heartbeat without miscounting it.
    auto hb_key = [](std::uint32_t epoch, std::uint32_t step) {
      return (static_cast<std::int64_t>(epoch) << 32) |
             static_cast<std::int64_t>(step);
    };
    std::vector<std::int64_t> hb_seen(static_cast<std::size_t>(nranks), -1);
    std::vector<std::uint32_t> hb_buf;
    std::vector<float> gather_buf;

    // Sends this step's heartbeat to every live peer (unless `resend` is
    // false — a barrier re-entered after a no-recover death already sent it)
    // and waits until every live peer's heartbeat reaches (epoch, step).
    // A peer that stays silent for the whole lease budget while we wait is
    // declared dead via DeathNotice. Never uses a collective: those would
    // hang on the dead rank. Threading (src/minimpi/README.md): this loop
    // and strip_recv below both run on the rank's own thread, and the
    // heartbeat and strip tag ranges are disjoint, so each channel keeps a
    // single consumer.
    auto heartbeat_barrier = [&](int step, bool resend) {
      const auto epoch = static_cast<std::uint32_t>(assign.epoch());
      if (resend) {
        const std::array<std::uint32_t, 2> hb = {
            epoch, static_cast<std::uint32_t>(step)};
        for (int p = 0; p < nranks; ++p) {
          if (p == rank || !live[static_cast<std::size_t>(p)]) continue;
          comm.send<std::uint32_t>(p, mpi::tags::elastic_heartbeat_tag(), hb);
        }
      }
      const std::int64_t target =
          hb_key(epoch, static_cast<std::uint32_t>(step));
      std::vector<std::int64_t> waited_ms(static_cast<std::size_t>(nranks), 0);
      util::WallTimer wait_timer;
      for (;;) {
        bool all = true;
        for (int p = 0; p < nranks; ++p) {
          const auto pi = static_cast<std::size_t>(p);
          if (p == rank || !live[pi] || hb_seen[pi] >= target) continue;
          const mpi::RecvStatus status = comm.recv_for<std::uint32_t>(
              p, mpi::tags::elastic_heartbeat_tag(), lease, &hb_buf);
          if (status == mpi::RecvStatus::kOk && hb_buf.size() == 2) {
            hb_seen[pi] = std::max(hb_seen[pi], hb_key(hb_buf[0], hb_buf[1]));
          } else {
            waited_ms[pi] += lease.count();
            if (waited_ms[pi] >= lease_budget_ms) {
              // Batch every peer whose budget expired in this same round so
              // simultaneous deaths produce one deterministic rebalance.
              DeathNotice notice;
              notice.waited_seconds = wait_timer.seconds();
              for (int q = 0; q < nranks; ++q) {
                const auto qi = static_cast<std::size_t>(q);
                if (q != rank && live[qi] && hb_seen[qi] < target &&
                    waited_ms[qi] >= lease_budget_ms) {
                  notice.failed.push_back(q);
                }
              }
              throw notice;
            }
          }
          if (hb_seen[pi] < target) all = false;
        }
        if (all) return;
      }
    };

    // Bounded strip receive. The sender already heartbeat through this
    // step's barrier, so a missing strip is a protocol bug or an injected
    // fault on the elastic tag range (unsupported) — give it several lease
    // budgets, then fail this rank rather than hang or desynchronize.
    auto strip_recv = [&](int src, int tag, std::vector<float>& out,
                          int step) {
      std::int64_t waited = 0;
      const std::int64_t budget = 4 * lease_budget_ms + 1000;
      for (;;) {
        const mpi::RecvStatus status = comm.recv_for<float>(src, tag, lease, &out);
        if (status == mpi::RecvStatus::kOk) return;
        if (status == mpi::RecvStatus::kCorrupt) {
          throw mpi::fault::RankFailure(
              "elastic rollout: CRC-corrupt strip from rank " + std::to_string(src), -1,
              step);
        }
        waited += lease.count();
        if (waited >= budget) {
          throw mpi::fault::RankFailure(
              "elastic rollout: no strip from rank " + std::to_string(src) +
                  " within the patience budget",
              -1, step);
        }
      }
    };

    // --- two-phase task halo exchange --------------------------------------
    // Same strip geometry and W/E-then-S/N phasing as domain/exchange.cpp,
    // but addressed task-to-task through the Assignment map; strips between
    // two tasks on the same rank are copied directly (no mailbox round
    // trip). A neighbour task whose owner is dead (and unadopted) is skipped
    // on both sides — its halo band stays zero, the zero-padding treatment.
    auto exchange_tasks = [&](int step) {
      comm_timer.start();
      const std::uint64_t sent_before = comm.bytes_sent();
      const std::uint64_t recv_before = comm.bytes_received();
      // Phase-1 sends: W/E interior strips of every owned task.
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        const std::int64_t bh = ts.block.height();
        const std::int64_t bw = ts.block.width();
        for (const Direction d : {Direction::kWest, Direction::kEast}) {
          const int nt = neighbor_task(ts.cx, ts.cy, d, px, py);
          if (nt < 0) continue;
          const int dest = assign.owner(nt);
          if (!live[static_cast<std::size_t>(dest)] || dest == rank) continue;
          if (d == Direction::kWest) {
            pack_window(ts.interior, 0, bh, 0, halo, ts.send_strip);
          } else {
            pack_window(ts.interior, 0, bh, bw - halo, halo, ts.send_strip);
          }
          comm.send<float>(dest, strip_tag(nt, d), ts.send_strip);
        }
      }
      // Phase-1 assembly + receives into the x-extended staging.
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        const std::int64_t bh = ts.block.height();
        const std::int64_t bw = ts.block.width();
        if (ts.ext_x.ndim() != 3 || ts.ext_x.dim(0) != chans ||
            ts.ext_x.dim(1) != bh || ts.ext_x.dim(2) != bw + 2 * halo) {
          ts.ext_x = Tensor({chans, bh, bw + 2 * halo});
          ++buffer_growths;
        }
        insert_plane(ts.ext_x, 0, halo, ts.interior.data(), chans, bh, bw);
        zero_window(ts.ext_x, 0, bh, 0, halo);
        zero_window(ts.ext_x, 0, bh, halo + bw, halo);
        for (const Direction side : {Direction::kEast, Direction::kWest}) {
          const int nt = neighbor_task(ts.cx, ts.cy, side, px, py);
          if (nt < 0) continue;
          const int src = assign.owner(nt);
          if (!live[static_cast<std::size_t>(src)]) continue;
          const TaskState& nb = task[static_cast<std::size_t>(nt)];
          const std::int64_t nb_bw = nb.block.width();
          if (src == rank) {
            // Our east halo is the east neighbour's west strip (and vice
            // versa) — copy it straight out of the co-resident task.
            if (side == Direction::kEast) {
              pack_window(nb.interior, 0, bh, 0, halo, ts.recv_strip);
            } else {
              pack_window(nb.interior, 0, bh, nb_bw - halo, halo,
                          ts.recv_strip);
            }
          } else {
            strip_recv(src, strip_tag(t, opposite(side)), ts.recv_strip, step);
          }
          if (side == Direction::kEast) {
            unpack_window(ts.ext_x, 0, bh, halo + bw, halo, ts.recv_strip);
          } else {
            unpack_window(ts.ext_x, 0, bh, 0, halo, ts.recv_strip);
          }
        }
      }
      // Phase-2 sends: S/N strips of the x-extended staging, so diagonal
      // corners arrive via the row neighbours.
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        const std::int64_t bh = ts.block.height();
        const std::int64_t bw = ts.block.width();
        if (ts.padded.ndim() != 3 || ts.padded.dim(0) != chans ||
            ts.padded.dim(1) != bh + 2 * halo ||
            ts.padded.dim(2) != bw + 2 * halo) {
          ts.padded = Tensor({chans, bh + 2 * halo, bw + 2 * halo});
          ++buffer_growths;
        }
        insert_plane(ts.padded, halo, 0, ts.ext_x.data(), chans, bh,
                     bw + 2 * halo);
        zero_window(ts.padded, 0, halo, 0, bw + 2 * halo);
        zero_window(ts.padded, halo + bh, halo, 0, bw + 2 * halo);
        for (const Direction d : {Direction::kSouth, Direction::kNorth}) {
          const int nt = neighbor_task(ts.cx, ts.cy, d, px, py);
          if (nt < 0) continue;
          const int dest = assign.owner(nt);
          if (!live[static_cast<std::size_t>(dest)] || dest == rank) continue;
          if (d == Direction::kSouth) {
            pack_window(ts.ext_x, 0, halo, 0, bw + 2 * halo, ts.send_strip);
          } else {
            pack_window(ts.ext_x, bh - halo, halo, 0, bw + 2 * halo,
                        ts.send_strip);
          }
          comm.send<float>(dest, strip_tag(nt, d), ts.send_strip);
        }
      }
      // Phase-2 receives into the fully padded input.
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        const std::int64_t bh = ts.block.height();
        const std::int64_t bw = ts.block.width();
        for (const Direction side : {Direction::kNorth, Direction::kSouth}) {
          const int nt = neighbor_task(ts.cx, ts.cy, side, px, py);
          if (nt < 0) continue;
          const int src = assign.owner(nt);
          if (!live[static_cast<std::size_t>(src)]) continue;
          const TaskState& nb = task[static_cast<std::size_t>(nt)];
          const std::int64_t nb_bh = nb.block.height();
          if (src == rank) {
            if (side == Direction::kNorth) {
              pack_window(nb.ext_x, 0, halo, 0, bw + 2 * halo, ts.recv_strip);
            } else {
              pack_window(nb.ext_x, nb_bh - halo, halo, 0, bw + 2 * halo,
                          ts.recv_strip);
            }
          } else {
            strip_recv(src, strip_tag(t, opposite(side)), ts.recv_strip, step);
          }
          if (side == Direction::kNorth) {
            unpack_window(ts.padded, halo + bh, halo, 0, bw + 2 * halo,
                          ts.recv_strip);
          } else {
            unpack_window(ts.padded, 0, halo, 0, bw + 2 * halo, ts.recv_strip);
          }
        }
      }
      exchange_bytes += comm.bytes_sent() - sent_before;
      exchange_bytes_recv += comm.bytes_received() - recv_before;
      comm_timer.stop();
    };

    // --- failure handling --------------------------------------------------
    // Every survivor runs this with the identical failed set at the identical
    // step (the all-to-all barrier guarantees it), so the rebalanced map and
    // the rollback line agree everywhere with no coordination. Returns the
    // step to resume from: the rolled-back line + 1 under recovery, or the
    // current step (continue degraded) under --no-recover.
    auto handle_death = [&](const DeathNotice& notice, int step) -> int {
      if (std::find(notice.failed.begin(), notice.failed.end(), 0) !=
          notice.failed.end()) {
        throw std::runtime_error(
            "elastic rollout: rank 0 died; it hosts the recorded frames and "
            "cannot be adopted");
      }
      for (const int q : notice.failed) live[static_cast<std::size_t>(q)] = 0;
      if (detect_step_of[ri] < 0) {
        detect_step_of[ri] = step;
        detect_seconds_of[ri] = notice.waited_seconds;
      }
      detection_hist.observe(notice.waited_seconds);
      std::string who;
      for (const int q : notice.failed) {
        if (!who.empty()) who += ',';
        who += std::to_string(q);
      }
      // The blip: every border facing a dead rank's task degrades now; under
      // recovery it is healthy again the moment the task is adopted.
      int blip = 0;
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        for (const Direction d : mpi::kAllDirections) {
          const int nt = neighbor_task(ts.cx, ts.cy, d, px, py);
          if (nt < 0) continue;
          if (!live[static_cast<std::size_t>(assign.owner(nt))] &&
              !ts.health.degraded(d)) {
            ts.health.mark_degraded(d);
            ++blip;
          }
        }
      }
      if (!el.recover) {
        util::log_warn() << "rank " << rank << ": rank(s) " << who
                         << " dead at step " << step
                         << "; recovery disabled, " << blip
                         << " border(s) degraded to zero padding";
        return step;
      }
      util::WallTimer rebalance_timer;
      const std::vector<int> orphans = assign.rebalance(notice.failed);
      int adopted = 0;
      for (const int t : orphans) {
        if (assign.owner(t) == rank) {
          activate(task[static_cast<std::size_t>(t)]);
          ++adopted;
        }
      }
      owned = assign.tasks_of(rank);
      // Roll every owned task (adopted and original alike) back to the
      // newest common snapshot line; without snapshots, back to the initial
      // frame. The dead rank finished step-1 entirely — its snapshots for
      // every line <= step-1 are durably on disk.
      const int line = snapshots ? rollback_line(step - 1, el.state_every) : -1;
      for (const int t : owned) {
        TaskState& ts = task[static_cast<std::size_t>(t)];
        if (line >= 0) {
          std::string why;
          if (!load_task_state(el.state_dir, t, line, &ts.interior, &why)) {
            throw std::runtime_error("elastic rollout: rollback of task " +
                                     std::to_string(t) + " to step " +
                                     std::to_string(line) + " failed: " + why);
          }
        } else {
          ts.interior = domain::extract_interior(initial, ts.block);
        }
        ts.health.reset();
      }
      const double rebalance_s = rebalance_timer.seconds();
      recoveries_of[ri] += 1;
      adopted_of[ri] += adopted;
      blip_of[ri] += blip;
      rebalance_seconds_of[ri] += rebalance_s;
      epoch_of[ri] = assign.epoch();
      adoptions_counter.add(static_cast<std::uint64_t>(adopted));
      epoch_gauge.set(static_cast<double>(assign.epoch()));
      rebalance_hist.observe(rebalance_s);
      util::log_warn() << "rank " << rank << ": rank(s) " << who
                       << " dead at step " << step << "; epoch "
                       << assign.epoch() << ", adopted " << adopted
                       << " task(s), resuming from step " << (line + 1);
      return line + 1;
    };

    // --- main loop ---------------------------------------------------------
    std::uint64_t warm_growths = 0;
    int warm_until = 0;  // re-baselined after recovery: adopted plans grow once
    auto total_growths = [&] {
      std::uint64_t g = buffer_growths;
      for (const int t : owned) {
        const TaskState& ts = task[static_cast<std::size_t>(t)];
        if (ts.plan != nullptr && ts.use_plan) g += ts.plan->growth_events();
      }
      return g;
    };

    int step = 0;
    bool resend_hb = true;
    while (step < steps) {
      telemetry::Span step_span("elastic.step", "rollout");
      util::WallTimer step_timer;
      // Step-boundary kill point: a killed rank dies *before* sending
      // anything for this step, so no partial traffic is ever in flight at
      // detection time.
      mpi::fault::check_kill_step(rank, step);

      bool rolled_back = false;
      for (;;) {
        try {
          heartbeat_barrier(step, resend_hb);
          resend_hb = true;
          break;
        } catch (const DeathNotice& notice) {
          const int resume = handle_death(notice, step);
          if (el.recover) {
            step = resume;
            resend_hb = true;  // new epoch: fresh heartbeat required
            rolled_back = true;
            break;
          }
          // --no-recover: the barrier re-runs without the dead peers; our
          // heartbeat for this step is already out, don't duplicate it.
          resend_hb = false;
        }
      }
      if (rolled_back) {
        warm_until = step;
        continue;
      }

      if (halo > 0) exchange_tasks(step);

      compute_timer.start();
      {
        telemetry::Span forward_span("elastic.forward", "rollout");
        mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                      mpi::CommPolicy::kForbidden);
        for (const int t : owned) {
          TaskState& ts = task[static_cast<std::size_t>(t)];
          const std::int64_t bh = ts.block.height();
          const std::int64_t bw = ts.block.width();
          Tensor& input = halo > 0 ? ts.padded : ts.interior;
          if (ts.use_plan) {
            const nn::ForwardPlan::Output out =
                ts.plan->run(input.data(), input.dim(1), input.dim(2));
            insert_plane(ts.next, 0, 0, out.data, out.channels, bh, bw);
            std::swap(ts.interior, ts.next);
          } else {
            ts.interior = module_forward(*ts.model, input);
          }
        }
      }
      compute_timer.stop();

      if (options.monitor_health) {
        for (const int t : owned) {
          const TaskState& ts = task[static_cast<std::size_t>(t)];
          const std::uint64_t bad =
              count_nonfinite(ts.interior.data(), ts.interior.size());
          if (bad > 0) {
            nonfinite[ri] += bad;
            nonfinite_counter.add(bad);
            if (first_bad_step[ri] < 0) first_bad_step[ri] = step;
          }
        }
      }

      if (snapshots && (step + 1) % el.state_every == 0) {
        for (const int t : owned) {
          save_task_state(el.state_dir, t, step,
                          task[static_cast<std::size_t>(t)].interior);
        }
      }

      if (recorded(step)) {
        telemetry::Span gather_span("elastic.gather", "rollout");
        comm_timer.start();
        const std::size_t frame_index = static_cast<std::size_t>(
            std::lower_bound(recorded_steps.begin(), recorded_steps.end(),
                             step) -
            recorded_steps.begin());
        if (rank != 0) {
          for (const int t : owned) {
            const TaskState& ts = task[static_cast<std::size_t>(t)];
            comm.send<float>(0, mpi::tags::elastic_gather_tag(t),
                             ts.interior.values());
          }
        } else {
          Tensor& full = result.frames[frame_index];
          if (full.ndim() != 3 || full.dim(0) != chans ||
              full.dim(1) != partition.grid_h() ||
              full.dim(2) != partition.grid_w()) {
            full = Tensor({chans, partition.grid_h(), partition.grid_w()});
          }
          bool any_dead = false;
          for (int p = 0; p < nranks; ++p) {
            any_dead = any_dead || !live[static_cast<std::size_t>(p)];
          }
          // Dead, unadopted tasks leave zero holes (--no-recover only).
          if (any_dead) full.fill(0.0f);
          for (int t = 0; t < tasks; ++t) {
            const TaskState& ts = task[static_cast<std::size_t>(t)];
            const int src = assign.owner(t);
            if (!live[static_cast<std::size_t>(src)]) continue;
            const domain::BlockRange& b = ts.block;
            if (src == 0) {
              insert_plane(full, b.h0, b.w0, ts.interior.data(), chans,
                           b.height(), b.width());
            } else {
              strip_recv(src, mpi::tags::elastic_gather_tag(t), gather_buf,
                         step);
              if (gather_buf.size() !=
                  static_cast<std::size_t>(chans * b.height() * b.width())) {
                throw std::runtime_error(
                    "elastic rollout: gathered block size mismatch");
              }
              insert_plane(full, b.h0, b.w0, gather_buf.data(), chans,
                           b.height(), b.width());
            }
          }
        }
        comm_timer.stop();
      }

      if (step == warm_until) warm_growths = total_growths();
      if (rank == 0) {
        const double seconds = step_timer.seconds();
        result.step_seconds[static_cast<std::size_t>(step)] = seconds;
        step_latency.observe(seconds);
      }
      ++step;
    }

    const std::uint64_t growths = total_growths();
    steady_allocs[ri] = growths - warm_growths;
    steady_counter.add(growths - warm_growths);
    comm_seconds[ri] = comm_timer.seconds();
    compute_seconds[ri] = compute_timer.seconds();
    halo_bytes[ri] = exchange_bytes;
    halo_bytes_recv[ri] = exchange_bytes_recv;
    total_sent[ri] = comm.bytes_sent();
    total_recv[ri] = comm.bytes_received();
    for (const int t : owned) {
      const TaskState& ts = task[static_cast<std::size_t>(t)];
      if (ts.health.any()) {
        task_degraded[static_cast<std::size_t>(t)] = ts.health.count();
        task_border[static_cast<std::size_t>(t)] = ts.health.describe();
      }
    }
  });

  for (int r = 0; r < nranks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    result.health.nonfinite_values += nonfinite[ri];
    if (first_bad_step[ri] >= 0 &&
        (result.health.first_nonfinite_step < 0 ||
         first_bad_step[ri] < result.health.first_nonfinite_step)) {
      result.health.first_nonfinite_step = first_bad_step[ri];
      result.health.first_nonfinite_rank = r;
    }
    result.comm_seconds = std::max(result.comm_seconds, comm_seconds[ri]);
    result.compute_seconds =
        std::max(result.compute_seconds, compute_seconds[ri]);
    result.steady_state_allocs += steady_allocs[ri];
    result.halo_bytes += halo_bytes[ri];
    result.halo_bytes_received += halo_bytes_recv[ri];
    result.bytes_sent += total_sent[ri];
    result.bytes_received += total_recv[ri];
    result.health.recoveries = std::max(result.health.recoveries,
                                        recoveries_of[ri]);
    result.health.adopted_tasks += adopted_of[ri];
    result.health.detection_step =
        std::max(result.health.detection_step, detect_step_of[ri]);
    result.health.detection_seconds =
        std::max(result.health.detection_seconds, detect_seconds_of[ri]);
    result.health.rebalance_seconds =
        std::max(result.health.rebalance_seconds, rebalance_seconds_of[ri]);
    result.health.assignment_epoch =
        std::max(result.health.assignment_epoch, epoch_of[ri]);
    result.health.degraded_during_recovery += blip_of[ri];
  }
  for (int t = 0; t < tasks; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (task_degraded[ti] > 0) {
      result.degraded_borders += task_degraded[ti];
      result.degraded_detail.push_back("task " + std::to_string(t) + ": " +
                                       task_border[ti]);
    }
  }
  result.health.failed_ranks = static_cast<int>(outcome.failed_ranks().size());
  result.health.quant_saturations = saturated.value() - saturated_before;
  result.health.degraded_borders = result.degraded_borders;
  return result;
}

}  // namespace parpde::elastic
