#pragma once

// Versioned task -> rank ownership map for the elastic runtime.
//
// The paper's topology bakes `(cx, cy) == rank` into every partition call
// site; the elastic runtime instead over-decomposes the grid into M >= P
// subdomain *tasks* and routes all traffic through this explicit map. The
// map is versioned by an epoch counter that increments on every rebalance,
// and rebalancing is a *pure function* of the initial layout and the
// cumulative failed-rank set — every survivor computes the identical new
// map locally, with no coordinator and no post-failure collectives (which
// would hang on the dead rank anyway).

#include <vector>

namespace parpde::elastic {

class Assignment {
 public:
  // M tasks striped round-robin over P ranks: owner(t) = t % P at epoch 0.
  Assignment(int tasks, int ranks);

  [[nodiscard]] int tasks() const { return static_cast<int>(owner_.size()); }
  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] int epoch() const { return epoch_; }
  [[nodiscard]] int owner(int task) const { return owner_[task]; }
  [[nodiscard]] bool alive(int rank) const { return alive_[rank]; }
  [[nodiscard]] int live_ranks() const;

  // Tasks currently owned by `rank`, ascending task id.
  [[nodiscard]] std::vector<int> tasks_of(int rank) const;

  // Deterministic rebalance: marks every rank in `failed` dead, then hands
  // each orphaned task (ascending id) to the live rank owning the fewest
  // tasks, ties broken by lowest rank id. Bumps the epoch. Returns the list
  // of reassigned task ids. Survivors calling this with the same failed set
  // in any order converge on bit-identical maps.
  std::vector<int> rebalance(const std::vector<int>& failed);

 private:
  int ranks_;
  int epoch_ = 0;
  std::vector<int> owner_;   // task -> rank
  std::vector<char> alive_;  // rank -> liveness
};

}  // namespace parpde::elastic
