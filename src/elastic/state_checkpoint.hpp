#pragma once

// Per-task rollout state checkpoints for the elastic runtime ("PPES" family,
// same CRC32 + length envelope and tmp/fsync/rename discipline as the PPTC
// training checkpoints in core/train_checkpoint.hpp).
//
// During an elastic rollout every task's interior field is snapshotted at
// fixed step boundaries; after a rank death the survivors roll every task
// back to the newest *common* snapshot line and recompute forward, so the
// adopted tasks resume bit-identically to an uninterrupted run. A torn or
// corrupt file is detected by the envelope and reported, never silently
// loaded.

#include <string>

#include "tensor/tensor.hpp"

namespace parpde::elastic {

// Atomically writes `interior` (the task's field at the end of `step`) to
// `dir/task<t>_step<s>.ppes`. Creates `dir` if needed. Returns the final
// path. Throws on I/O failure.
std::string save_task_state(const std::string& dir, int task, int step,
                            const Tensor& interior);

// Loads and validates one snapshot. Returns false (with a reason in `why`,
// if non-null) on a missing, torn, corrupt, or mismatched file.
bool load_task_state(const std::string& dir, int task, int step, Tensor* out,
                     std::string* why = nullptr);

// Largest step s <= max_step such that (s + 1) % every == 0, or -1 if no
// such snapshot line exists (callers then restart from the initial frame).
// Pure arithmetic — every survivor computes the same rollback line.
[[nodiscard]] constexpr int rollback_line(int max_step, int every) {
  if (every <= 0 || max_step < 0) return -1;
  const int lines = (max_step + 1) / every;  // snapshot steps: every*k - 1
  return lines == 0 ? -1 : lines * every - 1;
}

}  // namespace parpde::elastic
