#include "domain/exchange.hpp"

#include <stdexcept>

#include "minimpi/tags.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace parpde::domain {

namespace {

// Halo traffic uses the registered tags::kHalo block; the payload's direction
// of travel is encoded as the offset, so a rank receives its east halo as the
// message that travelled west from its east neighbour.
constexpr int travel_tag(mpi::Direction d) {
  return mpi::tags::kHalo.base + static_cast<int>(d);
}

// The tag a strip arriving across border `side` carries: it travelled in the
// opposite direction (our east halo is the neighbour's west-travelling strip).
int arrival_tag(mpi::Direction side) {
  return travel_tag(mpi::opposite(side));
}

// Copies the [y0, y0+hh) x [x0, x0+ww) window of a [C, h, w] tensor into a
// packed strip buffer (length C * hh * ww).
std::vector<float> pack_region(const Tensor& t, std::int64_t y0, std::int64_t hh,
                               std::int64_t x0, std::int64_t ww) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  std::vector<float> out(static_cast<std::size_t>(c * hh * ww));
  float* dst = out.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      const float* src = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      dst += ww;
    }
  }
  return out;
}

// Inverse of pack_region.
void unpack_region(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                   std::int64_t ww, const std::vector<float>& strip) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  if (strip.size() != static_cast<std::size_t>(c * hh * ww)) {
    throw std::runtime_error("halo exchange: strip size mismatch");
  }
  const float* src = strip.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      src += ww;
    }
  }
}

}  // namespace

std::string BorderHealth::describe() const {
  std::string out;
  for (const mpi::Direction d : mpi::kAllDirections) {
    if (!degraded(d)) continue;
    if (!out.empty()) out += ',';
    out += direction_name(d).front();
  }
  return out;
}

Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time,
                     const HaloOptions& options, BorderHealth* health) {
  if (interior.ndim() != 3) {
    throw std::invalid_argument("exchange_halo: expected [C,bh,bw] interior");
  }
  const BlockRange block = partition.block(cart.cx(), cart.cy());
  const auto c = interior.dim(0);
  const auto bh = interior.dim(1);
  const auto bw = interior.dim(2);
  if (bh != block.height() || bw != block.width()) {
    throw std::invalid_argument("exchange_halo: interior does not match block");
  }
  if (halo < 0 || halo > bh || halo > bw) {
    throw std::invalid_argument("exchange_halo: halo exceeds block size");
  }
  if (halo == 0) return interior;

  mpi::Communicator& comm = cart.comm();
  telemetry::Span span("halo.exchange", "comm");
  static telemetry::Counter& exchanges = telemetry::counter("halo.exchanges");
  static telemetry::Counter& halo_bytes =
      telemetry::counter("halo.bytes_sent");
  static telemetry::Histogram& latency =
      telemetry::histogram("halo.exchange_seconds");
  static telemetry::Counter& retries = telemetry::counter("comm.retries");
  static telemetry::Histogram& retry_latency =
      telemetry::histogram("comm.retry_seconds");
  static telemetry::Counter& degraded_borders =
      telemetry::counter("inference.degraded_borders");
  exchanges.add(1);
  const std::uint64_t bytes_before = comm.bytes_sent();
  util::WallTimer exchange_timer;
  util::WallTimer timer;

  // A border is live when a neighbour exists there and the border has not
  // been degraded by an earlier step.
  auto live = [&](mpi::Direction side) {
    return cart.neighbor(side) != mpi::kProcNull &&
           !(health != nullptr && health->degraded(side));
  };

  // Definitive loss on `side`: record the sticky degradation (zero halo from
  // now on) or, for callers with no degradation story, fail loudly. Either
  // way the exchange never hangs.
  auto degrade = [&](mpi::Direction side, const std::string& why) {
    const std::string what =
        "rank " + std::to_string(comm.rank()) + ": halo border " +
        direction_name(side) + " (neighbour rank " +
        std::to_string(cart.neighbor(side)) + ") lost: " + why;
    if (health == nullptr) {
      throw std::runtime_error("exchange_halo: " + what);
    }
    degraded_borders.add(1);
    health->mark_degraded(side);
    util::log_warn() << what << "; border degraded to zero padding";
  };

  // A degraded border's neighbour may keep sending until it degrades its own
  // side; discard that stale mail so it cannot mismatch a later step (and so
  // the finalize leak check stays clean).
  auto drain_stale = [&](mpi::Direction side) {
    if (cart.neighbor(side) == mpi::kProcNull || health == nullptr ||
        !health->degraded(side)) {
      return;
    }
    std::vector<float> junk;
    while (comm.recv_for<float>(cart.neighbor(side), arrival_tag(side),
                                std::chrono::milliseconds(0),
                                &junk) != mpi::RecvStatus::kTimeout) {
    }
  };

  auto timed_send = [&](mpi::Direction side, const std::vector<float>& strip) {
    timer.reset();
    comm.send<float>(cart.neighbor(side), travel_tag(side), strip);
    if (comm_time != nullptr) comm_time->add(timer.seconds());
  };

  // Bounded receive across `side` with retry: timeouts retry until the budget
  // is exhausted; a CRC-corrupt strip is a definitive loss (the payload was
  // consumed — waiting longer would only steal the next step's strip and
  // desynchronize the border forever). Returns false when the border just
  // degraded; the caller leaves its halo zero.
  auto robust_recv = [&](mpi::Direction side, std::vector<float>* out) {
    timer.reset();
    int timeouts = 0;
    bool got = false;
    bool corrupt = false;
    for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
      const mpi::RecvStatus status = comm.recv_for<float>(
          cart.neighbor(side), arrival_tag(side), options.recv_timeout, out);
      if (status == mpi::RecvStatus::kOk) {
        got = true;
        break;
      }
      if (status == mpi::RecvStatus::kCorrupt) {
        corrupt = true;
        break;
      }
      ++timeouts;
      retries.add(1);
    }
    if (comm_time != nullptr) comm_time->add(timer.seconds());
    if (timeouts > 0) retry_latency.observe(timer.seconds());
    if (got) return true;
    degrade(side, corrupt ? "strip failed its CRC envelope"
                          : "no strip within the retry budget (" +
                                std::to_string(timeouts) + " attempts)");
    return false;
  };

  for (const mpi::Direction side : mpi::kAllDirections) drain_stale(side);

  // Phase 1: exchange west/east strips of the bare interior.
  Tensor ext_x({c, bh, bw + 2 * halo});
  unpack_region(ext_x, 0, bh, halo, bw, pack_region(interior, 0, bh, 0, bw));

  if (live(mpi::Direction::kWest)) {
    timed_send(mpi::Direction::kWest, pack_region(interior, 0, bh, 0, halo));
  }
  if (live(mpi::Direction::kEast)) {
    timed_send(mpi::Direction::kEast,
               pack_region(interior, 0, bh, bw - halo, halo));
  }
  if (live(mpi::Direction::kEast)) {
    // East neighbour's west strip travelled west into our east halo.
    std::vector<float> strip;
    if (robust_recv(mpi::Direction::kEast, &strip)) {
      unpack_region(ext_x, 0, bh, halo + bw, halo, strip);
    }
  }
  if (live(mpi::Direction::kWest)) {
    std::vector<float> strip;
    if (robust_recv(mpi::Direction::kWest, &strip)) {
      unpack_region(ext_x, 0, bh, 0, halo, strip);
    }
  }

  // Phase 2: exchange south/north strips of the x-extended tensor, so the
  // diagonal corners arrive via the row neighbours.
  Tensor out({c, bh + 2 * halo, bw + 2 * halo});
  unpack_region(out, halo, bh, 0, bw + 2 * halo,
                pack_region(ext_x, 0, bh, 0, bw + 2 * halo));

  if (live(mpi::Direction::kSouth)) {
    timed_send(mpi::Direction::kSouth,
               pack_region(ext_x, 0, halo, 0, bw + 2 * halo));
  }
  if (live(mpi::Direction::kNorth)) {
    timed_send(mpi::Direction::kNorth,
               pack_region(ext_x, bh - halo, halo, 0, bw + 2 * halo));
  }
  if (live(mpi::Direction::kNorth)) {
    std::vector<float> strip;
    if (robust_recv(mpi::Direction::kNorth, &strip)) {
      unpack_region(out, halo + bh, halo, 0, bw + 2 * halo, strip);
    }
  }
  if (live(mpi::Direction::kSouth)) {
    std::vector<float> strip;
    if (robust_recv(mpi::Direction::kSouth, &strip)) {
      unpack_region(out, 0, halo, 0, bw + 2 * halo, strip);
    }
  }
  halo_bytes.add(comm.bytes_sent() - bytes_before);
  latency.observe(exchange_timer.seconds());
  return out;
}

Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior) {
  mpi::Communicator& comm = cart.comm();
  if (comm.rank() != 0) {
    comm.send<float>(0, mpi::tags::kFieldGather.base, interior.values());
    return {};
  }
  const auto c = interior.dim(0);
  Tensor full({c, partition.grid_h(), partition.grid_w()});
  // Rank 0's own block.
  {
    const BlockRange block = partition.block_of_rank(0);
    float* base = full.data();
    const float* src = interior.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = base + (ic * partition.grid_h() + block.h0 + y) *
                                partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
  for (int r = 1; r < comm.size(); ++r) {
    const auto strip = comm.recv<float>(r, mpi::tags::kFieldGather.base);
    const BlockRange block = partition.block_of_rank(r);
    if (strip.size() !=
        static_cast<std::size_t>(c * block.height() * block.width())) {
      throw std::runtime_error("gather_field: block size mismatch");
    }
    const float* src = strip.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = full.data() + (ic * partition.grid_h() + block.h0 + y) *
                                       partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
  return full;
}

Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full) {
  mpi::Communicator& comm = cart.comm();
  const BlockRange mine = partition.block(cart.cx(), cart.cy());
  if (comm.rank() == 0) {
    if (full.ndim() != 3 || full.dim(1) != partition.grid_h() ||
        full.dim(2) != partition.grid_w()) {
      throw std::invalid_argument("scatter_field: bad full field shape");
    }
    const auto c = full.dim(0);
    for (int r = 1; r < comm.size(); ++r) {
      const BlockRange block = partition.block_of_rank(r);
      comm.send<float>(r, mpi::tags::kFieldScatter.base,
                       pack_region(full, block.h0, block.height(), block.w0,
                                   block.width()));
    }
    Tensor mine_t({c, mine.height(), mine.width()});
    unpack_region(mine_t, 0, mine.height(), 0, mine.width(),
                  pack_region(full, mine.h0, mine.height(), mine.w0,
                              mine.width()));
    return mine_t;
  }
  const auto strip = comm.recv<float>(0, mpi::tags::kFieldScatter.base);
  const std::int64_t c =
      static_cast<std::int64_t>(strip.size()) / (mine.height() * mine.width());
  Tensor mine_t({c, mine.height(), mine.width()});
  unpack_region(mine_t, 0, mine.height(), 0, mine.width(), strip);
  return mine_t;
}

}  // namespace parpde::domain
