#include "domain/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "minimpi/tags.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace parpde::domain {

namespace {

// Halo traffic uses the registered tags::kHalo block; the payload's direction
// of travel is encoded as the offset, so a rank receives its east halo as the
// message that travelled west from its east neighbour.
constexpr int travel_tag(mpi::Direction d) {
  return mpi::tags::kHalo.base + static_cast<int>(d);
}

// The tag a strip arriving across border `side` carries: it travelled in the
// opposite direction (our east halo is the neighbour's west-travelling strip).
int arrival_tag(mpi::Direction side) {
  return travel_tag(mpi::opposite(side));
}

// Copies the [y0, y0+hh) x [x0, x0+ww) window of a [C, h, w] tensor into a
// packed strip buffer (length C * hh * ww), reusing its capacity.
void pack_region_into(const Tensor& t, std::int64_t y0, std::int64_t hh,
                      std::int64_t x0, std::int64_t ww,
                      std::vector<float>& out) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  out.resize(static_cast<std::size_t>(c * hh * ww));
  float* dst = out.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      const float* src = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      dst += ww;
    }
  }
}

std::vector<float> pack_region(const Tensor& t, std::int64_t y0, std::int64_t hh,
                               std::int64_t x0, std::int64_t ww) {
  std::vector<float> out;
  pack_region_into(t, y0, hh, x0, ww, out);
  return out;
}

// Inverse of pack_region.
void unpack_region(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                   std::int64_t ww, const std::vector<float>& strip) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  if (strip.size() != static_cast<std::size_t>(c * hh * ww)) {
    throw std::runtime_error("halo exchange: strip size mismatch");
  }
  const float* src = strip.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      src += ww;
    }
  }
}

// Zeroes the [y0, y0+hh) x [x0, x0+ww) window of a [C, h, w] tensor.
void zero_region(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                 std::int64_t ww) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::fill(dst, dst + ww, 0.0f);
    }
  }
}

// Interface-residual probes for the health monitor: mean absolute difference
// between two lines of a [C, h, w] tensor — the innermost received halo line
// against the adjacent interior line. Zero when neighbouring surrogates agree
// at the seam; growth across steps is the paper's stitching-error failure
// mode surfacing before frames visibly tear.

// Rows ya vs yb over x in [x0, x0 + len).
double row_residual(const Tensor& t, std::int64_t ya, std::int64_t yb,
                    std::int64_t x0, std::int64_t len) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  double sum = 0.0;
  for (std::int64_t ic = 0; ic < c; ++ic) {
    const float* a = t.data() + (ic * h + ya) * w + x0;
    const float* b = t.data() + (ic * h + yb) * w + x0;
    for (std::int64_t i = 0; i < len; ++i) {
      sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    }
  }
  return sum / static_cast<double>(c * len);
}

// Columns xa vs xb over all rows.
double col_residual(const Tensor& t, std::int64_t xa, std::int64_t xb) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  double sum = 0.0;
  for (std::int64_t ic = 0; ic < c; ++ic) {
    const float* base = t.data() + ic * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      sum += std::fabs(static_cast<double>(base[y * w + xa]) -
                       static_cast<double>(base[y * w + xb]));
    }
  }
  return sum / static_cast<double>(c * h);
}

// Copies all of `src` ([C, sh, sw]) into `dst` ([C, h, w]) at (y0, x0).
void copy_window(Tensor& dst, std::int64_t y0, std::int64_t x0,
                 const Tensor& src) {
  const auto c = src.dim(0), sh = src.dim(1), sw = src.dim(2);
  const auto h = dst.dim(1), w = dst.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < sh; ++y) {
      const float* s = src.data() + (ic * sh + y) * sw;
      float* d = dst.data() + (ic * h + y0 + y) * w + x0;
      std::copy(s, s + sw, d);
    }
  }
}

}  // namespace

std::string BorderHealth::describe() const {
  std::string out;
  for (const mpi::Direction d : mpi::kAllDirections) {
    if (!degraded(d)) continue;
    if (!out.empty()) out += ',';
    out += direction_name(d).front();
  }
  return out;
}

HaloExchange::HaloExchange(mpi::CartComm& cart, const Partition& partition,
                           std::int64_t halo, const HaloOptions& options,
                           BorderHealth* health)
    : cart_(cart),
      partition_(partition),
      halo_(halo),
      options_(options),
      health_(health) {
  if (halo <= 0) {
    throw std::invalid_argument("HaloExchange: halo must be positive");
  }
}

bool HaloExchange::live(mpi::Direction side) const {
  return cart_.neighbor(side) != mpi::kProcNull &&
         !(health_ != nullptr && health_->degraded(side));
}

void HaloExchange::degrade(mpi::Direction side, const std::string& why) {
  static telemetry::Counter& degraded_borders =
      telemetry::counter("inference.degraded_borders");
  mpi::Communicator& comm = cart_.comm();
  const std::string what =
      "rank " + std::to_string(comm.rank()) + ": halo border " +
      direction_name(side) + " (neighbour rank " +
      std::to_string(cart_.neighbor(side)) + ") lost: " + why;
  if (health_ == nullptr) {
    throw std::runtime_error("exchange_halo: " + what);
  }
  degraded_borders.add(1);
  health_->mark_degraded(side);
  util::log_warn() << what << "; border degraded to zero padding";
}

void HaloExchange::drain_stale(mpi::Direction side) {
  // A degraded border's neighbour may keep sending until it degrades its own
  // side; discard that stale mail so it cannot mismatch a later step (and so
  // the finalize leak check stays clean).
  if (cart_.neighbor(side) == mpi::kProcNull || health_ == nullptr ||
      !health_->degraded(side)) {
    return;
  }
  mpi::Communicator& comm = cart_.comm();
  while (comm.recv_for<float>(cart_.neighbor(side), arrival_tag(side),
                              std::chrono::milliseconds(0),
                              &recv_strip_) != mpi::RecvStatus::kTimeout) {
  }
}

void HaloExchange::timed_send(mpi::Direction side,
                              const std::vector<float>& strip,
                              util::AccumulatingTimer* comm_time) {
  util::WallTimer timer;
  cart_.comm().send<float>(cart_.neighbor(side), travel_tag(side), strip);
  if (comm_time != nullptr) comm_time->add(timer.seconds());
}

// Bounded receive across `side` with exponentially backed-off retry: each
// timeout doubles the next attempt's wait (capped at `max_recv_timeout`)
// until either `max_retries` attempts or the cumulative `recv_budget` is
// spent — a dead neighbour costs a handful of wakeups, not 40. A CRC-corrupt
// strip is a definitive loss (the payload was consumed — waiting longer
// would only steal the next step's strip and desynchronize the border
// forever). Returns false when the border just degraded; the caller leaves
// its halo zero. Timeout choices never touch the send-side fault engine, so
// per-channel fault-draw sequences are unchanged by any backoff schedule.
// Threading (src/minimpi/README.md): the overlapped engine may run this on a
// pool worker, but one side's receives are strictly sequential through this
// object, so each halo channel (and recv_strip_) keeps a single consumer.
bool HaloExchange::robust_recv(mpi::Direction side,
                               util::AccumulatingTimer* comm_time) {
  static telemetry::Counter& retries = telemetry::counter("comm.retries");
  static telemetry::Histogram& retry_latency =
      telemetry::histogram("comm.retry_seconds");
  mpi::Communicator& comm = cart_.comm();
  const std::int64_t stall_start =
      telemetry::enabled() ? telemetry::now_us() : 0;
  util::WallTimer timer;
  int timeouts = 0;
  bool got = false;
  bool corrupt = false;
  std::chrono::milliseconds wait = options_.recv_timeout;
  std::chrono::milliseconds spent{0};
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0 && spent >= options_.recv_budget) break;
    const std::chrono::milliseconds slice =
        std::min(wait, std::max(options_.recv_budget - spent,
                                std::chrono::milliseconds(1)));
    const mpi::RecvStatus status = comm.recv_for<float>(
        cart_.neighbor(side), arrival_tag(side), slice, &recv_strip_);
    if (status == mpi::RecvStatus::kOk) {
      got = true;
      break;
    }
    if (status == mpi::RecvStatus::kCorrupt) {
      corrupt = true;
      break;
    }
    spent += slice;
    wait = std::min(wait * 2, options_.max_recv_timeout);
    ++timeouts;
    retries.add(1);
  }
  if (comm_time != nullptr) comm_time->add(timer.seconds());
  if (timeouts > 0) {
    retry_latency.observe(timer.seconds());
    // Retroactive span covering the whole degraded wait, so the critical-path
    // analyzer can attribute this slice of halo.finish to border trouble
    // rather than ordinary receive wait.
    if (telemetry::enabled()) {
      telemetry::emit_span("halo.stall", "comm", stall_start,
                           telemetry::now_us() - stall_start);
    }
  }
  if (got) return true;
  degrade(side, corrupt ? "strip failed its CRC envelope"
                        : "no strip within the retry budget (" +
                              std::to_string(timeouts) + " attempts)");
  return false;
}

void HaloExchange::begin(const Tensor& interior,
                         util::AccumulatingTimer* comm_time) {
  if (interior.ndim() != 3) {
    throw std::invalid_argument("HaloExchange: expected [C,bh,bw] interior");
  }
  const BlockRange block = partition_.block(cart_.cx(), cart_.cy());
  const auto bh = interior.dim(1);
  const auto bw = interior.dim(2);
  if (bh != block.height() || bw != block.width()) {
    throw std::invalid_argument("HaloExchange: interior does not match block");
  }
  if (halo_ > bh || halo_ > bw) {
    throw std::invalid_argument("HaloExchange: halo exceeds block size");
  }
  if (in_flight_) {
    throw std::logic_error("HaloExchange::begin: previous exchange unfinished");
  }
  static telemetry::Counter& exchanges = telemetry::counter("halo.exchanges");
  telemetry::Span span("halo.begin", "comm");
  exchanges.add(1);
  bytes_before_ = cart_.comm().bytes_sent();
  util::WallTimer begin_timer;

  for (const mpi::Direction side : mpi::kAllDirections) drain_stale(side);

  // Phase-1 sends: the bare interior's west/east strips leave as soon as the
  // step's output exists (buffered — the mailbox copy completes them).
  if (live(mpi::Direction::kWest)) {
    pack_region_into(interior, 0, bh, 0, halo_, send_strip_);
    timed_send(mpi::Direction::kWest, send_strip_, comm_time);
  }
  if (live(mpi::Direction::kEast)) {
    pack_region_into(interior, 0, bh, bw - halo_, halo_, send_strip_);
    timed_send(mpi::Direction::kEast, send_strip_, comm_time);
  }
  begin_seconds_ = begin_timer.seconds();
  in_flight_ = true;
}

void HaloExchange::finish(const Tensor& interior, Tensor& padded,
                          util::AccumulatingTimer* comm_time) {
  if (!in_flight_) {
    throw std::logic_error("HaloExchange::finish without begin");
  }
  in_flight_ = false;
  static telemetry::Counter& halo_bytes = telemetry::counter("halo.bytes_sent");
  static telemetry::Histogram& latency =
      telemetry::histogram("halo.exchange_seconds");
  telemetry::Span span("halo.finish", "comm");
  util::WallTimer finish_timer;

  const auto c = interior.dim(0);
  const auto bh = interior.dim(1);
  const auto bw = interior.dim(2);

  // Phase 1 completes: west/east strips land in the x-extended staging
  // tensor. The side bands are re-zeroed every step because the buffer is
  // persistent and a degraded (or physical) border must stay zero.
  if (ext_x_.ndim() != 3 || ext_x_.dim(0) != c || ext_x_.dim(1) != bh ||
      ext_x_.dim(2) != bw + 2 * halo_) {
    ext_x_ = Tensor({c, bh, bw + 2 * halo_});
  }
  copy_window(ext_x_, 0, halo_, interior);
  zero_region(ext_x_, 0, bh, 0, halo_);
  zero_region(ext_x_, 0, bh, halo_ + bw, halo_);
  // Health monitor: gauge the seam mismatch of each received strip (innermost
  // halo line vs the adjacent interior line). Only with a BorderHealth to
  // record into — callers without a degradation story skip the probes.
  static telemetry::Gauge& seam_gauge =
      telemetry::gauge("halo.interface_residual");
  const bool probe = health_ != nullptr && options_.probe_residuals;
  const auto observe_seam = [this](double r) {
    health_->observe_residual(r);
    seam_gauge.set(r);
  };
  if (live(mpi::Direction::kEast) &&
      robust_recv(mpi::Direction::kEast, comm_time)) {
    // East neighbour's west strip travelled west into our east halo.
    unpack_region(ext_x_, 0, bh, halo_ + bw, halo_, recv_strip_);
    if (probe) observe_seam(col_residual(ext_x_, halo_ + bw, halo_ + bw - 1));
  }
  if (live(mpi::Direction::kWest) &&
      robust_recv(mpi::Direction::kWest, comm_time)) {
    unpack_region(ext_x_, 0, bh, 0, halo_, recv_strip_);
    if (probe) observe_seam(col_residual(ext_x_, halo_ - 1, halo_));
  }

  // Phase 2: exchange south/north strips of the x-extended tensor, so the
  // diagonal corners arrive via the row neighbours.
  if (padded.ndim() != 3 || padded.dim(0) != c ||
      padded.dim(1) != bh + 2 * halo_ || padded.dim(2) != bw + 2 * halo_) {
    padded = Tensor({c, bh + 2 * halo_, bw + 2 * halo_});
  }
  copy_window(padded, halo_, 0, ext_x_);
  zero_region(padded, 0, halo_, 0, bw + 2 * halo_);
  zero_region(padded, halo_ + bh, halo_, 0, bw + 2 * halo_);

  if (live(mpi::Direction::kSouth)) {
    pack_region_into(ext_x_, 0, halo_, 0, bw + 2 * halo_, send_strip_);
    timed_send(mpi::Direction::kSouth, send_strip_, comm_time);
  }
  if (live(mpi::Direction::kNorth)) {
    pack_region_into(ext_x_, bh - halo_, halo_, 0, bw + 2 * halo_, send_strip_);
    timed_send(mpi::Direction::kNorth, send_strip_, comm_time);
  }
  if (live(mpi::Direction::kNorth) &&
      robust_recv(mpi::Direction::kNorth, comm_time)) {
    unpack_region(padded, halo_ + bh, halo_, 0, bw + 2 * halo_, recv_strip_);
    if (probe) {
      observe_seam(row_residual(padded, halo_ + bh, halo_ + bh - 1, halo_, bw));
    }
  }
  if (live(mpi::Direction::kSouth) &&
      robust_recv(mpi::Direction::kSouth, comm_time)) {
    unpack_region(padded, 0, halo_, 0, bw + 2 * halo_, recv_strip_);
    if (probe) observe_seam(row_residual(padded, halo_ - 1, halo_, halo_, bw));
  }
  halo_bytes.add(cart_.comm().bytes_sent() - bytes_before_);
  latency.observe(begin_seconds_ + finish_timer.seconds());
}

Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time,
                     const HaloOptions& options, BorderHealth* health) {
  if (interior.ndim() != 3) {
    throw std::invalid_argument("exchange_halo: expected [C,bh,bw] interior");
  }
  const BlockRange block = partition.block(cart.cx(), cart.cy());
  if (interior.dim(1) != block.height() || interior.dim(2) != block.width()) {
    throw std::invalid_argument("exchange_halo: interior does not match block");
  }
  if (halo < 0 || halo > interior.dim(1) || halo > interior.dim(2)) {
    throw std::invalid_argument("exchange_halo: halo exceeds block size");
  }
  if (halo == 0) return interior;

  HaloExchange exchange(cart, partition, halo, options, health);
  Tensor padded;
  exchange.begin(interior, comm_time);
  exchange.finish(interior, padded, comm_time);
  return padded;
}

Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior) {
  gather_field_send(cart, interior);
  Tensor full;
  gather_field_collect(cart, partition, interior, full);
  return full;
}

void gather_field_send(mpi::CartComm& cart, const Tensor& interior) {
  mpi::Communicator& comm = cart.comm();
  if (comm.rank() == 0) return;
  comm.send<float>(0, mpi::tags::kFieldGather.base, interior.values());
}

void gather_field_collect(mpi::CartComm& cart, const Partition& partition,
                          const Tensor& root_interior, Tensor& full) {
  mpi::Communicator& comm = cart.comm();
  if (comm.rank() != 0) return;
  const auto c = root_interior.dim(0);
  if (full.ndim() != 3 || full.dim(0) != c ||
      full.dim(1) != partition.grid_h() || full.dim(2) != partition.grid_w()) {
    full = Tensor({c, partition.grid_h(), partition.grid_w()});
  }
  // Rank 0's own block.
  {
    const BlockRange block = partition.block_of_rank(0);
    float* base = full.data();
    const float* src = root_interior.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = base + (ic * partition.grid_h() + block.h0 + y) *
                                partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
  for (int r = 1; r < comm.size(); ++r) {
    const auto strip = comm.recv<float>(r, mpi::tags::kFieldGather.base);
    const BlockRange block = partition.block_of_rank(r);
    if (strip.size() !=
        static_cast<std::size_t>(c * block.height() * block.width())) {
      throw std::runtime_error("gather_field: block size mismatch");
    }
    const float* src = strip.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = full.data() + (ic * partition.grid_h() + block.h0 + y) *
                                       partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
}

Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full) {
  mpi::Communicator& comm = cart.comm();
  const BlockRange mine = partition.block(cart.cx(), cart.cy());
  if (comm.rank() == 0) {
    if (full.ndim() != 3 || full.dim(1) != partition.grid_h() ||
        full.dim(2) != partition.grid_w()) {
      throw std::invalid_argument("scatter_field: bad full field shape");
    }
    const auto c = full.dim(0);
    for (int r = 1; r < comm.size(); ++r) {
      const BlockRange block = partition.block_of_rank(r);
      comm.send<float>(r, mpi::tags::kFieldScatter.base,
                       pack_region(full, block.h0, block.height(), block.w0,
                                   block.width()));
    }
    Tensor mine_t({c, mine.height(), mine.width()});
    unpack_region(mine_t, 0, mine.height(), 0, mine.width(),
                  pack_region(full, mine.h0, mine.height(), mine.w0,
                              mine.width()));
    return mine_t;
  }
  const auto strip = comm.recv<float>(0, mpi::tags::kFieldScatter.base);
  const std::int64_t c =
      static_cast<std::int64_t>(strip.size()) / (mine.height() * mine.width());
  Tensor mine_t({c, mine.height(), mine.width()});
  unpack_region(mine_t, 0, mine.height(), 0, mine.width(), strip);
  return mine_t;
}

}  // namespace parpde::domain
