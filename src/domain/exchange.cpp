#include "domain/exchange.hpp"

#include <stdexcept>

#include "minimpi/tags.hpp"
#include "util/telemetry.hpp"

namespace parpde::domain {

namespace {

// Halo traffic uses the registered tags::kHalo block; the payload's direction
// of travel is encoded as the offset, so a rank receives its east halo as the
// message that travelled west from its east neighbour.
constexpr int travel_tag(mpi::Direction d) {
  return mpi::tags::kHalo.base + static_cast<int>(d);
}

// Copies the [y0, y0+hh) x [x0, x0+ww) window of a [C, h, w] tensor into a
// packed strip buffer (length C * hh * ww).
std::vector<float> pack_region(const Tensor& t, std::int64_t y0, std::int64_t hh,
                               std::int64_t x0, std::int64_t ww) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  std::vector<float> out(static_cast<std::size_t>(c * hh * ww));
  float* dst = out.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      const float* src = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      dst += ww;
    }
  }
  return out;
}

// Inverse of pack_region.
void unpack_region(Tensor& t, std::int64_t y0, std::int64_t hh, std::int64_t x0,
                   std::int64_t ww, const std::vector<float>& strip) {
  const auto c = t.dim(0), h = t.dim(1), w = t.dim(2);
  if (strip.size() != static_cast<std::size_t>(c * hh * ww)) {
    throw std::runtime_error("halo exchange: strip size mismatch");
  }
  const float* src = strip.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < hh; ++y) {
      float* dst = t.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + ww, dst);
      src += ww;
    }
  }
}

}  // namespace

Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time) {
  if (interior.ndim() != 3) {
    throw std::invalid_argument("exchange_halo: expected [C,bh,bw] interior");
  }
  const BlockRange block = partition.block(cart.cx(), cart.cy());
  const auto c = interior.dim(0);
  const auto bh = interior.dim(1);
  const auto bw = interior.dim(2);
  if (bh != block.height() || bw != block.width()) {
    throw std::invalid_argument("exchange_halo: interior does not match block");
  }
  if (halo < 0 || halo > bh || halo > bw) {
    throw std::invalid_argument("exchange_halo: halo exceeds block size");
  }
  if (halo == 0) return interior;

  mpi::Communicator& comm = cart.comm();
  telemetry::Span span("halo.exchange", "comm");
  static telemetry::Counter& exchanges = telemetry::counter("halo.exchanges");
  static telemetry::Counter& halo_bytes =
      telemetry::counter("halo.bytes_sent");
  static telemetry::Histogram& latency =
      telemetry::histogram("halo.exchange_seconds");
  exchanges.add(1);
  const std::uint64_t bytes_before = comm.bytes_sent();
  util::WallTimer exchange_timer;
  util::WallTimer timer;
  auto timed_send = [&](int dest, int tag, const std::vector<float>& strip) {
    timer.reset();
    comm.send<float>(dest, tag, strip);
    if (comm_time != nullptr) comm_time->add(timer.seconds());
  };
  auto timed_recv = [&](int source, int tag) {
    timer.reset();
    auto data = comm.recv<float>(source, tag);
    if (comm_time != nullptr) comm_time->add(timer.seconds());
    return data;
  };

  // Phase 1: exchange west/east strips of the bare interior.
  Tensor ext_x({c, bh, bw + 2 * halo});
  unpack_region(ext_x, 0, bh, halo, bw, pack_region(interior, 0, bh, 0, bw));

  const int west = cart.neighbor(mpi::Direction::kWest);
  const int east = cart.neighbor(mpi::Direction::kEast);
  if (west != mpi::kProcNull) {
    timed_send(west, travel_tag(mpi::Direction::kWest),
               pack_region(interior, 0, bh, 0, halo));
  }
  if (east != mpi::kProcNull) {
    timed_send(east, travel_tag(mpi::Direction::kEast),
               pack_region(interior, 0, bh, bw - halo, halo));
  }
  if (east != mpi::kProcNull) {
    // East neighbour's west strip travelled west into our east halo.
    unpack_region(ext_x, 0, bh, halo + bw, halo,
                  timed_recv(east, travel_tag(mpi::Direction::kWest)));
  }
  if (west != mpi::kProcNull) {
    unpack_region(ext_x, 0, bh, 0, halo,
                  timed_recv(west, travel_tag(mpi::Direction::kEast)));
  }

  // Phase 2: exchange south/north strips of the x-extended tensor, so the
  // diagonal corners arrive via the row neighbours.
  Tensor out({c, bh + 2 * halo, bw + 2 * halo});
  unpack_region(out, halo, bh, 0, bw + 2 * halo,
                pack_region(ext_x, 0, bh, 0, bw + 2 * halo));

  const int south = cart.neighbor(mpi::Direction::kSouth);
  const int north = cart.neighbor(mpi::Direction::kNorth);
  if (south != mpi::kProcNull) {
    timed_send(south, travel_tag(mpi::Direction::kSouth),
               pack_region(ext_x, 0, halo, 0, bw + 2 * halo));
  }
  if (north != mpi::kProcNull) {
    timed_send(north, travel_tag(mpi::Direction::kNorth),
               pack_region(ext_x, bh - halo, halo, 0, bw + 2 * halo));
  }
  if (north != mpi::kProcNull) {
    unpack_region(out, halo + bh, halo, 0, bw + 2 * halo,
                  timed_recv(north, travel_tag(mpi::Direction::kSouth)));
  }
  if (south != mpi::kProcNull) {
    unpack_region(out, 0, halo, 0, bw + 2 * halo,
                  timed_recv(south, travel_tag(mpi::Direction::kNorth)));
  }
  halo_bytes.add(comm.bytes_sent() - bytes_before);
  latency.observe(exchange_timer.seconds());
  return out;
}

Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior) {
  mpi::Communicator& comm = cart.comm();
  if (comm.rank() != 0) {
    comm.send<float>(0, mpi::tags::kFieldGather.base, interior.values());
    return {};
  }
  const auto c = interior.dim(0);
  Tensor full({c, partition.grid_h(), partition.grid_w()});
  // Rank 0's own block.
  {
    const BlockRange block = partition.block_of_rank(0);
    float* base = full.data();
    const float* src = interior.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = base + (ic * partition.grid_h() + block.h0 + y) *
                                partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
  for (int r = 1; r < comm.size(); ++r) {
    const auto strip = comm.recv<float>(r, mpi::tags::kFieldGather.base);
    const BlockRange block = partition.block_of_rank(r);
    if (strip.size() !=
        static_cast<std::size_t>(c * block.height() * block.width())) {
      throw std::runtime_error("gather_field: block size mismatch");
    }
    const float* src = strip.data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t y = 0; y < block.height(); ++y) {
        float* dst = full.data() + (ic * partition.grid_h() + block.h0 + y) *
                                       partition.grid_w() +
                     block.w0;
        std::copy(src, src + block.width(), dst);
        src += block.width();
      }
    }
  }
  return full;
}

Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full) {
  mpi::Communicator& comm = cart.comm();
  const BlockRange mine = partition.block(cart.cx(), cart.cy());
  if (comm.rank() == 0) {
    if (full.ndim() != 3 || full.dim(1) != partition.grid_h() ||
        full.dim(2) != partition.grid_w()) {
      throw std::invalid_argument("scatter_field: bad full field shape");
    }
    const auto c = full.dim(0);
    for (int r = 1; r < comm.size(); ++r) {
      const BlockRange block = partition.block_of_rank(r);
      comm.send<float>(r, mpi::tags::kFieldScatter.base,
                       pack_region(full, block.h0, block.height(), block.w0,
                                   block.width()));
    }
    Tensor mine_t({c, mine.height(), mine.width()});
    unpack_region(mine_t, 0, mine.height(), 0, mine.width(),
                  pack_region(full, mine.h0, mine.height(), mine.w0,
                              mine.width()));
    return mine_t;
  }
  const auto strip = comm.recv<float>(0, mpi::tags::kFieldScatter.base);
  const std::int64_t c =
      static_cast<std::int64_t>(strip.size()) / (mine.height() * mine.width());
  Tensor mine_t({c, mine.height(), mine.width()});
  unpack_region(mine_t, 0, mine.height(), 0, mine.width(), strip);
  return mine_t;
}

}  // namespace parpde::domain
