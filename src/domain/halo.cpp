#include "domain/halo.hpp"

#include <algorithm>
#include <stdexcept>

namespace parpde::domain {

namespace {

void check_frame(const Tensor& frame, const char* what) {
  if (frame.ndim() != 3) {
    throw std::invalid_argument(std::string(what) + ": expected [C,H,W] frame, got " +
                                shape_to_string(frame.shape()));
  }
}

}  // namespace

Tensor extract_interior(const Tensor& frame, const BlockRange& block) {
  return extract_with_halo(frame, block, 0);
}

Tensor extract_with_halo(const Tensor& frame, const BlockRange& block,
                         std::int64_t halo) {
  Tensor out;
  extract_with_halo_into(frame, block, halo, out);
  return out;
}

void extract_with_halo_into(const Tensor& frame, const BlockRange& block,
                            std::int64_t halo, Tensor& out) {
  check_frame(frame, "extract_with_halo");
  if (halo < 0) throw std::invalid_argument("extract_with_halo: negative halo");
  const auto c = frame.dim(0), h = frame.dim(1), w = frame.dim(2);
  if (block.h0 < 0 || block.h1 > h || block.w0 < 0 || block.w1 > w ||
      block.height() <= 0 || block.width() <= 0) {
    throw std::invalid_argument("extract_with_halo: block out of range");
  }
  const std::int64_t oh = block.height() + 2 * halo;
  const std::int64_t ow = block.width() + 2 * halo;
  if (out.ndim() != 3 || out.dim(0) != c || out.dim(1) != oh ||
      out.dim(2) != ow) {
    out = Tensor({c, oh, ow});
  } else {
    out.fill(0.0f);  // the physical-boundary margin must stay zero on reuse
  }
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < oh; ++y) {
      const std::int64_t gy = block.h0 - halo + y;
      if (gy < 0 || gy >= h) continue;  // physical boundary: stays zero
      const std::int64_t gx_lo = std::max<std::int64_t>(block.w0 - halo, 0);
      const std::int64_t gx_hi = std::min<std::int64_t>(block.w1 + halo, w);
      if (gx_hi <= gx_lo) continue;
      const float* src = frame.data() + (ic * h + gy) * w + gx_lo;
      float* dst = out.data() + (ic * oh + y) * ow + (gx_lo - (block.w0 - halo));
      std::copy(src, src + (gx_hi - gx_lo), dst);
    }
  }
}

void insert_interior(Tensor& frame, const BlockRange& block,
                     const Tensor& interior) {
  check_frame(frame, "insert_interior");
  if (interior.ndim() != 3 || interior.dim(0) != frame.dim(0) ||
      interior.dim(1) != block.height() || interior.dim(2) != block.width()) {
    throw std::invalid_argument("insert_interior: interior shape mismatch");
  }
  const auto c = frame.dim(0), h = frame.dim(1), w = frame.dim(2);
  if (block.h0 < 0 || block.h1 > h || block.w0 < 0 || block.w1 > w) {
    throw std::invalid_argument("insert_interior: block out of range");
  }
  const auto bh = block.height(), bw = block.width();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < bh; ++y) {
      const float* src = interior.data() + (ic * bh + y) * bw;
      float* dst = frame.data() + (ic * h + block.h0 + y) * w + block.w0;
      std::copy(src, src + bw, dst);
    }
  }
}

}  // namespace parpde::domain
