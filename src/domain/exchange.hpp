#pragma once

// Parallel field plumbing for inference (Sec. III): point-to-point halo
// exchange between neighbouring subdomains ("each processor sends the
// boundary data to the corresponding neighbor ... no central instance is
// used"), plus gather/scatter of full fields for validation and I/O.
//
// The halo exchange is fault-aware: receives are bounded (timeout + retry,
// never an unbounded wait — lint rule `unbounded-halo-recv`), and a border
// whose neighbour is definitively lost (retry budget exhausted, or a
// CRC-corrupt strip consumed) is *degraded*: its halo stays zero from then
// on, which is exactly the paper's zero-padding border treatment, so the
// rollout keeps producing frames instead of hanging. Degradations are sticky
// per border, recorded in BorderHealth, and counted in the
// `inference.degraded_borders` telemetry counter. See docs/robustness.md.

#include <array>
#include <chrono>
#include <string>

#include "domain/partition.hpp"
#include "minimpi/cart.hpp"
#include "tensor/tensor.hpp"
#include "util/timer.hpp"

namespace parpde::domain {

// Patience knobs for the bounded halo receive. The defaults give each border
// ~10 s of total patience per step — generous enough that a fault-free run
// never degrades even under sanitizers, tight enough that a genuinely dead
// neighbour cannot stall a rollout forever. Chaos tests shrink these.
struct HaloOptions {
  std::chrono::milliseconds recv_timeout{250};  // per receive attempt
  int max_retries = 40;                         // attempts beyond the first
};

// Sticky per-border degradation state of one rank, carried across rollout
// steps. A degraded border is never sent to or received from again; its halo
// strip stays zero (the paper's zero-padding treatment).
class BorderHealth {
 public:
  [[nodiscard]] bool degraded(mpi::Direction d) const {
    return degraded_[static_cast<std::size_t>(d)];
  }
  void mark_degraded(mpi::Direction d) {
    degraded_[static_cast<std::size_t>(d)] = true;
  }
  [[nodiscard]] bool any() const {
    for (const bool b : degraded_) {
      if (b) return true;
    }
    return false;
  }
  [[nodiscard]] int count() const {
    int n = 0;
    for (const bool b : degraded_) n += b ? 1 : 0;
    return n;
  }
  // Compact label of the degraded borders, e.g. "E,N" ("" when healthy).
  [[nodiscard]] std::string describe() const;

 private:
  std::array<bool, 4> degraded_{};  // indexed by mpi::Direction
};

// Surrounds this rank's interior [C, bh, bw] with a halo of width `halo`
// filled from the four neighbours (two-phase exchange, so diagonal corners
// are correct). Physical-boundary halo stays zero. Returns
// [C, bh + 2 halo, bw + 2 halo]. If `comm_time` is non-null, the wall time
// spent in sends/receives is accumulated into it.
//
// Receives are bounded by `options`. When a border's retry budget is
// exhausted (or its strip arrives CRC-corrupt), the border is degraded: with
// `health` non-null the degradation is recorded there and the exchange
// continues with a zero halo on that side; with `health` null (callers that
// have no degradation story, e.g. benchmarks) the exchange throws instead —
// either way it never hangs.
Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time = nullptr,
                     const HaloOptions& options = {},
                     BorderHealth* health = nullptr);

// Collects per-rank interiors into the full [C, H, W] field on rank 0
// (other ranks get an empty tensor).
Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior);

// Rank 0 distributes a full [C, H, W] field; every rank returns its interior
// block [C, bh, bw]. On non-root ranks `full` is ignored.
Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full);

}  // namespace parpde::domain
