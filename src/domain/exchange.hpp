#pragma once

// Parallel field plumbing for inference (Sec. III): point-to-point halo
// exchange between neighbouring subdomains ("each processor sends the
// boundary data to the corresponding neighbor ... no central instance is
// used"), plus gather/scatter of full fields for validation and I/O.

#include "domain/partition.hpp"
#include "minimpi/cart.hpp"
#include "tensor/tensor.hpp"
#include "util/timer.hpp"

namespace parpde::domain {

// Surrounds this rank's interior [C, bh, bw] with a halo of width `halo`
// filled from the four neighbours (two-phase exchange, so diagonal corners
// are correct). Physical-boundary halo stays zero. Returns
// [C, bh + 2 halo, bw + 2 halo]. If `comm_time` is non-null, the wall time
// spent in sends/receives is accumulated into it.
Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time = nullptr);

// Collects per-rank interiors into the full [C, H, W] field on rank 0
// (other ranks get an empty tensor).
Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior);

// Rank 0 distributes a full [C, H, W] field; every rank returns its interior
// block [C, bh, bw]. On non-root ranks `full` is ignored.
Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full);

}  // namespace parpde::domain
