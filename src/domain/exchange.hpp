#pragma once

// Parallel field plumbing for inference (Sec. III): point-to-point halo
// exchange between neighbouring subdomains ("each processor sends the
// boundary data to the corresponding neighbor ... no central instance is
// used"), plus gather/scatter of full fields for validation and I/O.
//
// The halo exchange is fault-aware: receives are bounded (timeout + retry,
// never an unbounded wait — lint rule `unbounded-halo-recv`), and a border
// whose neighbour is definitively lost (retry budget exhausted, or a
// CRC-corrupt strip consumed) is *degraded*: its halo stays zero from then
// on, which is exactly the paper's zero-padding border treatment, so the
// rollout keeps producing frames instead of hanging. Degradations are sticky
// per border, recorded in BorderHealth, and counted in the
// `inference.degraded_borders` telemetry counter. See docs/robustness.md.

#include <array>
#include <chrono>
#include <string>

#include "domain/partition.hpp"
#include "minimpi/cart.hpp"
#include "tensor/tensor.hpp"
#include "util/timer.hpp"

namespace parpde::domain {

// Patience knobs for the bounded halo receive. Attempts back off
// exponentially: the first waits `recv_timeout`, each miss doubles the wait
// up to `max_recv_timeout`, and the border degrades once `max_retries`
// attempts or the cumulative `recv_budget` is exhausted — whichever comes
// first. The defaults give each border ~10 s of total patience per step
// (reached after ~7 attempts instead of 40 fixed-interval ones, so a dead
// neighbour costs far fewer wakeups) — generous enough that a fault-free
// run never degrades even under sanitizers, tight enough that a genuinely
// dead neighbour cannot stall a rollout forever. Chaos tests shrink these.
// Timeouts are receive-side only: fault-injection draws happen on the send
// side, so tuning patience never perturbs a seeded fault sequence.
struct HaloOptions {
  std::chrono::milliseconds recv_timeout{250};       // first receive attempt
  std::chrono::milliseconds max_recv_timeout{2000};  // backoff cap
  std::chrono::milliseconds recv_budget{10000};      // cumulative wall clock
  int max_retries = 40;  // attempts beyond the first
  // Health monitor: gauge the interface residual (seam mismatch) of every
  // received strip into BorderHealth. O(border length) per strip — cheap
  // next to the O(area) forward pass; off only for overhead benchmarking.
  bool probe_residuals = true;
};

// Sticky per-border degradation state of one rank, carried across rollout
// steps. A degraded border is never sent to or received from again; its halo
// strip stays zero (the paper's zero-padding treatment).
class BorderHealth {
 public:
  [[nodiscard]] bool degraded(mpi::Direction d) const {
    return degraded_[static_cast<std::size_t>(d)];
  }
  void mark_degraded(mpi::Direction d) {
    degraded_[static_cast<std::size_t>(d)] = true;
  }
  [[nodiscard]] bool any() const {
    for (const bool b : degraded_) {
      if (b) return true;
    }
    return false;
  }
  [[nodiscard]] int count() const {
    int n = 0;
    for (const bool b : degraded_) n += b ? 1 : 0;
    return n;
  }
  // Compact label of the degraded borders, e.g. "E,N" ("" when healthy).
  [[nodiscard]] std::string describe() const;

  // Recovery hook (elastic runtime only): after the failed neighbour's tasks
  // have been adopted and their halo channels re-pointed, the degradation is
  // no longer sticky — the border is healthy again. Residual history is kept.
  void reset() { degraded_ = {}; }

  // Health-monitor hook: records the interface residual of one received
  // strip (mean |received − adjacent interior line|). A residual that grows
  // across steps means the neighbouring subdomain's surrogate is diverging
  // from this one at the seam — the paper's stitching-error failure mode.
  void observe_residual(double r) {
    if (r > max_residual_) max_residual_ = r;
  }
  [[nodiscard]] double max_residual() const noexcept { return max_residual_; }

 private:
  std::array<bool, 4> degraded_{};  // indexed by mpi::Direction
  double max_residual_ = 0.0;
};

// Split halo exchange with persistent staging buffers, the building block of
// the overlapped rollout engine (docs/performance.md):
//
//   HaloExchange hx(cart, partition, halo, options, &health);
//   for (step ...) {
//     hx.begin(interior);            // posts W/E border strips (buffered
//                                    //  sends — returns immediately)
//     ... compute on the interior while the strips are in flight ...
//     hx.finish(interior, padded);   // bounded receives + S/N corner phase
//   }
//
// begin() posts this rank's west/east strips the moment the step's interior
// exists; finish() completes the two-phase exchange (receive W/E, then
// send/receive the x-extended S/N strips so diagonal corners are correct)
// and writes the [C, bh + 2 halo, bw + 2 halo] result into `padded` (resized
// on first use, reused afterwards — the steady state allocates nothing
// beyond the minimpi mailbox copies). The message sequence per neighbour
// channel is identical to the serialized exchange_halo below, so seeded
// fault injection draws the same faults on either path and degradation
// outcomes are bit-reproducible across engines.
//
// Receive semantics match exchange_halo: bounded by `options`, CRC-checked,
// degrading the border into `health` (or throwing when health is null).
// begin()/finish() must alternate; the referenced cart/partition/health must
// outlive the object.
class HaloExchange {
 public:
  HaloExchange(mpi::CartComm& cart, const Partition& partition,
               std::int64_t halo, const HaloOptions& options = {},
               BorderHealth* health = nullptr);

  // Posts the west/east strips of `interior` ([C, bh, bw]) to the live
  // neighbours. Wall time spent sending accumulates into `comm_time`.
  void begin(const Tensor& interior,
             util::AccumulatingTimer* comm_time = nullptr);

  // Completes the exchange begun with the same `interior` and assembles the
  // halo-padded tensor into `padded`. Wall time spent in receives/sends
  // accumulates into `comm_time` (the overlapped engine's "wait" share).
  void finish(const Tensor& interior, Tensor& padded,
              util::AccumulatingTimer* comm_time = nullptr);

  [[nodiscard]] std::int64_t halo() const noexcept { return halo_; }

 private:
  void timed_send(mpi::Direction side, const std::vector<float>& strip,
                  util::AccumulatingTimer* comm_time);
  bool robust_recv(mpi::Direction side, util::AccumulatingTimer* comm_time);
  void drain_stale(mpi::Direction side);
  void degrade(mpi::Direction side, const std::string& why);
  [[nodiscard]] bool live(mpi::Direction side) const;

  mpi::CartComm& cart_;
  const Partition& partition_;
  std::int64_t halo_;
  HaloOptions options_;
  BorderHealth* health_;

  Tensor ext_x_;                   // [C, bh, bw + 2 halo] phase-1 staging
  std::vector<float> send_strip_;  // packed outgoing strip (reused)
  std::vector<float> recv_strip_;  // packed incoming strip (reused)
  std::uint64_t bytes_before_ = 0;
  double begin_seconds_ = 0.0;
  bool in_flight_ = false;
};

// Surrounds this rank's interior [C, bh, bw] with a halo of width `halo`
// filled from the four neighbours (two-phase exchange, so diagonal corners
// are correct). Physical-boundary halo stays zero. Returns
// [C, bh + 2 halo, bw + 2 halo]. If `comm_time` is non-null, the wall time
// spent in sends/receives is accumulated into it.
//
// Serialized convenience wrapper over HaloExchange::begin + finish; receives
// are bounded by `options`. When a border's retry budget is exhausted (or
// its strip arrives CRC-corrupt), the border is degraded: with `health`
// non-null the degradation is recorded there and the exchange continues with
// a zero halo on that side; with `health` null (callers that have no
// degradation story, e.g. benchmarks) the exchange throws instead — either
// way it never hangs.
Tensor exchange_halo(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& interior, std::int64_t halo,
                     util::AccumulatingTimer* comm_time = nullptr,
                     const HaloOptions& options = {},
                     BorderHealth* health = nullptr);

// Collects per-rank interiors into the full [C, H, W] field on rank 0
// (other ranks get an empty tensor).
Tensor gather_field(mpi::CartComm& cart, const Partition& partition,
                    const Tensor& interior);

// Split gather for the deferred/double-buffered recording path: non-root
// ranks post their interior toward rank 0 (buffered send — returns
// immediately) and move on to the next step; rank 0 stages a copy of its own
// interior and collects the posted blocks later. Per-channel FIFO ordering of
// the mailbox keeps successive deferred gathers matched in step order.
void gather_field_send(mpi::CartComm& cart, const Tensor& interior);

// Rank 0 only (no-op elsewhere): receives every non-root block posted by the
// matching gather_field_send round and assembles the full field into `full`
// (resized on first use, reused afterwards). `root_interior` supplies rank
// 0's own block, typically the copy staged when the round was posted.
void gather_field_collect(mpi::CartComm& cart, const Partition& partition,
                          const Tensor& root_interior, Tensor& full);

// Rank 0 distributes a full [C, H, W] field; every rank returns its interior
// block [C, bh, bw]. On non-root ranks `full` is ignored.
Tensor scatter_field(mpi::CartComm& cart, const Partition& partition,
                     const Tensor& full);

}  // namespace parpde::domain
