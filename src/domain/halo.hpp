#pragma once

// Subdomain extraction with overlap. Training-time decomposition (Sec. III)
// cuts each global frame into per-rank sections; in halo-pad mode the input
// section is enlarged by the receptive-field halo with *real* data from
// neighbouring subdomains ("input data for neighboring processes are
// overlapping"), while the target stays the bare interior.

#include "domain/partition.hpp"
#include "tensor/tensor.hpp"

namespace parpde::domain {

// Extracts the interior of `block` from a global [C, H, W] frame.
Tensor extract_interior(const Tensor& frame, const BlockRange& block);

// Extracts `block` enlarged by `halo` grid lines on every side. Points outside
// the global grid (physical boundary) are zero-filled. Result is
// [C, height + 2 halo, width + 2 halo].
Tensor extract_with_halo(const Tensor& frame, const BlockRange& block,
                         std::int64_t halo);

// extract_with_halo writing into a caller-owned tensor: `out` is resized on
// first use and reused afterwards (re-zeroed so the physical-boundary margin
// stays correct), which keeps repeated callers allocation-free.
void extract_with_halo_into(const Tensor& frame, const BlockRange& block,
                            std::int64_t halo, Tensor& out);

// Inserts a [C, bh, bw] interior tensor into a global [C, H, W] frame.
void insert_interior(Tensor& frame, const BlockRange& block, const Tensor& interior);

}  // namespace parpde::domain
