#pragma once

// Static 2-d block partition of an H x W grid over a px x py Cartesian rank
// grid (Sec. III, training step 1: "split each data set into smaller
// sections"). Rows/columns are distributed as evenly as possible; block (cx,
// cy) owns a contiguous index range in each direction.

#include <cstdint>

#include "minimpi/cart.hpp"

namespace parpde::domain {

// Half-open index ranges in global grid coordinates.
struct BlockRange {
  std::int64_t h0 = 0;
  std::int64_t h1 = 0;
  std::int64_t w0 = 0;
  std::int64_t w1 = 0;

  [[nodiscard]] std::int64_t height() const noexcept { return h1 - h0; }
  [[nodiscard]] std::int64_t width() const noexcept { return w1 - w0; }
  [[nodiscard]] std::int64_t points() const noexcept { return height() * width(); }

  bool operator==(const BlockRange&) const = default;
};

class Partition {
 public:
  Partition(std::int64_t grid_h, std::int64_t grid_w, int px, int py);

  [[nodiscard]] std::int64_t grid_h() const noexcept { return grid_h_; }
  [[nodiscard]] std::int64_t grid_w() const noexcept { return grid_w_; }
  [[nodiscard]] int px() const noexcept { return px_; }
  [[nodiscard]] int py() const noexcept { return py_; }
  [[nodiscard]] int blocks() const noexcept { return px_ * py_; }

  // Block owned by Cartesian coordinates (cx, cy); cx indexes the width (x)
  // direction, cy the height (y) direction. Row cy=0 owns h-range starting
  // at 0.
  [[nodiscard]] BlockRange block(int cx, int cy) const;

  // Block owned by a linear rank (rank = cy * px + cx, matching CartComm).
  [[nodiscard]] BlockRange block_of_rank(int rank) const;

 private:
  // Start offset of chunk `c` when splitting `total` into `parts`.
  [[nodiscard]] static std::int64_t chunk_start(std::int64_t total, int parts,
                                                int c) noexcept;

  std::int64_t grid_h_;
  std::int64_t grid_w_;
  int px_;
  int py_;
};

// Halo width needed so that a stack of `layers` convolutions with square
// kernel `kernel` (stride 1) computes the subdomain interior exactly as a
// monolithic network would: layers * (kernel-1)/2.
[[nodiscard]] std::int64_t receptive_halo(int layers, std::int64_t kernel);

}  // namespace parpde::domain
