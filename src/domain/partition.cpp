#include "domain/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace parpde::domain {

Partition::Partition(std::int64_t grid_h, std::int64_t grid_w, int px, int py)
    : grid_h_(grid_h), grid_w_(grid_w), px_(px), py_(py) {
  if (grid_h <= 0 || grid_w <= 0) {
    throw std::invalid_argument("Partition: grid must be positive");
  }
  if (px <= 0 || py <= 0) {
    throw std::invalid_argument("Partition: rank grid must be positive");
  }
  if (px > grid_w || py > grid_h) {
    throw std::invalid_argument("Partition: more ranks than grid lines");
  }
}

std::int64_t Partition::chunk_start(std::int64_t total, int parts,
                                    int c) noexcept {
  // First (total % parts) chunks get one extra line.
  const std::int64_t base = total / parts;
  const std::int64_t rem = total % parts;
  return static_cast<std::int64_t>(c) * base + std::min<std::int64_t>(c, rem);
}

BlockRange Partition::block(int cx, int cy) const {
  if (cx < 0 || cx >= px_ || cy < 0 || cy >= py_) {
    throw std::invalid_argument("Partition::block: coordinates out of range");
  }
  BlockRange b;
  b.h0 = chunk_start(grid_h_, py_, cy);
  b.h1 = chunk_start(grid_h_, py_, cy + 1);
  b.w0 = chunk_start(grid_w_, px_, cx);
  b.w1 = chunk_start(grid_w_, px_, cx + 1);
  return b;
}

BlockRange Partition::block_of_rank(int rank) const {
  if (rank < 0 || rank >= blocks()) {
    throw std::invalid_argument("Partition::block_of_rank: bad rank");
  }
  return block(rank % px_, rank / px_);
}

std::int64_t receptive_halo(int layers, std::int64_t kernel) {
  if (layers <= 0 || kernel <= 0 || kernel % 2 == 0) {
    throw std::invalid_argument("receptive_halo: need odd kernel, layers > 0");
  }
  return static_cast<std::int64_t>(layers) * (kernel - 1) / 2;
}

}  // namespace parpde::domain
