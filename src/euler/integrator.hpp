#pragma once

// Explicit time integrators for the semi-discrete linearized Euler system.
// RK4 is the production scheme (neutrally stable on the central-difference
// acoustic spectrum); forward Euler and Heun (RK2) exist for the convergence
// tests.

#include "euler/state.hpp"

namespace parpde::euler {

enum class Scheme { kEuler, kHeun, kRK4 };

class Integrator {
 public:
  Integrator(const EulerConfig& config, Scheme scheme = Scheme::kRK4);

  // Advances `state` by one time step `dt` in place. Ghost cells of `state`
  // are refreshed before every RHS evaluation.
  void step(EulerState& state, double dt);

  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }

 private:
  EulerConfig config_;
  Scheme scheme_;
  // Scratch stage storage, reused across steps.
  EulerState k1_, k2_, k3_, k4_, tmp_;
};

// y := a; y.axpy-like helper: y = a + s * b on all four fields (interior only).
void state_axpy(EulerState& y, const EulerState& a, double s, const EulerState& b);

}  // namespace parpde::euler
