#include "euler/state.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::euler {

double EulerConfig::sound_speed() const {
  return std::sqrt(gamma * p_c / rho_c);
}

double EulerConfig::dt() const {
  const double wave = sound_speed() + std::abs(uc) + std::abs(vc);
  return cfl * dx() / wave;
}

Tensor state_to_tensor(const EulerState& state, const EulerConfig& config,
                       bool include_background) {
  const int n = state.n();
  Tensor t({kNumChannels, n, n});
  const float p_bg = include_background ? static_cast<float>(config.p_c) : 0.0f;
  const float rho_bg =
      include_background ? static_cast<float>(config.rho_c) : 0.0f;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      t.at(kPressure, j, i) = static_cast<float>(state.p.at(i, j)) + p_bg;
      t.at(kDensity, j, i) = static_cast<float>(state.rho.at(i, j)) + rho_bg;
      t.at(kVelX, j, i) = static_cast<float>(state.u.at(i, j));
      t.at(kVelY, j, i) = static_cast<float>(state.v.at(i, j));
    }
  }
  return t;
}

double acoustic_energy(const EulerState& state, const EulerConfig& config) {
  const int n = state.n();
  const double c2 = config.sound_speed() * config.sound_speed();
  const double cell = config.dx() * config.dx();
  double e = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double p = state.p.at(i, j);
      const double u = state.u.at(i, j);
      const double v = state.v.at(i, j);
      e += p * p / (2.0 * config.rho_c * c2) +
           config.rho_c * (u * u + v * v) / 2.0;
    }
  }
  return e * cell;
}

}  // namespace parpde::euler
