#include "euler/integrator.hpp"

#include <stdexcept>

#include "euler/boundary.hpp"
#include "euler/rhs.hpp"

namespace parpde::euler {

namespace {

void field_axpy(ScalarField& y, const ScalarField& a, double s,
                const ScalarField& b) {
  const int n = y.n();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      y.at(i, j) = a.at(i, j) + s * b.at(i, j);
    }
  }
}

// y += s * b (interior).
void field_add(ScalarField& y, double s, const ScalarField& b) {
  const int n = y.n();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      y.at(i, j) += s * b.at(i, j);
    }
  }
}

}  // namespace

void state_axpy(EulerState& y, const EulerState& a, double s,
                const EulerState& b) {
  field_axpy(y.rho, a.rho, s, b.rho);
  field_axpy(y.u, a.u, s, b.u);
  field_axpy(y.v, a.v, s, b.v);
  field_axpy(y.p, a.p, s, b.p);
}

Integrator::Integrator(const EulerConfig& config, Scheme scheme)
    : config_(config),
      scheme_(scheme),
      k1_(config.n),
      k2_(config.n),
      k3_(config.n),
      k4_(config.n),
      tmp_(config.n) {
  if (config.n <= 0) throw std::invalid_argument("Integrator: bad grid size");
}

void Integrator::step(EulerState& state, double dt) {
  if (state.n() != config_.n) {
    throw std::invalid_argument("Integrator::step: grid size mismatch");
  }
  auto rhs = [&](EulerState& s, EulerState& out) {
    apply_boundary(s);
    compute_rhs(s, config_, out);
  };

  switch (scheme_) {
    case Scheme::kEuler: {
      rhs(state, k1_);
      state_axpy(state, state, dt, k1_);
      break;
    }
    case Scheme::kHeun: {
      rhs(state, k1_);
      state_axpy(tmp_, state, dt, k1_);
      rhs(tmp_, k2_);
      // y_{n+1} = y_n + dt/2 (k1 + k2)
      state_axpy(state, state, dt / 2.0, k1_);
      state_axpy(state, state, dt / 2.0, k2_);
      break;
    }
    case Scheme::kRK4: {
      rhs(state, k1_);
      state_axpy(tmp_, state, dt / 2.0, k1_);
      rhs(tmp_, k2_);
      state_axpy(tmp_, state, dt / 2.0, k2_);
      rhs(tmp_, k3_);
      state_axpy(tmp_, state, dt, k3_);
      rhs(tmp_, k4_);
      field_add(state.rho, dt / 6.0, k1_.rho);
      field_add(state.rho, dt / 3.0, k2_.rho);
      field_add(state.rho, dt / 3.0, k3_.rho);
      field_add(state.rho, dt / 6.0, k4_.rho);
      field_add(state.u, dt / 6.0, k1_.u);
      field_add(state.u, dt / 3.0, k2_.u);
      field_add(state.u, dt / 3.0, k3_.u);
      field_add(state.u, dt / 6.0, k4_.u);
      field_add(state.v, dt / 6.0, k1_.v);
      field_add(state.v, dt / 3.0, k2_.v);
      field_add(state.v, dt / 3.0, k3_.v);
      field_add(state.v, dt / 6.0, k4_.v);
      field_add(state.p, dt / 6.0, k1_.p);
      field_add(state.p, dt / 3.0, k2_.p);
      field_add(state.p, dt / 3.0, k3_.p);
      field_add(state.p, dt / 6.0, k4_.p);
      break;
    }
  }
  apply_boundary(state);
}

}  // namespace parpde::euler
