#pragma once

// Spatial discretization of the linearized Euler equations (Eq. (8)):
// second-order central differences on the cell-centered grid, plus an
// optional Laplacian smoothing term (coefficient `dissipation * c * dx`)
// that damps the odd-even mode the pure central scheme leaves undamped.
//
// With constant background (u_c, v_c, rho_c, p_c) the semi-discrete system is
//   d rho'/dt = -(u_c dx(rho') + v_c dy(rho')) - rho_c (dx(u') + dy(v'))
//   d u'  /dt = -(u_c dx(u')   + v_c dy(u'))   - dx(p') / rho_c
//   d v'  /dt = -(u_c dx(v')   + v_c dy(v'))   - dy(p') / rho_c
//   d p'  /dt = -(u_c dx(p')   + v_c dy(p'))   - gamma p_c (dx(u') + dy(v'))

#include "euler/state.hpp"

namespace parpde::euler {

// Evaluates the right-hand side into `out` (same grid size as `state`).
// `state`'s ghost layer must be filled (apply_boundary) before the call.
void compute_rhs(const EulerState& state, const EulerConfig& config,
                 EulerState& out);

}  // namespace parpde::euler
