#pragma once

// End-to-end data generation: runs the linearized Euler solver and records a
// sequence of float32 frames [4, n, n] for network training — the role Ateles
// plays in the paper (Sec. IV-B: 1500 frames from a single simulation).

#include <vector>

#include "euler/state.hpp"

namespace parpde::euler {

struct SimulationResult {
  EulerConfig config;
  double frame_dt = 0.0;        // physical time between recorded frames
  bool include_background = true;
  std::vector<Tensor> frames;   // each [4, n, n], Channel order
};

struct SimulateOptions {
  int num_frames = 100;         // recorded frames (paper: 1500)
  int steps_per_frame = 1;      // solver steps between recorded frames
  bool include_background = true;
};

// Runs the solver from the Gaussian-pulse initial condition and records
// `num_frames` frames (the initial state is frame 0).
SimulationResult simulate(const EulerConfig& config, const SimulateOptions& options);

// Same result computed with the domain-decomposed solver on `ranks` thread
// ranks (ghost exchange per RK stage, frames gathered on rank 0). Produces
// the same frames as simulate() up to float export rounding — the way the
// paper's training data would be generated on a real cluster.
SimulationResult simulate_parallel(const EulerConfig& config,
                                   const SimulateOptions& options, int ranks);

}  // namespace parpde::euler
