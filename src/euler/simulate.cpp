#include "euler/simulate.hpp"

#include <stdexcept>

#include "euler/initial.hpp"
#include "euler/integrator.hpp"
#include "euler/parallel_solver.hpp"
#include "minimpi/environment.hpp"

namespace parpde::euler {

SimulationResult simulate(const EulerConfig& config,
                          const SimulateOptions& options) {
  if (options.num_frames < 2) {
    throw std::invalid_argument("simulate: need at least 2 frames");
  }
  if (options.steps_per_frame < 1) {
    throw std::invalid_argument("simulate: steps_per_frame must be >= 1");
  }
  SimulationResult result;
  result.config = config;
  result.include_background = options.include_background;
  const double dt = config.dt();
  result.frame_dt = dt * options.steps_per_frame;
  result.frames.reserve(static_cast<std::size_t>(options.num_frames));

  EulerState state = make_initial_state(config);
  Integrator integrator(config, Scheme::kRK4);
  result.frames.push_back(
      state_to_tensor(state, config, options.include_background));
  for (int f = 1; f < options.num_frames; ++f) {
    for (int s = 0; s < options.steps_per_frame; ++s) integrator.step(state, dt);
    result.frames.push_back(
        state_to_tensor(state, config, options.include_background));
  }
  return result;
}

SimulationResult simulate_parallel(const EulerConfig& config,
                                   const SimulateOptions& options, int ranks) {
  if (options.num_frames < 2 || options.steps_per_frame < 1) {
    throw std::invalid_argument("simulate_parallel: bad frame options");
  }
  SimulationResult result;
  result.config = config;
  result.include_background = options.include_background;
  const double dt = config.dt();
  result.frame_dt = dt * options.steps_per_frame;
  result.frames.assign(static_cast<std::size_t>(options.num_frames), Tensor{});

  const mpi::Dims dims = mpi::dims_create(ranks);
  const domain::Partition partition(config.n, config.n, dims.px, dims.py);
  mpi::Environment env(ranks);
  env.run([&](mpi::Communicator& comm) {
    mpi::CartComm cart(comm, dims.px, dims.py);
    ParallelEulerSolver solver(cart, partition, config);
    solver.initialize();
    for (int f = 0; f < options.num_frames; ++f) {
      if (f > 0) {
        for (int s = 0; s < options.steps_per_frame; ++s) solver.step(dt);
      }
      Tensor full = solver.gather(options.include_background);
      if (comm.rank() == 0) {
        result.frames[static_cast<std::size_t>(f)] = std::move(full);
      }
    }
  });
  return result;
}

}  // namespace parpde::euler
