#pragma once

// Domain-decomposed linearized Euler solver: the classical-simulation
// counterpart of the paper's parallel inference. Each rank owns one block of
// the grid; before every RHS evaluation the single ghost layer is refreshed
// with point-to-point messages from the four neighbours (physical boundaries
// keep the outflow conditions of Sec. IV-A). Used to cross-validate the
// domain-decomposition plumbing against the serial solver and to measure the
// classical-vs-surrogate cost trade-off the paper's introduction motivates.

#include <vector>

#include "domain/partition.hpp"
#include "euler/state.hpp"
#include "minimpi/cart.hpp"
#include "util/timer.hpp"

namespace parpde::euler {

// Rectangular scalar field with one ghost layer; indices i in [-1, nx],
// j in [-1, ny].
class RectField {
 public:
  RectField() = default;
  RectField(int nx, int ny)
      : nx_(nx), ny_(ny),
        data_(static_cast<std::size_t>((nx + 2) * (ny + 2)), 0.0) {}

  [[nodiscard]] int nx() const noexcept { return nx_; }
  [[nodiscard]] int ny() const noexcept { return ny_; }

  double& at(int i, int j) noexcept {
    return data_[static_cast<std::size_t>((j + 1) * (nx_ + 2) + (i + 1))];
  }
  double at(int i, int j) const noexcept {
    return data_[static_cast<std::size_t>((j + 1) * (nx_ + 2) + (i + 1))];
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<double> data_;
};

struct RectState {
  RectState() = default;
  RectState(int nx, int ny) : rho(nx, ny), u(nx, ny), v(nx, ny), p(nx, ny) {}
  RectField rho, u, v, p;
};

class ParallelEulerSolver {
 public:
  // `cart` supplies this rank's position; `partition` must cover a
  // config.n x config.n grid with the cart's topology.
  ParallelEulerSolver(mpi::CartComm& cart, const domain::Partition& partition,
                      const EulerConfig& config);

  // Sets the local block of the Gaussian-pulse initial condition.
  void initialize();

  // Advances the local block one RK4 step of size dt. Ghost layers are
  // re-exchanged before every stage evaluation (4 exchanges per step).
  void step(double dt);

  // Assembles the global [4, n, n] frame on rank 0 (Channel order, optional
  // background) — empty tensor on other ranks.
  [[nodiscard]] Tensor gather(bool include_background) const;

  [[nodiscard]] const RectState& local() const noexcept { return state_; }
  [[nodiscard]] double comm_seconds() const noexcept {
    return comm_timer_.seconds();
  }
  [[nodiscard]] const domain::BlockRange& block() const noexcept { return block_; }

 private:
  // Refreshes the ghost layer of every field of `s`: neighbour exchange on
  // interior edges, physical boundary conditions on domain edges.
  void refresh_ghosts(RectState& s);
  void exchange_field(RectField& f, int tag_base);
  void apply_physical_boundary(RectState& s);

  // RHS of Eq. (8) on the local interior; ghosts of `s` must be current.
  void local_rhs(const RectState& s, RectState& out) const;

  static void axpy(RectState& y, const RectState& a, double s,
                   const RectState& b);

  mpi::CartComm& cart_;
  const domain::Partition& partition_;
  EulerConfig config_;
  domain::BlockRange block_;
  int nx_ = 0;  // local width (x, i)
  int ny_ = 0;  // local height (y, j)

  RectState state_;
  RectState k1_, k2_, k3_, k4_, tmp_;
  mutable util::AccumulatingTimer comm_timer_;
};

}  // namespace parpde::euler
