#include "euler/boundary.hpp"

namespace parpde::euler {

void apply_neumann(ScalarField& field) {
  const int n = field.n();
  for (int i = 0; i < n; ++i) {
    field.at(i, -1) = field.at(i, 0);
    field.at(i, n) = field.at(i, n - 1);
  }
  for (int j = -1; j <= n; ++j) {
    field.at(-1, j) = field.at(0, j);
    field.at(n, j) = field.at(n - 1, j);
  }
}

void apply_dirichlet_zero(ScalarField& field) {
  const int n = field.n();
  for (int i = 0; i < n; ++i) {
    field.at(i, -1) = -field.at(i, 0);
    field.at(i, n) = -field.at(i, n - 1);
  }
  for (int j = -1; j <= n; ++j) {
    field.at(-1, j) = -field.at(0, j);
    field.at(n, j) = -field.at(n - 1, j);
  }
}

void apply_boundary(EulerState& state) {
  apply_dirichlet_zero(state.p);
  apply_neumann(state.rho);
  apply_neumann(state.u);
  apply_neumann(state.v);
}

}  // namespace parpde::euler
