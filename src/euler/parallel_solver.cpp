#include "euler/parallel_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "domain/exchange.hpp"
#include "euler/initial.hpp"
#include "minimpi/tags.hpp"

namespace parpde::euler {

ParallelEulerSolver::ParallelEulerSolver(mpi::CartComm& cart,
                                         const domain::Partition& partition,
                                         const EulerConfig& config)
    : cart_(cart),
      partition_(partition),
      config_(config),
      block_(partition.block(cart.cx(), cart.cy())) {
  if (partition.grid_h() != config.n || partition.grid_w() != config.n) {
    throw std::invalid_argument(
        "ParallelEulerSolver: partition does not match the config grid");
  }
  nx_ = static_cast<int>(block_.width());
  ny_ = static_cast<int>(block_.height());
  state_ = RectState(nx_, ny_);
  k1_ = RectState(nx_, ny_);
  k2_ = RectState(nx_, ny_);
  k3_ = RectState(nx_, ny_);
  k4_ = RectState(nx_, ny_);
  tmp_ = RectState(nx_, ny_);
}

void ParallelEulerSolver::initialize() {
  const double ln2 = std::log(2.0);
  const double hw2 = config_.pulse_halfwidth * config_.pulse_halfwidth;
  for (int j = 0; j < ny_; ++j) {
    const double y =
        cell_center(config_, static_cast<int>(block_.h0) + j) - config_.pulse_y;
    for (int i = 0; i < nx_; ++i) {
      const double x = cell_center(config_, static_cast<int>(block_.w0) + i) -
                       config_.pulse_x;
      state_.p.at(i, j) =
          config_.pulse_amplitude * std::exp(-ln2 * (x * x + y * y) / hw2);
      state_.rho.at(i, j) = 0.0;
      state_.u.at(i, j) = 0.0;
      state_.v.at(i, j) = 0.0;
    }
  }
}

void ParallelEulerSolver::exchange_field(RectField& f, int tag_base) {
  mpi::Communicator& comm = cart_.comm();
  const int west = cart_.neighbor(mpi::Direction::kWest);
  const int east = cart_.neighbor(mpi::Direction::kEast);
  const int south = cart_.neighbor(mpi::Direction::kSouth);
  const int north = cart_.neighbor(mpi::Direction::kNorth);

  // Buffered sends of all four edges first; matching receives afterwards.
  std::vector<double> strip;
  if (west != mpi::kProcNull) {
    strip.resize(static_cast<std::size_t>(ny_));
    for (int j = 0; j < ny_; ++j) strip[static_cast<std::size_t>(j)] = f.at(0, j);
    comm.send<double>(west, tag_base + static_cast<int>(mpi::Direction::kWest),
                      strip);
  }
  if (east != mpi::kProcNull) {
    strip.resize(static_cast<std::size_t>(ny_));
    for (int j = 0; j < ny_; ++j) {
      strip[static_cast<std::size_t>(j)] = f.at(nx_ - 1, j);
    }
    comm.send<double>(east, tag_base + static_cast<int>(mpi::Direction::kEast),
                      strip);
  }
  if (south != mpi::kProcNull) {
    strip.resize(static_cast<std::size_t>(nx_));
    for (int i = 0; i < nx_; ++i) strip[static_cast<std::size_t>(i)] = f.at(i, 0);
    comm.send<double>(south, tag_base + static_cast<int>(mpi::Direction::kSouth),
                      strip);
  }
  if (north != mpi::kProcNull) {
    strip.resize(static_cast<std::size_t>(nx_));
    for (int i = 0; i < nx_; ++i) {
      strip[static_cast<std::size_t>(i)] = f.at(i, ny_ - 1);
    }
    comm.send<double>(north, tag_base + static_cast<int>(mpi::Direction::kNorth),
                      strip);
  }

  // A message that travelled west arrives from our east neighbour, etc.
  if (east != mpi::kProcNull) {
    const auto ghost =
        comm.recv<double>(east, tag_base + static_cast<int>(mpi::Direction::kWest));
    for (int j = 0; j < ny_; ++j) f.at(nx_, j) = ghost[static_cast<std::size_t>(j)];
  }
  if (west != mpi::kProcNull) {
    const auto ghost =
        comm.recv<double>(west, tag_base + static_cast<int>(mpi::Direction::kEast));
    for (int j = 0; j < ny_; ++j) f.at(-1, j) = ghost[static_cast<std::size_t>(j)];
  }
  if (north != mpi::kProcNull) {
    const auto ghost = comm.recv<double>(
        north, tag_base + static_cast<int>(mpi::Direction::kSouth));
    for (int i = 0; i < nx_; ++i) f.at(i, ny_) = ghost[static_cast<std::size_t>(i)];
  }
  if (south != mpi::kProcNull) {
    const auto ghost = comm.recv<double>(
        south, tag_base + static_cast<int>(mpi::Direction::kNorth));
    for (int i = 0; i < nx_; ++i) f.at(i, -1) = ghost[static_cast<std::size_t>(i)];
  }
}

void ParallelEulerSolver::apply_physical_boundary(RectState& s) {
  const bool at_west = cart_.neighbor(mpi::Direction::kWest) == mpi::kProcNull;
  const bool at_east = cart_.neighbor(mpi::Direction::kEast) == mpi::kProcNull;
  const bool at_south = cart_.neighbor(mpi::Direction::kSouth) == mpi::kProcNull;
  const bool at_north = cart_.neighbor(mpi::Direction::kNorth) == mpi::kProcNull;

  // Outflow (Sec. IV-A): p' antisymmetric (zero at the face), others mirror.
  auto fill_x = [&](int ghost_i, int interior_i) {
    for (int j = 0; j < ny_; ++j) {
      s.p.at(ghost_i, j) = -s.p.at(interior_i, j);
      s.rho.at(ghost_i, j) = s.rho.at(interior_i, j);
      s.u.at(ghost_i, j) = s.u.at(interior_i, j);
      s.v.at(ghost_i, j) = s.v.at(interior_i, j);
    }
  };
  auto fill_y = [&](int ghost_j, int interior_j) {
    for (int i = 0; i < nx_; ++i) {
      s.p.at(i, ghost_j) = -s.p.at(i, interior_j);
      s.rho.at(i, ghost_j) = s.rho.at(i, interior_j);
      s.u.at(i, ghost_j) = s.u.at(i, interior_j);
      s.v.at(i, ghost_j) = s.v.at(i, interior_j);
    }
  };
  if (at_west) fill_x(-1, 0);
  if (at_east) fill_x(nx_, nx_ - 1);
  if (at_south) fill_y(-1, 0);
  if (at_north) fill_y(ny_, ny_ - 1);
}

void ParallelEulerSolver::refresh_ghosts(RectState& s) {
  comm_timer_.start();
  // One registered sub-block per field (direction offsets inside each; see
  // tags::kEulerHalo).
  exchange_field(s.rho, mpi::tags::euler_field_base(0));
  exchange_field(s.u, mpi::tags::euler_field_base(1));
  exchange_field(s.v, mpi::tags::euler_field_base(2));
  exchange_field(s.p, mpi::tags::euler_field_base(3));
  comm_timer_.stop();
  apply_physical_boundary(s);
}

void ParallelEulerSolver::local_rhs(const RectState& s, RectState& out) const {
  // Identical discretization to euler::compute_rhs, on the local block.
  const double inv2dx = 1.0 / (2.0 * config_.dx());
  const double invdx2 = 1.0 / (config_.dx() * config_.dx());
  const double nu = config_.dissipation * config_.sound_speed() * config_.dx();
  const double uc = config_.uc;
  const double vc = config_.vc;
  const double rho_c = config_.rho_c;
  const double gp = config_.gamma * config_.p_c;

  auto dx = [&](const RectField& f, int i, int j) {
    return (f.at(i + 1, j) - f.at(i - 1, j)) * inv2dx;
  };
  auto dy = [&](const RectField& f, int i, int j) {
    return (f.at(i, j + 1) - f.at(i, j - 1)) * inv2dx;
  };
  auto lap = [&](const RectField& f, int i, int j) {
    return (f.at(i + 1, j) + f.at(i - 1, j) + f.at(i, j + 1) + f.at(i, j - 1) -
            4.0 * f.at(i, j)) *
           invdx2;
  };

  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      const double div_u = dx(s.u, i, j) + dy(s.v, i, j);
      out.rho.at(i, j) = -(uc * dx(s.rho, i, j) + vc * dy(s.rho, i, j)) -
                         rho_c * div_u + nu * lap(s.rho, i, j);
      out.u.at(i, j) = -(uc * dx(s.u, i, j) + vc * dy(s.u, i, j)) -
                       dx(s.p, i, j) / rho_c + nu * lap(s.u, i, j);
      out.v.at(i, j) = -(uc * dx(s.v, i, j) + vc * dy(s.v, i, j)) -
                       dy(s.p, i, j) / rho_c + nu * lap(s.v, i, j);
      out.p.at(i, j) = -(uc * dx(s.p, i, j) + vc * dy(s.p, i, j)) - gp * div_u +
                       nu * lap(s.p, i, j);
    }
  }
}

void ParallelEulerSolver::axpy(RectState& y, const RectState& a, double s,
                               const RectState& b) {
  const int nx = y.rho.nx(), ny = y.rho.ny();
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      y.rho.at(i, j) = a.rho.at(i, j) + s * b.rho.at(i, j);
      y.u.at(i, j) = a.u.at(i, j) + s * b.u.at(i, j);
      y.v.at(i, j) = a.v.at(i, j) + s * b.v.at(i, j);
      y.p.at(i, j) = a.p.at(i, j) + s * b.p.at(i, j);
    }
  }
}

void ParallelEulerSolver::step(double dt) {
  auto rhs = [&](RectState& s, RectState& out) {
    refresh_ghosts(s);
    local_rhs(s, out);
  };
  rhs(state_, k1_);
  axpy(tmp_, state_, dt / 2.0, k1_);
  rhs(tmp_, k2_);
  axpy(tmp_, state_, dt / 2.0, k2_);
  rhs(tmp_, k3_);
  axpy(tmp_, state_, dt, k3_);
  rhs(tmp_, k4_);
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      state_.rho.at(i, j) += dt / 6.0 * (k1_.rho.at(i, j) + 2.0 * k2_.rho.at(i, j) +
                                         2.0 * k3_.rho.at(i, j) + k4_.rho.at(i, j));
      state_.u.at(i, j) += dt / 6.0 * (k1_.u.at(i, j) + 2.0 * k2_.u.at(i, j) +
                                       2.0 * k3_.u.at(i, j) + k4_.u.at(i, j));
      state_.v.at(i, j) += dt / 6.0 * (k1_.v.at(i, j) + 2.0 * k2_.v.at(i, j) +
                                       2.0 * k3_.v.at(i, j) + k4_.v.at(i, j));
      state_.p.at(i, j) += dt / 6.0 * (k1_.p.at(i, j) + 2.0 * k2_.p.at(i, j) +
                                       2.0 * k3_.p.at(i, j) + k4_.p.at(i, j));
    }
  }
}

Tensor ParallelEulerSolver::gather(bool include_background) const {
  Tensor local({kNumChannels, ny_, nx_});
  const float p_bg = include_background ? static_cast<float>(config_.p_c) : 0.0f;
  const float rho_bg =
      include_background ? static_cast<float>(config_.rho_c) : 0.0f;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      local.at(kPressure, j, i) = static_cast<float>(state_.p.at(i, j)) + p_bg;
      local.at(kDensity, j, i) = static_cast<float>(state_.rho.at(i, j)) + rho_bg;
      local.at(kVelX, j, i) = static_cast<float>(state_.u.at(i, j));
      local.at(kVelY, j, i) = static_cast<float>(state_.v.at(i, j));
    }
  }
  return domain::gather_field(cart_, partition_, local);
}

}  // namespace parpde::euler
