#include "euler/rhs.hpp"

#include <stdexcept>

namespace parpde::euler {

void compute_rhs(const EulerState& state, const EulerConfig& config,
                 EulerState& out) {
  const int n = state.n();
  if (out.n() != n) throw std::invalid_argument("compute_rhs: size mismatch");
  const double inv2dx = 1.0 / (2.0 * config.dx());
  const double invdx2 = 1.0 / (config.dx() * config.dx());
  const double nu = config.dissipation * config.sound_speed() * config.dx();
  const double uc = config.uc;
  const double vc = config.vc;
  const double rho_c = config.rho_c;
  const double gp = config.gamma * config.p_c;

  auto dx = [&](const ScalarField& f, int i, int j) {
    return (f.at(i + 1, j) - f.at(i - 1, j)) * inv2dx;
  };
  auto dy = [&](const ScalarField& f, int i, int j) {
    return (f.at(i, j + 1) - f.at(i, j - 1)) * inv2dx;
  };
  auto lap = [&](const ScalarField& f, int i, int j) {
    return (f.at(i + 1, j) + f.at(i - 1, j) + f.at(i, j + 1) + f.at(i, j - 1) -
            4.0 * f.at(i, j)) *
           invdx2;
  };

  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double div_u = dx(state.u, i, j) + dy(state.v, i, j);
      out.rho.at(i, j) = -(uc * dx(state.rho, i, j) + vc * dy(state.rho, i, j)) -
                         rho_c * div_u + nu * lap(state.rho, i, j);
      out.u.at(i, j) = -(uc * dx(state.u, i, j) + vc * dy(state.u, i, j)) -
                       dx(state.p, i, j) / rho_c + nu * lap(state.u, i, j);
      out.v.at(i, j) = -(uc * dx(state.v, i, j) + vc * dy(state.v, i, j)) -
                       dy(state.p, i, j) / rho_c + nu * lap(state.v, i, j);
      out.p.at(i, j) = -(uc * dx(state.p, i, j) + vc * dy(state.p, i, j)) -
                       gp * div_u + nu * lap(state.p, i, j);
    }
  }
}

}  // namespace parpde::euler
