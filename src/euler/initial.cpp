#include "euler/initial.hpp"

#include <cmath>

#include "euler/boundary.hpp"

namespace parpde::euler {

double cell_center(const EulerConfig& config, int i) {
  return -config.domain_half + (static_cast<double>(i) + 0.5) * config.dx();
}

EulerState make_initial_state(const EulerConfig& config) {
  EulerState state(config.n);
  const double ln2 = std::log(2.0);
  const double hw2 = config.pulse_halfwidth * config.pulse_halfwidth;
  for (int j = 0; j < config.n; ++j) {
    const double y = cell_center(config, j) - config.pulse_y;
    for (int i = 0; i < config.n; ++i) {
      const double x = cell_center(config, i) - config.pulse_x;
      const double r2 = x * x + y * y;
      state.p.at(i, j) = config.pulse_amplitude * std::exp(-ln2 * r2 / hw2);
      // Fluid initially at rest; zero density perturbation (Sec. IV-A).
      state.rho.at(i, j) = 0.0;
      state.u.at(i, j) = 0.0;
      state.v.at(i, j) = 0.0;
    }
  }
  apply_boundary(state);
  return state;
}

}  // namespace parpde::euler
