#pragma once

// Discrete state of the 2-d linearized Euler equations (Eq. (8) of the paper):
// perturbation fields rho', u', v', p' on an n x n cell-centered grid over the
// square domain [-L, L]^2, with one ghost-cell layer for boundary conditions.
// The solver works in double precision; frames are converted to float32
// tensors only when handed to the network.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::euler {

// Channel order used for all 4-channel NN tensors in this library.
enum Channel : std::int64_t {
  kPressure = 0,
  kDensity = 1,
  kVelX = 2,
  kVelY = 3,
};
inline constexpr std::int64_t kNumChannels = 4;

// Scalar field with a single ghost layer: valid indices i, j in [-1, n].
class ScalarField {
 public:
  ScalarField() = default;
  explicit ScalarField(int n) : n_(n), data_(static_cast<std::size_t>((n + 2) * (n + 2)), 0.0) {}

  [[nodiscard]] int n() const noexcept { return n_; }

  double& at(int i, int j) noexcept {
    return data_[static_cast<std::size_t>((j + 1) * (n_ + 2) + (i + 1))];
  }
  double at(int i, int j) const noexcept {
    return data_[static_cast<std::size_t>((j + 1) * (n_ + 2) + (i + 1))];
  }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }

 private:
  int n_ = 0;
  std::vector<double> data_;
};

// Physical/numerical configuration. Defaults follow Sec. IV-A of the paper in
// bar-based units: background pressure 1 (bar), background density 1, fluid at
// rest, Gaussian pulse of amplitude 0.5 and half-width 0.3 m at the center.
struct EulerConfig {
  int n = 64;                    // grid points per direction (paper: 256)
  double domain_half = 2.0;      // domain is [-domain_half, domain_half]^2
  double rho_c = 1.0;            // background density [kg/m^3]
  double p_c = 1.0;              // background pressure [bar]
  double uc = 0.0;               // background x-velocity
  double vc = 0.0;               // background y-velocity
  double gamma = 1.4;            // ratio of specific heats
  double cfl = 0.4;              // CFL number for the explicit time step
  double dissipation = 0.02;    // Laplacian smoothing coefficient (x c dx)
  double pulse_amplitude = 0.5;  // Gaussian pulse amplitude (pressure)
  double pulse_halfwidth = 0.3;  // radius where the pulse drops to A/2
  double pulse_x = 0.0;          // pulse center
  double pulse_y = 0.0;

  [[nodiscard]] double dx() const { return 2.0 * domain_half / n; }
  // Acoustic speed of the background state.
  [[nodiscard]] double sound_speed() const;
  // Stable explicit time step.
  [[nodiscard]] double dt() const;
};

struct EulerState {
  EulerState() = default;
  explicit EulerState(int n) : rho(n), u(n), v(n), p(n) {}

  [[nodiscard]] int n() const noexcept { return rho.n(); }

  ScalarField rho;  // density perturbation rho'
  ScalarField u;    // x-velocity perturbation u'
  ScalarField v;    // y-velocity perturbation v'
  ScalarField p;    // pressure perturbation p'
};

// Converts the interior of a state to a [4, n, n] float tensor in Channel
// order. If `include_background` is set, the constant background is added to
// pressure and density (the form the networks train on; see DESIGN.md §6).
Tensor state_to_tensor(const EulerState& state, const EulerConfig& config,
                       bool include_background);

// Acoustic energy of the perturbation: integral of
// p'^2 / (2 rho_c c^2) + rho_c (u'^2 + v'^2) / 2 over the domain.
double acoustic_energy(const EulerState& state, const EulerConfig& config);

}  // namespace parpde::euler
