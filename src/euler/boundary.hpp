#pragma once

// Boundary conditions of Sec. IV-A: "outflow" modeled as zero pressure
// perturbation (Dirichlet on p') with homogeneous Neumann conditions on
// density and both velocity components. Implemented via one ghost layer:
// Neumann ghosts mirror the first interior cell; the Dirichlet ghost is the
// negative mirror so that the interpolated face value vanishes.

#include "euler/state.hpp"

namespace parpde::euler {

// Fills the ghost layer of a field with homogeneous Neumann extrapolation.
void apply_neumann(ScalarField& field);

// Fills the ghost layer with the antisymmetric extension (zero at the face).
void apply_dirichlet_zero(ScalarField& field);

// Applies the paper's full outflow boundary condition to a state.
void apply_boundary(EulerState& state);

}  // namespace parpde::euler
