#pragma once

// Initial condition of Sec. IV-A: fluid at rest, zero density perturbation,
// Gaussian pressure pulse of amplitude A and half-width hw centered at
// (pulse_x, pulse_y):  p'(r) = A * exp(-ln 2 * r^2 / hw^2), so p'(hw) = A/2.

#include "euler/state.hpp"

namespace parpde::euler {

// Returns the initialized state (ghost cells already consistent).
EulerState make_initial_state(const EulerConfig& config);

// Cell-center coordinate of index i (same for x and y).
double cell_center(const EulerConfig& config, int i);

}  // namespace parpde::euler
