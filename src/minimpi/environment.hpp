#pragma once

// Launches an SPMD region: `run(fn)` spawns one thread per rank, hands each a
// Communicator over a fresh shared state, joins all ranks and rethrows the
// first rank exception. Substitutes for `mpirun -np <size>` in this
// single-process reproduction (see DESIGN.md §2).

#include <functional>

#include "minimpi/communicator.hpp"

namespace parpde::mpi {

class Environment {
 public:
  explicit Environment(int size);

  [[nodiscard]] int size() const noexcept { return size_; }

  // Runs `fn` on every rank. Blocks until all ranks return. If any rank
  // throws, the first exception (by rank order) is rethrown after the join.
  void run(const std::function<void(Communicator&)>& fn) const;

 private:
  int size_;
};

}  // namespace parpde::mpi
