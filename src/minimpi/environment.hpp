#pragma once

// Launches an SPMD region: `run(fn)` spawns one thread per rank, hands each a
// Communicator over a fresh shared state, joins all ranks and rethrows the
// first rank exception. Substitutes for `mpirun -np <size>` in this
// single-process reproduction (see DESIGN.md §2).
//
// `run_collect(fn)` is the fault-tolerant variant: a rank that dies with
// fault::RankFailure is *reported* in the returned RunOutcome instead of
// aborting the whole region — the paper's communication-free training means a
// dead rank costs exactly one subdomain's work, and the fault-tolerant
// trainer restarts just that rank from its checkpoint. Any other exception
// still propagates (those are real bugs, not injected faults).

#include <functional>
#include <string>
#include <vector>

#include "minimpi/communicator.hpp"

namespace parpde::mpi {

// Per-rank completion status of one run_collect invocation. For a failed
// rank, `epoch`/`step` carry where it died when the RankFailure knew (-1
// otherwise) so recovery latency is attributable in run reports and traces.
struct RankStatus {
  bool failed = false;  // the rank died with fault::RankFailure
  std::string error;    // the failure message (empty when ok)
  int epoch = -1;       // training epoch at death, if applicable
  int step = -1;        // rollout step at death, if applicable
};

struct RunOutcome {
  std::vector<RankStatus> ranks;

  [[nodiscard]] bool all_ok() const {
    for (const auto& r : ranks) {
      if (r.failed) return false;
    }
    return true;
  }
  [[nodiscard]] std::vector<int> failed_ranks() const {
    std::vector<int> out;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      if (ranks[r].failed) out.push_back(static_cast<int>(r));
    }
    return out;
  }
};

class Environment {
 public:
  explicit Environment(int size);

  [[nodiscard]] int size() const noexcept { return size_; }

  // Runs `fn` on every rank. Blocks until all ranks return. If any rank
  // throws, the first exception (by rank order) is rethrown after the join.
  void run(const std::function<void(Communicator&)>& fn) const;

  // Like run(), but a rank that throws fault::RankFailure is recorded in the
  // outcome (counter "mpi.rank_failures") instead of rethrown; the surviving
  // ranks finish normally. When any rank failed, the finalize leak check is
  // skipped and the dead rank's undeliverable messages are discarded — a
  // failed rank legitimately leaves unconsumed mail behind.
  RunOutcome run_collect(const std::function<void(Communicator&)>& fn) const;

 private:
  RunOutcome run_impl(const std::function<void(Communicator&)>& fn,
                      bool collect_failures) const;

  int size_;
};

}  // namespace parpde::mpi
