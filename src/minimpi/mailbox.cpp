#include "minimpi/mailbox.hpp"

#include "verify/schedule.hpp"

namespace parpde::mpi {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

void Mailbox::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t pos = queue_.size();
    if (verify::active()) {
      // Earliest legal slot: just past the last queued message of the same
      // (source, tag) channel, so front-running can never violate the
      // non-overtaking guarantee.
      std::size_t lo = 0;
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].source == message.source && queue_[i].tag == message.tag) {
          lo = i + 1;
        }
      }
      pos = verify::hook_delivery_slot(owner_, message.source, message.tag, lo,
                                       queue_.size(), &message.vclock);
    }
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(message));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_locked(int source, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (m.tag == tag && (source == kAnySource || m.source == source)) return i;
  }
  return kNpos;
}

void Mailbox::audit_match_locked(int source, int tag,
                                 std::size_t chosen_idx) const {
  std::vector<verify::MatchCandidate> candidates;
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (m.tag != tag || (source != kAnySource && m.source != source)) continue;
    if (i == chosen_idx) chosen = candidates.size();
    candidates.push_back({m.source, &m.vclock});
  }
  verify::hook_match(owner_, source, tag, candidates.data(), candidates.size(),
                     chosen);
}

Message Mailbox::pop_matching(int source, int tag) {
  if (verify::active()) verify::hook_recv_wait(owner_, source, tag);
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t idx = kNpos;
  cv_.wait(lock, [&] {
    idx = find_locked(source, tag);
    return idx != kNpos;
  });
  if (verify::active()) audit_match_locked(source, tag, idx);
  Message out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return out;
}

bool Mailbox::pop_matching_for(int source, int tag,
                               std::chrono::milliseconds timeout,
                               Message* out) {
  if (verify::active()) verify::hook_recv_wait(owner_, source, tag);
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t idx = kNpos;
  const bool matched = cv_.wait_for(lock, timeout, [&] {
    idx = find_locked(source, tag);
    return idx != kNpos;
  });
  if (!matched) return false;
  if (verify::active()) audit_match_locked(source, tag, idx);
  *out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

bool Mailbox::try_pop_matching(int source, int tag, Message* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = find_locked(source, tag);
  if (idx == kNpos) return false;
  if (verify::active()) audit_match_locked(source, tag, idx);
  *out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

bool Mailbox::contains(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(source, tag) != kNpos;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<MessageInfo> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MessageInfo> out;
  out.reserve(queue_.size());
  for (const Message& m : queue_) {
    out.push_back({m.source, m.tag, m.elem_size, m.payload.size()});
  }
  return out;
}

}  // namespace parpde::mpi
