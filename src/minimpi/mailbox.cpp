#include "minimpi/mailbox.hpp"

namespace parpde::mpi {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

void Mailbox::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_locked(int source, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (m.tag == tag && (source == kAnySource || m.source == source)) return i;
  }
  return kNpos;
}

Message Mailbox::pop_matching(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t idx = kNpos;
  cv_.wait(lock, [&] {
    idx = find_locked(source, tag);
    return idx != kNpos;
  });
  Message out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return out;
}

bool Mailbox::pop_matching_for(int source, int tag,
                               std::chrono::milliseconds timeout,
                               Message* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t idx = kNpos;
  const bool matched = cv_.wait_for(lock, timeout, [&] {
    idx = find_locked(source, tag);
    return idx != kNpos;
  });
  if (!matched) return false;
  *out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

bool Mailbox::try_pop_matching(int source, int tag, Message* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = find_locked(source, tag);
  if (idx == kNpos) return false;
  *out = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<MessageInfo> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MessageInfo> out;
  out.reserve(queue_.size());
  for (const Message& m : queue_) {
    out.push_back({m.source, m.tag, m.elem_size, m.payload.size()});
  }
  return out;
}

}  // namespace parpde::mpi
