#include "minimpi/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>

namespace parpde::mpi::fault {

namespace {

// SplitMix64 finalizer: the deterministic hash behind probability draws and
// corruption positions.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Uniform [0, 1) from a hash value.
double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Installed plan plus its runtime bookkeeping. Guarded by g_mutex; the
// fast-path enabled() check is the lone atomic.
struct Engine {
  FaultPlan plan;
  // Per (rule, source, dest, tag) message sequence number.
  std::map<std::tuple<std::size_t, int, int, int>, std::uint64_t> channel_seq;
  std::vector<std::uint64_t> rule_hits;  // total applications per rule
  std::map<int, std::uint64_t> sends_by_rank;
  bool killed = false;  // the kill directive fired already

  explicit Engine(FaultPlan p)
      : plan(std::move(p)), rule_hits(plan.rules().size(), 0) {}
};

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::unique_ptr<Engine> g_engine;  // guarded by g_mutex

// --- PARPDE_FAULT parsing ---------------------------------------------------

[[noreturn]] void parse_error(const std::string& segment,
                              const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: bad segment '" + segment +
                              "': " + why);
}

long parse_long(const std::string& segment, const std::string& text) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    parse_error(segment, "expected an integer, got '" + text + "'");
  }
  return v;
}

double parse_double(const std::string& segment, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    parse_error(segment, "expected a number, got '" + text + "'");
  }
  return v;
}

std::vector<std::pair<std::string, std::string>> parse_kv(
    const std::string& segment, const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find(',', start);
    if (end == std::string::npos) end = body.size();
    const std::string item = body.substr(start, end - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      parse_error(segment, "expected key=value, got '" + item + "'");
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    start = end + 1;
  }
  return out;
}

void parse_tag_range(const std::string& segment, const std::string& text,
                     Rule* rule) {
  const std::size_t dash = text.find('-', 1);  // allow a leading minus sign
  if (dash == std::string::npos) {
    rule->tag_lo = rule->tag_hi = static_cast<int>(parse_long(segment, text));
  } else {
    rule->tag_lo = static_cast<int>(parse_long(segment, text.substr(0, dash)));
    rule->tag_hi = static_cast<int>(parse_long(segment, text.substr(dash + 1)));
  }
  if (rule->tag_lo > rule->tag_hi) parse_error(segment, "empty tag range");
}

}  // namespace

const char* action_name(Action a) noexcept {
  switch (a) {
    case Action::kDrop: return "drop";
    case Action::kDelay: return "delay";
    case Action::kDuplicate: return "dup";
    case Action::kCorrupt: return "corrupt";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string segment = spec.substr(start, end - start);
    start = end + 1;
    if (segment.empty()) continue;

    const std::size_t colon = segment.find(':');
    const std::string head = segment.substr(0, colon);
    if (colon == std::string::npos) {
      // Only the bare "seed=N" segment has no action prefix.
      const std::size_t eq = segment.find('=');
      if (eq == std::string::npos || segment.substr(0, eq) != "seed") {
        parse_error(segment, "expected 'seed=N' or '<action>:k=v,...'");
      }
      plan.seed_ = static_cast<std::uint64_t>(
          parse_long(segment, segment.substr(eq + 1)));
      continue;
    }

    const auto kv = parse_kv(segment, segment.substr(colon + 1));
    if (head == "kill") {
      KillSpec kill;
      for (const auto& [k, v] : kv) {
        if (k == "rank") kill.rank = static_cast<int>(parse_long(segment, v));
        else if (k == "epoch") kill.at_epoch = static_cast<int>(parse_long(segment, v));
        else if (k == "step") kill.at_step = static_cast<int>(parse_long(segment, v));
        else if (k == "sends") kill.after_sends = static_cast<std::uint64_t>(parse_long(segment, v));
        else parse_error(segment, "unknown kill key '" + k + "'");
      }
      if (kill.rank < 0) parse_error(segment, "kill needs rank=N");
      if (kill.at_epoch < 0 && kill.at_step < 0 && kill.after_sends == 0) {
        parse_error(segment, "kill needs epoch=N, step=N or sends=N");
      }
      plan.kill_ = kill;
      continue;
    }

    Rule rule;
    if (head == "drop") rule.action = Action::kDrop;
    else if (head == "delay") rule.action = Action::kDelay;
    else if (head == "dup") rule.action = Action::kDuplicate;
    else if (head == "corrupt") rule.action = Action::kCorrupt;
    else parse_error(segment, "unknown action '" + head + "'");
    for (const auto& [k, v] : kv) {
      if (k == "tag") parse_tag_range(segment, v, &rule);
      else if (k == "src") rule.source = static_cast<int>(parse_long(segment, v));
      else if (k == "dst") rule.dest = static_cast<int>(parse_long(segment, v));
      else if (k == "prob") rule.probability = parse_double(segment, v);
      else if (k == "max") rule.max_hits = static_cast<int>(parse_long(segment, v));
      else if (k == "ms") rule.delay_ms = static_cast<int>(parse_long(segment, v));
      else parse_error(segment, "unknown key '" + k + "'");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      parse_error(segment, "prob must be in [0, 1]");
    }
    if (rule.action == Action::kDelay && rule.delay_ms <= 0) {
      parse_error(segment, "delay needs ms=N");
    }
    plan.rules_.push_back(rule);
  }
  return plan;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_engine = std::make_unique<Engine>(std::move(plan));
  g_enabled.store(true, std::memory_order_relaxed);
}

void uninstall() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_enabled.store(false, std::memory_order_relaxed);
  g_engine.reset();
}

bool install_from_env() {
  const char* spec = std::getenv("PARPDE_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  install(FaultPlan::parse(spec));
  return true;
}

Decision on_send(int source, int dest, int tag) {
  Decision decision;
  if (!enabled()) return decision;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_engine) return decision;
    const auto& rules = g_engine->plan.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (!rule.matches(source, dest, tag)) continue;
      if (rule.max_hits >= 0 &&
          g_engine->rule_hits[i] >=
              static_cast<std::uint64_t>(rule.max_hits)) {
        continue;
      }
      // Per-channel sequence number keeps the draw deterministic under any
      // thread interleaving (order within a channel is program order).
      const std::uint64_t seq =
          g_engine->channel_seq[{i, source, dest, tag}]++;
      if (rule.probability < 1.0) {
        const std::uint64_t h = mix64(
            g_engine->plan.seed() ^ mix64(i * 0x10001ull) ^
            mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag))
                   << 32) |
                  (static_cast<std::uint64_t>(static_cast<std::uint16_t>(
                       source))
                   << 16) |
                  static_cast<std::uint16_t>(dest)) ^
            seq);
        if (unit_double(h) >= rule.probability) continue;
      }
      ++g_engine->rule_hits[i];
      switch (rule.action) {
        case Action::kDrop: decision.drop = true; break;
        case Action::kDuplicate: decision.duplicate = true; break;
        case Action::kCorrupt: decision.corrupt = true; break;
        case Action::kDelay: delay_ms = std::max(delay_ms, rule.delay_ms); break;
      }
    }
  }
  // Sleep outside the lock so a delayed sender never stalls other ranks'
  // fault decisions.
  if (delay_ms > 0) {
    decision.delay_ms = delay_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return decision;
}

void on_send_complete(int rank) {
  if (!enabled()) return;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_engine || g_engine->killed) return;
    const KillSpec& kill = g_engine->plan.kill();
    if (kill.rank != rank || kill.after_sends == 0) return;
    if (++g_engine->sends_by_rank[rank] >= kill.after_sends) {
      g_engine->killed = true;
      fire = true;
    }
  }
  if (fire) {
    throw RankFailure("fault injection: rank " + std::to_string(rank) +
                      " killed after send quota");
  }
}

void check_kill_epoch(int rank, int epoch) {
  if (!enabled()) return;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_engine || g_engine->killed) return;
    const KillSpec& kill = g_engine->plan.kill();
    if (kill.rank != rank || kill.at_epoch < 0 || epoch < kill.at_epoch) return;
    g_engine->killed = true;
    fire = true;
  }
  if (fire) {
    throw RankFailure("fault injection: rank " + std::to_string(rank) +
                          " killed at epoch " + std::to_string(epoch),
                      epoch);
  }
}

void check_kill_step(int rank, int step) {
  if (!enabled()) return;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_engine || g_engine->killed) return;
    const KillSpec& kill = g_engine->plan.kill();
    if (kill.rank != rank || kill.at_step < 0 || step < kill.at_step) return;
    g_engine->killed = true;
    fire = true;
  }
  if (fire) {
    throw RankFailure("fault injection: rank " + std::to_string(rank) +
                          " killed at step " + std::to_string(step),
                      -1, step);
  }
}

void corrupt_payload(std::span<std::byte> payload, std::uint64_t salt) {
  if (payload.empty()) return;
  std::uint64_t seed = 1;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_engine) seed = g_engine->plan.seed();
  }
  const std::uint64_t h = mix64(seed ^ mix64(salt));
  const std::size_t pos = static_cast<std::size_t>(h % payload.size());
  // XOR with a nonzero mask so the byte always actually changes.
  const auto mask = static_cast<unsigned char>(((h >> 32) & 0xFFu) | 0x01u);
  payload[pos] ^= std::byte{mask};
}

}  // namespace parpde::mpi::fault
