#pragma once

// Central MPI tag registry. Every subsystem that exchanges point-to-point
// messages owns a named, disjoint tag range declared here; no call site may
// use an integer-literal tag (enforced by tools/parpde_lint.py, rule
// `literal-tag`). Range disjointness is checked at compile time, so a new
// subsystem that collides with an existing block fails to build instead of
// silently cross-matching messages at runtime.
//
// The runtime validator (minimpi/validate.hpp) uses owner()/describe() to
// name tags in its watchdog and leak diagnostics.

#include <array>
#include <string>

namespace parpde::mpi::tags {

// A half-open block [base, base + count) of tags owned by one subsystem.
struct TagRange {
  int base;
  int count;
  const char* name;

  [[nodiscard]] constexpr int last() const { return base + count - 1; }
  [[nodiscard]] constexpr bool contains(int tag) const {
    return tag >= base && tag < base + count;
  }
  [[nodiscard]] constexpr bool overlaps(const TagRange& other) const {
    return base < other.base + other.count && other.base < base + count;
  }
};

// --- the registry -----------------------------------------------------------
//
// Halo traffic encodes the payload's direction of travel (cart.hpp Direction,
// 4 values) as an offset into the block.

// domain/exchange.cpp: inference-time halo exchange between subdomains.
inline constexpr TagRange kHalo{4096, 4, "domain.halo"};
// domain/exchange.cpp: full-field gather to rank 0 (validation / I/O).
inline constexpr TagRange kFieldGather{4200, 1, "domain.field_gather"};
// domain/exchange.cpp: full-field scatter from rank 0.
inline constexpr TagRange kFieldScatter{4201, 1, "domain.field_scatter"};
// euler/parallel_solver.cpp: per-field halo blocks (4 fields x stride 10,
// direction offset 0..3 within each).
inline constexpr TagRange kEulerHalo{8200, 40, "euler.halo"};
// minimpi/environment.cpp: startup clock-offset handshake (probe + reply)
// used to align per-rank trace timestamps while telemetry is enabled.
inline constexpr TagRange kClockSync{4300, 2, "mpi.clocksync"};
// minimpi/collectives.hpp: reserved block so collective traffic can never
// match user point-to-point traffic.
inline constexpr TagRange kCollectives{1 << 20, 8, "mpi.collectives"};
// elastic/rollout.cpp: heartbeat + per-task halo/gather traffic for the
// elastic runtime (sub-layout below).
inline constexpr TagRange kElastic{16384, 2048, "elastic"};
// serve/surrogate_server.cpp: the coalescing scheduler routes each batch
// dispatch through fault::on_send under this tag, so PARPDE_FAULT delay
// rules (and fault::install in tests) can slow the server deterministically
// — there is no actual message traffic on this range.
inline constexpr TagRange kServe{4400, 1, "serve.dispatch"};

inline constexpr std::array<TagRange, 8> kAllRanges{
    kHalo,      kFieldGather, kFieldScatter, kEulerHalo,
    kClockSync, kCollectives, kElastic,      kServe};

// --- compile-time overlap detection -----------------------------------------

template <std::size_t N>
constexpr bool ranges_valid(const std::array<TagRange, N>& ranges) {
  for (std::size_t i = 0; i < N; ++i) {
    if (ranges[i].count <= 0 || ranges[i].base < 0) return false;
    for (std::size_t j = i + 1; j < N; ++j) {
      if (ranges[i].overlaps(ranges[j])) return false;
    }
  }
  return true;
}

static_assert(ranges_valid(kAllRanges),
              "MPI tag ranges must be non-empty, non-negative and pairwise "
              "disjoint; adjust the colliding block in minimpi/tags.hpp");

// --- collective operation tags ----------------------------------------------

inline constexpr int kTagBarrier = kCollectives.base + 0;
inline constexpr int kTagBcast = kCollectives.base + 1;
inline constexpr int kTagReduce = kCollectives.base + 2;
inline constexpr int kTagGather = kCollectives.base + 3;
inline constexpr int kTagScatter = kCollectives.base + 4;
inline constexpr int kTagScan = kCollectives.base + 5;
inline constexpr int kTagAlltoall = kCollectives.base + 6;
inline constexpr int kTagSendrecv = kCollectives.base + 7;
static_assert(kTagSendrecv == kCollectives.last(),
              "collective tags must exactly fill the kCollectives range");

// --- elastic runtime sub-layout ---------------------------------------------

// The elastic runtime (src/elastic/) multiplexes M subdomain *tasks* over P
// ranks, so tags must name the destination task, not just the direction.
// Layout inside kElastic:
//   base + 0                                  heartbeat (lease renewal)
//   base + 1 + task * 4 + direction           halo strip addressed to `task`
//   base + 1 + 4 * kMaxElasticTasks + task    interior gather from `task`
inline constexpr int kMaxElasticTasks = 256;

[[nodiscard]] constexpr int elastic_heartbeat_tag() { return kElastic.base; }

[[nodiscard]] constexpr int elastic_halo_tag(int task, int direction) {
  return kElastic.base + 1 + task * 4 + direction;
}

[[nodiscard]] constexpr int elastic_gather_tag(int task) {
  return kElastic.base + 1 + 4 * kMaxElasticTasks + task;
}

static_assert(elastic_gather_tag(kMaxElasticTasks - 1) <= kElastic.last(),
              "elastic sub-layout must fit inside kElastic");

// --- euler solver field blocks ----------------------------------------------

// Fields rho/u/v/p get stride-10 sub-blocks; the direction offset (0..3)
// is added on top by the exchange loop.
inline constexpr int kEulerFieldStride = 10;
inline constexpr int kEulerFieldCount = 4;

[[nodiscard]] constexpr int euler_field_base(int field) {
  return kEulerHalo.base + field * kEulerFieldStride;
}
static_assert(euler_field_base(kEulerFieldCount - 1) + kEulerFieldStride - 1 <=
                  kEulerHalo.last(),
              "euler field sub-blocks must fit inside kEulerHalo");

// --- diagnostics ------------------------------------------------------------

// Name of the range owning `tag`, or "user" for unregistered tags (tests and
// ad-hoc experiments may use any tag outside the reserved ranges).
[[nodiscard]] constexpr const char* owner(int tag) {
  for (const auto& r : kAllRanges) {
    if (r.contains(tag)) return r.name;
  }
  return "user";
}

// Human-readable "4097 (domain.halo+1)" for watchdog / leak reports.
[[nodiscard]] inline std::string describe(int tag) {
  std::string out = std::to_string(tag);
  for (const auto& r : kAllRanges) {
    if (r.contains(tag)) {
      out += " (";
      out += r.name;
      out += "+";
      out += std::to_string(tag - r.base);
      out += ")";
      return out;
    }
  }
  out += " (user)";
  return out;
}

}  // namespace parpde::mpi::tags
