#include "minimpi/environment.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "minimpi/fault.hpp"
#include "minimpi/tags.hpp"
#include "minimpi/validate.hpp"
#include "util/telemetry.hpp"

namespace parpde::mpi {

Environment::Environment(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("Environment: size must be > 0");
}

RunOutcome Environment::run_impl(const std::function<void(Communicator&)>& fn,
                                 bool collect_failures) const {
  auto state = std::make_shared<SharedState>(size_);
  RunOutcome outcome;
  outcome.ranks.resize(static_cast<std::size_t>(size_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Telemetry spans emitted from this thread land in the per-rank trace
      // lane (pid = rank in the Chrome trace).
      telemetry::set_thread_rank(r);
      telemetry::Span span("mpi.rank", "mpi");
      try {
        Communicator comm(r, size_, state);
        fn(comm);
      } catch (const fault::RankFailure& failure) {
        if (collect_failures) {
          outcome.ranks[static_cast<std::size_t>(r)] = {true, failure.what()};
          static telemetry::Counter& failures =
              telemetry::counter("mpi.rank_failures");
          failures.add(1);
        } else {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Finalize leak check: with the validator on, a clean run must leave every
  // mailbox empty — an unconsumed message is an unmatched send (wrong tag,
  // wrong destination, or a receive that was optimized away). A run with
  // failed ranks is exempt: a rank that died mid-protocol legitimately leaves
  // messages addressed to it (and messages it sent) undelivered.
  if (validate::enabled() && outcome.all_ok()) {
    std::string report;
    for (int r = 0; r < size_; ++r) {
      const auto queued =
          state->mailboxes[static_cast<std::size_t>(r)].snapshot();
      for (const MessageInfo& m : queued) {
        report += "rank " + std::to_string(r) +
                  ": unconsumed message from rank " + std::to_string(m.source) +
                  ", tag=" + tags::describe(m.tag) + ", " +
                  std::to_string(m.bytes) + " bytes\n";
      }
    }
    if (!report.empty()) {
      report = "finalize leak check: mailbox(es) not drained\n" + report;
      validate::emit_report(report);
      throw validate::LeakError(report);
    }
  }
  return outcome;
}

void Environment::run(const std::function<void(Communicator&)>& fn) const {
  run_impl(fn, /*collect_failures=*/false);
}

RunOutcome Environment::run_collect(
    const std::function<void(Communicator&)>& fn) const {
  return run_impl(fn, /*collect_failures=*/true);
}

}  // namespace parpde::mpi
