#include "minimpi/environment.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "minimpi/tags.hpp"
#include "minimpi/validate.hpp"
#include "util/telemetry.hpp"

namespace parpde::mpi {

Environment::Environment(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("Environment: size must be > 0");
}

void Environment::run(const std::function<void(Communicator&)>& fn) const {
  auto state = std::make_shared<SharedState>(size_);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Telemetry spans emitted from this thread land in the per-rank trace
      // lane (pid = rank in the Chrome trace).
      telemetry::set_thread_rank(r);
      telemetry::Span span("mpi.rank", "mpi");
      try {
        Communicator comm(r, size_, state);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Finalize leak check: with the validator on, a clean run must leave every
  // mailbox empty — an unconsumed message is an unmatched send (wrong tag,
  // wrong destination, or a receive that was optimized away).
  if (validate::enabled()) {
    std::string report;
    for (int r = 0; r < size_; ++r) {
      const auto queued =
          state->mailboxes[static_cast<std::size_t>(r)].snapshot();
      for (const MessageInfo& m : queued) {
        report += "rank " + std::to_string(r) +
                  ": unconsumed message from rank " + std::to_string(m.source) +
                  ", tag=" + tags::describe(m.tag) + ", " +
                  std::to_string(m.bytes) + " bytes\n";
      }
    }
    if (!report.empty()) {
      report = "finalize leak check: mailbox(es) not drained\n" + report;
      validate::emit_report(report);
      throw validate::LeakError(report);
    }
  }
}

}  // namespace parpde::mpi
