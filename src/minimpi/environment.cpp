#include "minimpi/environment.hpp"

#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "minimpi/collectives.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/tags.hpp"
#include "minimpi/validate.hpp"
#include "util/telemetry.hpp"
#include "verify/schedule.hpp"

namespace parpde::mpi {

namespace {

// NTP-style clock-offset handshake against rank 0, run once per rank at
// startup while span tracing is enabled. Each non-root rank sends K probes;
// rank 0 answers each with its own now_us(). The probe with the smallest
// round-trip gives offset = t_root − (t0 + t2)/2, i.e. how far this rank's
// clock sits behind rank 0's. The offsets are registered with telemetry so
// write_chrome_trace can shift every lane onto rank 0's timeline, and are
// surfaced as clock.* gauges in the run report. On this threads-as-ranks
// substrate the ranks physically share one clock, so estimated offsets are
// noise bounded by ±RTT/2 — the handshake exists so the trace pipeline stays
// correct when the substrate grows real per-process clocks.
//
// Fault robustness: every receive is bounded (recv_for) and both sides drain
// their channel before returning, so an injected drop degrades the estimate
// instead of hanging the run or tripping the finalize leak check.
//
// Threading (src/minimpi/README.md): all four recv_for sites here run on the
// rank's own thread inside Environment::run, and the kClockSync channels have
// no other consumer — the single-consumer-per-channel contract holds, and the
// CV barrier sequences the handshake phase before the stale-drain phase.
void align_rank_clock(Communicator& comm) {
  constexpr int kRounds = 8;
  constexpr std::chrono::milliseconds kReplyTimeout(200);
  const int probe_tag = tags::kClockSync.base;
  const int reply_tag = tags::kClockSync.base + 1;
  if (comm.size() < 2) {
    telemetry::set_rank_clock_offset(0, 0);
    return;
  }
  if (comm.rank() == 0) {
    telemetry::set_rank_clock_offset(0, 0);
    for (int peer = 1; peer < comm.size(); ++peer) {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::int64_t> probe;
        if (comm.recv_for<std::int64_t>(peer, probe_tag, kReplyTimeout,
                                        &probe) != RecvStatus::kOk) {
          break;  // peer gave up (or its probes were dropped); stop serving
        }
        comm.send_value<std::int64_t>(peer, reply_tag, telemetry::now_us());
      }
    }
  } else {
    std::int64_t best_rtt = std::numeric_limits<std::int64_t>::max();
    std::int64_t best_offset = 0;
    for (int round = 0; round < kRounds; ++round) {
      const std::int64_t t0 = telemetry::now_us();
      comm.send_value<std::int64_t>(0, probe_tag, t0);
      std::vector<std::int64_t> reply;
      if (comm.recv_for<std::int64_t>(0, reply_tag, kReplyTimeout, &reply) !=
              RecvStatus::kOk ||
          reply.size() != 1) {
        break;  // reply lost; keep whatever estimate earlier rounds produced
      }
      const std::int64_t t2 = telemetry::now_us();
      const std::int64_t rtt = t2 - t0;
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best_offset = reply[0] - (t0 + t2) / 2;
      }
    }
    if (best_rtt == std::numeric_limits<std::int64_t>::max()) {
      best_offset = 0;  // no round completed; fall back to the shared epoch
      best_rtt = -1;
    }
    telemetry::set_rank_clock_offset(comm.rank(), best_offset);
    const std::string suffix = ".r" + std::to_string(comm.rank());
    telemetry::gauge("clock.offset_us" + suffix)
        .set(static_cast<double>(best_offset));
    telemetry::gauge("clock.sync_rtt_us" + suffix)
        .set(static_cast<double>(best_rtt));
  }
  // The barrier is the process-local CV barrier (no messages), so it cannot
  // be dropped by fault injection. After it, no rank sends handshake traffic
  // again, which makes the stale-message drain below race-free — nothing may
  // linger in a mailbox or the finalize leak check would trip.
  barrier(comm);
  std::vector<std::int64_t> stale;
  if (comm.rank() == 0) {
    for (int peer = 1; peer < comm.size(); ++peer) {
      while (comm.recv_for<std::int64_t>(peer, probe_tag,
                                         std::chrono::milliseconds(0),
                                         &stale) == RecvStatus::kOk) {
      }
    }
  } else {
    while (comm.recv_for<std::int64_t>(0, reply_tag,
                                       std::chrono::milliseconds(0),
                                       &stale) == RecvStatus::kOk) {
    }
  }
}

}  // namespace

Environment::Environment(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("Environment: size must be > 0");
}

RunOutcome Environment::run_impl(const std::function<void(Communicator&)>& fn,
                                 bool collect_failures) const {
  auto state = std::make_shared<SharedState>(size_);
  // parpde-mc: size the vector clocks (and pick up PARPDE_SCHEDULE on the
  // first run of the process) before any rank can touch a mailbox.
  verify::hook_run_begin(size_);
  RunOutcome outcome;
  outcome.ranks.resize(static_cast<std::size_t>(size_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Telemetry spans emitted from this thread land in the per-rank trace
      // lane (pid = rank in the Chrome trace).
      telemetry::set_thread_rank(r);
      verify::hook_thread_rank(r);
      telemetry::Span span("mpi.rank", "mpi");
      try {
        Communicator comm(r, size_, state);
        // Rank-aligned trace timestamps: estimate this rank's clock offset
        // against rank 0 before user code runs. Only while tracing — the
        // handshake adds messages, and untraced runs must keep byte-exact
        // traffic counts.
        if (telemetry::enabled() && size_ > 1) align_rank_clock(comm);
        fn(comm);
      } catch (const fault::RankFailure& failure) {
        if (collect_failures) {
          outcome.ranks[static_cast<std::size_t>(r)] = {
              true, failure.what(), failure.epoch(), failure.step()};
          static telemetry::Counter& failures =
              telemetry::counter("mpi.rank_failures");
          failures.add(1);
        } else {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Finalize leak check: with the validator on, a clean run must leave every
  // mailbox empty — an unconsumed message is an unmatched send (wrong tag,
  // wrong destination, or a receive that was optimized away). A run with
  // failed ranks is exempt: a rank that died mid-protocol legitimately leaves
  // messages addressed to it (and messages it sent) undelivered.
  if (validate::enabled() && outcome.all_ok()) {
    std::string report;
    for (int r = 0; r < size_; ++r) {
      const auto queued =
          state->mailboxes[static_cast<std::size_t>(r)].snapshot();
      for (const MessageInfo& m : queued) {
        report += "rank " + std::to_string(r) +
                  ": unconsumed message from rank " + std::to_string(m.source) +
                  ", tag=" + tags::describe(m.tag) + ", " +
                  std::to_string(m.bytes) + " bytes\n";
      }
    }
    if (!report.empty()) {
      report = "finalize leak check: mailbox(es) not drained\n" + report;
      validate::emit_report(report);
      throw validate::LeakError(report);
    }
  }
  return outcome;
}

void Environment::run(const std::function<void(Communicator&)>& fn) const {
  run_impl(fn, /*collect_failures=*/false);
}

RunOutcome Environment::run_collect(
    const std::function<void(Communicator&)>& fn) const {
  return run_impl(fn, /*collect_failures=*/true);
}

}  // namespace parpde::mpi
