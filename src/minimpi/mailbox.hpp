#pragma once

// Per-rank message queue. Messages are matched MPI-style by (source, tag);
// within a matching (source, tag) pair, delivery order equals send order
// (non-overtaking), as required by the halo-exchange protocol.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace parpde::mpi {

// Matches any source in recv operations.
inline constexpr int kAnySource = -1;
// Null neighbor (off-domain); sends to it are dropped, recvs are invalid.
inline constexpr int kProcNull = -2;

struct Message {
  int source = 0;
  int tag = 0;
  // Validation envelope: sizeof(T) stamped by typed sends, 0 for raw byte
  // sends. Checked against the receiving type by recv<T> when the validator
  // is enabled (minimpi/validate.hpp).
  std::size_t elem_size = 0;
  // Integrity envelope: CRC-32 of the payload as it left the sender, stamped
  // only while fault injection is active (0 = unstamped). Lets receivers
  // detect injected bit corruption instead of consuming garbage tensors.
  std::uint32_t crc = 0;
  // Trace context: process-unique flow id stamped by the sender while span
  // tracing is enabled (0 = untraced). The receive side closes the flow, so
  // the merged Chrome trace links each send span to its receive/unpack span
  // across ranks (telemetry::record_flow_start/finish).
  std::uint64_t flow_id = 0;
  // parpde-mc envelope: the sender's vector clock at send time, stamped only
  // while a verification schedule is installed (src/verify/schedule.hpp).
  // Empty (no allocation) otherwise.
  std::vector<std::uint32_t> vclock;
  std::vector<std::byte> payload;
};

// Header-only view of a queued message, for watchdog / leak diagnostics.
struct MessageInfo {
  int source = 0;
  int tag = 0;
  std::size_t elem_size = 0;
  std::size_t bytes = 0;
};

class Mailbox {
 public:
  // Enqueues a message and wakes matching receivers. Never blocks: the
  // substrate implements buffered (eager) sends, so any send/recv ordering
  // that is deadlock-free under buffered MPI semantics is deadlock-free here.
  void push(Message message);

  // Blocks until a message matching (source|kAnySource, tag) is available and
  // removes the earliest such message.
  Message pop_matching(int source, int tag);

  // Bounded-wait variant used by the validation watchdog: returns false if no
  // matching message arrived within `timeout` (nothing is removed).
  bool pop_matching_for(int source, int tag, std::chrono::milliseconds timeout,
                        Message* out);

  // Non-blocking variant; returns false if no matching message is queued.
  bool try_pop_matching(int source, int tag, Message* out);

  // Non-destructive probe: whether a matching message is queued. Unlike a
  // pop/re-push round trip this cannot reorder the queue.
  [[nodiscard]] bool contains(int source, int tag) const;

  // The rank whose inbox this is; lets the parpde-mc scheduler key delivery
  // decisions and receive audits by destination. Set once by SharedState.
  void set_owner(int rank) noexcept { owner_ = rank; }
  [[nodiscard]] int owner() const noexcept { return owner_; }

  // Number of queued (undelivered) messages; used by shutdown sanity checks.
  [[nodiscard]] std::size_t pending() const;

  // Headers of all queued messages in queue order (payloads not copied).
  [[nodiscard]] std::vector<MessageInfo> snapshot() const;

 private:
  // Finds the first queued index matching the criteria, or npos.
  [[nodiscard]] std::size_t find_locked(int source, int tag) const;

  // Collects the queued messages matching (source|kAnySource, tag) for the
  // parpde-mc order-sensitivity audit. Must hold mutex_.
  void audit_match_locked(int source, int tag, std::size_t chosen_idx) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  int owner_ = -1;
};

}  // namespace parpde::mpi
