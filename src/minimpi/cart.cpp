#include "minimpi/cart.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::mpi {

Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kWest:
      return Direction::kEast;
    case Direction::kEast:
      return Direction::kWest;
    case Direction::kSouth:
      return Direction::kNorth;
    case Direction::kNorth:
      return Direction::kSouth;
  }
  return Direction::kWest;
}

std::string direction_name(Direction d) {
  switch (d) {
    case Direction::kWest:
      return "west";
    case Direction::kEast:
      return "east";
    case Direction::kSouth:
      return "south";
    case Direction::kNorth:
      return "north";
  }
  return "?";
}

Dims dims_create(int nranks) {
  if (nranks <= 0) throw std::invalid_argument("dims_create: nranks must be > 0");
  // Largest divisor of nranks that is <= sqrt(nranks) becomes py.
  int py = 1;
  for (int d = 1; d * d <= nranks; ++d) {
    if (nranks % d == 0) py = d;
  }
  return Dims{nranks / py, py};
}

CartComm::CartComm(Communicator& comm, int px, int py)
    : comm_(comm), px_(px), py_(py) {
  if (px <= 0 || py <= 0 || px * py != comm.size()) {
    throw std::invalid_argument("CartComm: px * py must equal communicator size");
  }
  cx_ = comm.rank() % px_;
  cy_ = comm.rank() / px_;
}

int CartComm::rank_of(int cx, int cy) const noexcept {
  if (cx < 0 || cx >= px_ || cy < 0 || cy >= py_) return kProcNull;
  return cy * px_ + cx;
}

int CartComm::neighbor(Direction d) const noexcept {
  switch (d) {
    case Direction::kWest:
      return rank_of(cx_ - 1, cy_);
    case Direction::kEast:
      return rank_of(cx_ + 1, cy_);
    case Direction::kSouth:
      return rank_of(cx_, cy_ - 1);
    case Direction::kNorth:
      return rank_of(cx_, cy_ + 1);
  }
  return kProcNull;
}

}  // namespace parpde::mpi
