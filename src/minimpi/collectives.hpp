#pragma once

// Collective operations built on the point-to-point layer. All ranks of a
// communicator must call each collective in the same order (standard MPI
// contract). Broadcast and reduction use binomial trees (log P rounds); the
// message tags live in a reserved range so collectives and user p2p traffic
// never match each other.

#include <algorithm>
#include <span>
#include <vector>

#include "minimpi/communicator.hpp"
#include "minimpi/tags.hpp"

namespace parpde::mpi {

enum class ReduceOp { kSum, kMin, kMax };

// Collective traffic uses the reserved tags::kCollectives block (see
// minimpi/tags.hpp); re-exported here so call sites keep their names.
using tags::kTagAlltoall;
using tags::kTagBarrier;
using tags::kTagBcast;
using tags::kTagGather;
using tags::kTagReduce;
using tags::kTagScan;
using tags::kTagScatter;
using tags::kTagSendrecv;

// Blocks until all ranks have entered the barrier.
void barrier(Communicator& comm);

namespace detail {

template <typename T>
void apply_op(ReduceOp op, std::span<T> acc, std::span<const T> other) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum:
        acc[i] += other[i];
        break;
      case ReduceOp::kMin:
        acc[i] = std::min(acc[i], other[i]);
        break;
      case ReduceOp::kMax:
        acc[i] = std::max(acc[i], other[i]);
        break;
    }
  }
}

}  // namespace detail

// Broadcasts `data` from `root` to all ranks (binomial tree). Non-root ranks
// resize `data` to the root's payload.
template <typename T>
void bcast(Communicator& comm, std::vector<T>& data, int root) {
  const int size = comm.size();
  const int vrank = (comm.rank() - root + size) % size;
  // Receive once from the parent...
  for (int mask = 1; mask < size; mask <<= 1) {
    if (vrank >= mask && vrank < 2 * mask) {
      const int parent = (vrank - mask + root) % size;
      data = comm.recv<T>(parent, kTagBcast);
      break;
    }
  }
  // ...then forward to all children.
  for (int mask = 1; mask < size; mask <<= 1) {
    if (vrank < mask && vrank + mask < size) {
      const int child = (vrank + mask + root) % size;
      comm.send<T>(child, kTagBcast, data);
    }
  }
}

// Reduces elementwise into `inout` at `root` (binomial tree); other ranks'
// `inout` is left as their contribution.
template <typename T>
void reduce(Communicator& comm, std::span<T> inout, ReduceOp op, int root) {
  const int size = comm.size();
  const int vrank = (comm.rank() - root + size) % size;
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank & ~mask) + root) % size;
      comm.send<T>(parent, kTagReduce, std::span<const T>(inout.data(), inout.size()));
      return;
    }
    if (vrank + mask < size) {
      const int child = (vrank + mask + root) % size;
      const auto partial = comm.recv<T>(child, kTagReduce);
      if (partial.size() != inout.size()) {
        throw std::runtime_error("reduce: contribution size mismatch");
      }
      detail::apply_op<T>(op, inout, partial);
    }
  }
}

// Elementwise reduction visible on every rank: tree-reduce to rank 0, then
// broadcast the result.
template <typename T>
void allreduce(Communicator& comm, std::span<T> inout, ReduceOp op) {
  reduce(comm, inout, op, /*root=*/0);
  std::vector<T> buffer;
  if (comm.rank() == 0) buffer.assign(inout.begin(), inout.end());
  bcast(comm, buffer, /*root=*/0);
  std::copy(buffer.begin(), buffer.end(), inout.begin());
}

// Concatenates each rank's `local` block at `root` in rank order. Non-root
// ranks receive an empty vector. Blocks may have different lengths.
template <typename T>
std::vector<T> gather(Communicator& comm, std::span<const T> local, int root) {
  if (comm.rank() != root) {
    comm.send<T>(root, kTagGather, local);
    return {};
  }
  std::vector<T> out;
  for (int r = 0; r < comm.size(); ++r) {
    if (r == comm.rank()) {
      out.insert(out.end(), local.begin(), local.end());
    } else {
      const auto block = comm.recv<T>(r, kTagGather);
      out.insert(out.end(), block.begin(), block.end());
    }
  }
  return out;
}

// Gather to rank 0 followed by broadcast: every rank gets the concatenation.
template <typename T>
std::vector<T> allgather(Communicator& comm, std::span<const T> local) {
  std::vector<T> out = gather(comm, local, /*root=*/0);
  bcast(comm, out, /*root=*/0);
  return out;
}

// Root splits `data` (size must be a multiple of the communicator size) into
// equal contiguous blocks; every rank returns its block. Non-root ranks
// ignore `data`.
template <typename T>
std::vector<T> scatter(Communicator& comm, std::span<const T> data, int root) {
  const int size = comm.size();
  if (comm.rank() == root) {
    if (data.size() % static_cast<std::size_t>(size) != 0) {
      throw std::invalid_argument("scatter: size not divisible by ranks");
    }
    const std::size_t block = data.size() / static_cast<std::size_t>(size);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      comm.send<T>(r, kTagScatter,
                   data.subspan(static_cast<std::size_t>(r) * block, block));
    }
    const auto mine = data.subspan(static_cast<std::size_t>(root) * block, block);
    return std::vector<T>(mine.begin(), mine.end());
  }
  return comm.recv<T>(root, kTagScatter);
}

// Inclusive prefix reduction: rank r's `inout` becomes op(contribution of
// ranks 0..r), elementwise. Linear chain (latency O(P)), fine at these rank
// counts.
template <typename T>
void scan(Communicator& comm, std::span<T> inout, ReduceOp op) {
  const int rank = comm.rank();
  if (rank > 0) {
    const auto prefix = comm.recv<T>(rank - 1, kTagScan);
    if (prefix.size() != inout.size()) {
      throw std::runtime_error("scan: contribution size mismatch");
    }
    detail::apply_op<T>(op, inout, prefix);
  }
  if (rank + 1 < comm.size()) {
    comm.send<T>(rank + 1, kTagScan,
                 std::span<const T>(inout.data(), inout.size()));
  }
}

// Personalized all-to-all: `data` holds one equal block per destination rank
// (size must be size() * block); returns the blocks received from every rank
// in rank order.
template <typename T>
std::vector<T> alltoall(Communicator& comm, std::span<const T> data) {
  const int size = comm.size();
  if (data.size() % static_cast<std::size_t>(size) != 0) {
    throw std::invalid_argument("alltoall: size not divisible by ranks");
  }
  const std::size_t block = data.size() / static_cast<std::size_t>(size);
  for (int r = 0; r < size; ++r) {
    comm.send<T>(r, kTagAlltoall,
                 data.subspan(static_cast<std::size_t>(r) * block, block));
  }
  std::vector<T> out;
  out.reserve(data.size());
  for (int r = 0; r < size; ++r) {
    const auto recv_block = comm.recv<T>(r, kTagAlltoall);
    if (recv_block.size() != block) {
      throw std::runtime_error("alltoall: block size mismatch");
    }
    out.insert(out.end(), recv_block.begin(), recv_block.end());
  }
  return out;
}

// Combined exchange with two (possibly different) peers — the MPI_Sendrecv
// shape used by shift communication. Either peer may be kProcNull (no-op on
// that side; an empty vector is returned when the source is null).
template <typename T>
std::vector<T> sendrecv(Communicator& comm, int dest, std::span<const T> send_data,
                        int source) {
  comm.send<T>(dest, kTagSendrecv, send_data);
  if (source == kProcNull) return {};
  return comm.recv<T>(source, kTagSendrecv);
}

}  // namespace parpde::mpi
