#pragma once

// Debug message-matching validator for the minimpi substrate.
//
// Off by default; enabled by the PARPDE_MPI_VALIDATE environment variable
// (any value except "0"), by validate::set_enabled(true), or by configuring
// with -DPARPDE_MPI_VALIDATE=ON (which flips the compiled-in default). When
// enabled, the transport gains four checks, none of which change message
// semantics:
//
//  * envelope check — typed sends stamp sizeof(T) into the message; a
//    recv<T> whose element size disagrees throws EnvelopeError instead of
//    reinterpreting bytes.
//  * deadlock watchdog — a blocking recv (or barrier) that makes no progress
//    for timeout_ms() dumps every rank's pending receives and queued
//    messages to stderr, then throws DeadlockError instead of hanging.
//  * finalize leak check — Environment::run, after all ranks return cleanly,
//    throws LeakError if any mailbox still holds unconsumed messages,
//    reporting each (destination, source, tag) with the owning subsystem
//    from the tag registry.
//  * phase policy — regions bracketed as communication-free (PhaseScope with
//    CommPolicy::kForbidden, e.g. the paper's zero-comm training phase)
//    throw PhaseError on any send or receive; per-phase message counters
//    land in the telemetry registry under "validate.phase.<name>.messages".
//
// Cost when disabled: one relaxed atomic load per transport call.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace parpde::mpi::validate {

// --- enablement and knobs ---------------------------------------------------

[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// Watchdog timeout for blocking receives and barriers. Environment override:
// PARPDE_MPI_VALIDATE_TIMEOUT_MS. Default 10000.
[[nodiscard]] int timeout_ms() noexcept;
void set_timeout_ms(int ms) noexcept;

// Largest isend payload considered safe for the buffered-send contract
// (communicator.hpp): larger payloads are flagged (stderr warning + the
// "validate.isend_over_cap" counter). Environment override:
// PARPDE_MPI_VALIDATE_ISEND_CAP (bytes). Default 8 MiB.
[[nodiscard]] std::size_t isend_cap_bytes() noexcept;
void set_isend_cap_bytes(std::size_t bytes) noexcept;

// --- diagnostics ------------------------------------------------------------

// Typed-envelope mismatch at recv<T>.
class EnvelopeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Watchdog fired: no progress on a blocking operation within timeout_ms().
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Unconsumed mailbox messages at Environment::run finalize.
class LeakError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Communication attempted inside a CommPolicy::kForbidden phase.
class PhaseError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Writes `report` to stderr with a "[parpde-validate]" prefix on each line.
void emit_report(const std::string& report);

}  // namespace parpde::mpi::validate
