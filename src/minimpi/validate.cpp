#include "minimpi/validate.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace parpde::mpi::validate {

namespace {

bool env_flag_default() {
#ifdef PARPDE_MPI_VALIDATE_DEFAULT
  return true;
#else
  const char* v = std::getenv("PARPDE_MPI_VALIDATE");
  return v != nullptr && std::string(v) != "0";
#endif
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0' && parsed > 0) ? parsed : fallback;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_flag_default()};
  return flag;
}

std::atomic<int>& timeout_value() {
  static std::atomic<int> ms{
      static_cast<int>(env_long("PARPDE_MPI_VALIDATE_TIMEOUT_MS", 10000))};
  return ms;
}

std::atomic<std::size_t>& isend_cap_value() {
  static std::atomic<std::size_t> cap{static_cast<std::size_t>(
      env_long("PARPDE_MPI_VALIDATE_ISEND_CAP", 8l << 20))};
  return cap;
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

int timeout_ms() noexcept {
  return timeout_value().load(std::memory_order_relaxed);
}

void set_timeout_ms(int ms) noexcept {
  timeout_value().store(ms > 0 ? ms : 1, std::memory_order_relaxed);
}

std::size_t isend_cap_bytes() noexcept {
  return isend_cap_value().load(std::memory_order_relaxed);
}

void set_isend_cap_bytes(std::size_t bytes) noexcept {
  isend_cap_value().store(bytes, std::memory_order_relaxed);
}

void emit_report(const std::string& report) {
  // One fprintf per line under a lock so concurrent rank dumps interleave by
  // line, not by character.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::size_t start = 0;
  while (start <= report.size()) {
    const std::size_t end = report.find('\n', start);
    const std::string line =
        report.substr(start, end == std::string::npos ? end : end - start);
    if (!line.empty()) {
      std::fprintf(stderr, "[parpde-validate] %s\n", line.c_str());
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  std::fflush(stderr);
}

}  // namespace parpde::mpi::validate
