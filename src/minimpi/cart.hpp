#pragma once

// 2-d Cartesian process topology over a communicator — the layout the paper's
// domain decomposition uses. Rank r sits at coordinates
// (cx, cy) = (r % px, r / px); x increases "east", y increases "north".
// Non-periodic: off-grid neighbors are kProcNull (sends to them are dropped).

#include <array>
#include <string>

#include "minimpi/communicator.hpp"

namespace parpde::mpi {

enum class Direction : int { kWest = 0, kEast = 1, kSouth = 2, kNorth = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::kWest, Direction::kEast, Direction::kSouth, Direction::kNorth};

[[nodiscard]] Direction opposite(Direction d) noexcept;
[[nodiscard]] std::string direction_name(Direction d);

// Balanced 2-d factorization of `nranks` (px * py == nranks, px >= py,
// px/py as close to square as possible) — the MPI_Dims_create equivalent.
struct Dims {
  int px = 1;
  int py = 1;
};
[[nodiscard]] Dims dims_create(int nranks);

class CartComm {
 public:
  // `comm` must have exactly px * py ranks.
  CartComm(Communicator& comm, int px, int py);

  [[nodiscard]] Communicator& comm() noexcept { return comm_; }
  [[nodiscard]] int px() const noexcept { return px_; }
  [[nodiscard]] int py() const noexcept { return py_; }
  [[nodiscard]] int cx() const noexcept { return cx_; }
  [[nodiscard]] int cy() const noexcept { return cy_; }

  // Rank at coordinates, or kProcNull if off-grid.
  [[nodiscard]] int rank_of(int cx, int cy) const noexcept;

  // Neighbor of this rank in the given direction (kProcNull at boundary).
  [[nodiscard]] int neighbor(Direction d) const noexcept;

 private:
  Communicator& comm_;
  int px_;
  int py_;
  int cx_;
  int cy_;
};

}  // namespace parpde::mpi
