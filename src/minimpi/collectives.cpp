#include "minimpi/collectives.hpp"

#include <chrono>
#include <string>

#include "minimpi/validate.hpp"
#include "verify/schedule.hpp"

namespace parpde::mpi {

void barrier(Communicator& comm) {
  SharedState& state = comm.shared();
  std::unique_lock<std::mutex> lock(state.barrier_mutex);
  const std::uint64_t generation = state.barrier_generation;
  if (verify::active()) {
    verify::hook_barrier_arrive(comm.rank(), generation, state.barrier_arrived,
                                comm.size());
  }
  if (++state.barrier_arrived == comm.size()) {
    state.barrier_arrived = 0;
    ++state.barrier_generation;
    state.barrier_cv.notify_all();
    if (verify::active()) {
      lock.unlock();
      verify::hook_barrier_exit(comm.rank(), generation);
    }
    return;
  }
  if (validate::enabled()) {
    // Watchdogged wait: a rank that never reaches the barrier must produce a
    // diagnostic, not a hang.
    const bool released = state.barrier_cv.wait_for(
        lock, std::chrono::milliseconds(validate::timeout_ms()),
        [&] { return state.barrier_generation != generation; });
    if (!released) {
      const std::string report =
          "deadlock watchdog: rank " + std::to_string(comm.rank()) +
          " stuck in barrier (" + std::to_string(state.barrier_arrived) +
          " of " + std::to_string(comm.size()) + " ranks arrived) after " +
          std::to_string(validate::timeout_ms()) +
          " ms; pending operations:\n" + comm.pending_ops_report();
      lock.unlock();
      validate::emit_report(report);
      throw validate::DeadlockError(report);
    }
    if (verify::active()) {
      lock.unlock();
      verify::hook_barrier_exit(comm.rank(), generation);
    }
    return;
  }
  state.barrier_cv.wait(
      lock, [&] { return state.barrier_generation != generation; });
  if (verify::active()) {
    lock.unlock();
    verify::hook_barrier_exit(comm.rank(), generation);
  }
}

}  // namespace parpde::mpi
