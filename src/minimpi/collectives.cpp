#include "minimpi/collectives.hpp"

namespace parpde::mpi {

void barrier(Communicator& comm) {
  SharedState& state = comm.shared();
  std::unique_lock<std::mutex> lock(state.barrier_mutex);
  const std::uint64_t generation = state.barrier_generation;
  if (++state.barrier_arrived == comm.size()) {
    state.barrier_arrived = 0;
    ++state.barrier_generation;
    state.barrier_cv.notify_all();
    return;
  }
  state.barrier_cv.wait(
      lock, [&] { return state.barrier_generation != generation; });
}

}  // namespace parpde::mpi
