#include "minimpi/communicator.hpp"

#include <chrono>

#include "minimpi/fault.hpp"
#include "minimpi/tags.hpp"
#include "util/crc32.hpp"
#include "util/telemetry.hpp"

namespace parpde::mpi {

namespace {

// Per-tag byte accounting only runs while telemetry tracing is active: the
// registry lookup is a mutex + string build, too heavy for the default path.
void count_tag_bytes(const char* direction, int tag, std::size_t bytes) {
  if (!telemetry::enabled()) return;
  telemetry::counter("comm.tag." + std::to_string(tag) + "." + direction)
      .add(bytes);
}

// Per-phase message accounting, validator only (same cost argument).
void count_phase_message(const char* phase) {
  telemetry::counter(std::string("validate.phase.") + phase + ".messages")
      .add(1);
}

// Flow events bind on id+cat+name, so both ends derive the name from the tag
// registry owner — the sender and receiver agree without shipping a string.
constexpr const char* kFlowCategory = "flow";

void close_flow(const Message& m) {
  if (m.flow_id != 0) {
    telemetry::record_flow_finish(tags::owner(m.tag), kFlowCategory,
                                  m.flow_id);
  }
}

}  // namespace

Communicator::Communicator(int rank, int size, std::shared_ptr<SharedState> state)
    : rank_(rank), size_(size), state_(std::move(state)) {
  if (size <= 0 || rank < 0 || rank >= size) {
    throw std::invalid_argument("Communicator: bad rank/size");
  }
  if (!state_) throw std::invalid_argument("Communicator: null shared state");
}

void Communicator::check_peer(int peer, const char* what) const {
  if (peer < 0 || peer >= size_) {
    throw std::invalid_argument(std::string(what) + ": peer rank " +
                                std::to_string(peer) + " out of range");
  }
}

void Communicator::check_phase(const char* what, int peer, int tag) const {
  if (policy_ != CommPolicy::kForbidden) return;
  const std::string msg =
      std::string("rank ") + std::to_string(rank_) + ": " + what +
      " during communication-free phase '" + phase_ + "' (peer " +
      std::to_string(peer) + ", tag " + tags::describe(tag) + ")";
  validate::emit_report(msg);
  throw validate::PhaseError(msg);
}

void Communicator::flag_isend_over_cap(int dest, int tag,
                                       std::size_t bytes) const {
  telemetry::counter("validate.isend_over_cap").add(1);
  validate::emit_report(
      "rank " + std::to_string(rank_) + ": isend of " + std::to_string(bytes) +
      " bytes to rank " + std::to_string(dest) + " (tag " +
      tags::describe(tag) + ") exceeds the buffered-send cap of " +
      std::to_string(validate::isend_cap_bytes()) +
      " bytes; the eager copy is unbounded buffering — chunk the transfer or "
      "use a blocking send");
}

std::string Communicator::pending_ops_report() const {
  std::string out;
  std::lock_guard<std::mutex> lock(state_->validate_mutex);
  for (int r = 0; r < size_; ++r) {
    const PendingRecv& p = state_->pending_recvs[static_cast<std::size_t>(r)];
    if (p.active) {
      out += "rank " + std::to_string(r) + ": blocked recv(source=" +
             (p.source == kAnySource ? std::string("any")
                                     : std::to_string(p.source)) +
             ", tag=" + tags::describe(p.tag) + ", phase='" + p.phase + "')\n";
    }
    const auto queued =
        state_->mailboxes[static_cast<std::size_t>(r)].snapshot();
    for (const MessageInfo& m : queued) {
      out += "rank " + std::to_string(r) + ": queued message from rank " +
             std::to_string(m.source) + ", tag=" + tags::describe(m.tag) +
             ", " + std::to_string(m.bytes) + " bytes\n";
    }
  }
  if (out.empty()) out = "no pending operations recorded\n";
  return out;
}

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::byte> payload,
                              std::size_t elem_size) {
  if (dest == kProcNull) return;
  check_peer(dest, "send");
  if (validate::enabled()) {
    check_phase("send", dest, tag);
    count_phase_message(phase_);
  }
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.elem_size = elem_size;
  m.payload.assign(payload.begin(), payload.end());
  if (telemetry::enabled()) {
    // Trace context: stamp a process-unique flow id and open the flow here;
    // the matching receive closes it, drawing a cross-rank arrow in the
    // merged trace. Stamped before fault injection so a dropped message
    // shows up as an unterminated flow — which is exactly what happened.
    m.flow_id = telemetry::next_flow_id();
    telemetry::record_flow_start(tags::owner(tag), kFlowCategory, m.flow_id);
  }
  bytes_sent_ += payload.size();
  ++messages_sent_;
  static telemetry::Counter& bytes = telemetry::counter("comm.bytes_sent");
  static telemetry::Counter& msgs = telemetry::counter("comm.messages_sent");
  bytes.add(payload.size());
  msgs.add(1);
  count_tag_bytes("bytes_sent", tag, payload.size());
  if (fault::enabled()) {
    // CRC of the payload as it left the sender; the injected corruption below
    // happens "on the wire", after the checksum — which is what lets the
    // receiver detect it.
    m.crc = util::crc32(m.payload.data(), m.payload.size());
    const fault::Decision verdict = fault::on_send(rank_, dest, tag);
    if (verdict.corrupt) {
      fault::corrupt_payload(m.payload,
                             (static_cast<std::uint64_t>(messages_sent_) << 16) ^
                                 static_cast<std::uint64_t>(tag));
    }
    if (verdict.drop) {
      static telemetry::Counter& dropped = telemetry::counter("comm.dropped");
      dropped.add(1);
      fault::on_send_complete(rank_);
      return;  // the message never reaches the destination mailbox
    }
    if (verdict.duplicate) {
      Message copy = m;
      copy.flow_id = 0;  // keep flows 1:1 — the injected twin is untraced
      state_->mailboxes[static_cast<std::size_t>(dest)].push(std::move(copy));
    }
    state_->mailboxes[static_cast<std::size_t>(dest)].push(std::move(m));
    fault::on_send_complete(rank_);
    return;
  }
  state_->mailboxes[static_cast<std::size_t>(dest)].push(std::move(m));
}

RecvStatus Communicator::recv_bytes_for(int source, int tag,
                                        std::chrono::milliseconds timeout,
                                        std::vector<std::byte>* out,
                                        int* actual_source,
                                        std::size_t expect_elem_size) {
  if (source == kProcNull) {
    throw std::invalid_argument("recv_for: source is kProcNull");
  }
  if (source != kAnySource) check_peer(source, "recv_for");
  if (validate::enabled()) check_phase("recv_for", source, tag);
  Mailbox& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  Message m;
  if (!box.pop_matching_for(source, tag, timeout, &m)) {
    return RecvStatus::kTimeout;
  }
  if (m.crc != 0 && util::crc32(m.payload.data(), m.payload.size()) != m.crc) {
    static telemetry::Counter& corrupt =
        telemetry::counter("comm.corrupt_detected");
    corrupt.add(1);
    return RecvStatus::kCorrupt;
  }
  if (validate::enabled() && expect_elem_size != 0 && m.elem_size != 0 &&
      m.elem_size != expect_elem_size) {
    const std::string msg =
        "rank " + std::to_string(rank_) + ": typed-envelope mismatch on "
        "recv_for(source=" + std::to_string(m.source) + ", tag=" +
        tags::describe(tag) + "): sender element size " +
        std::to_string(m.elem_size) + " bytes, receiver expects " +
        std::to_string(expect_elem_size) + " bytes";
    validate::emit_report(msg);
    throw validate::EnvelopeError(msg);
  }
  if (actual_source != nullptr) *actual_source = m.source;
  bytes_received_ += m.payload.size();
  ++messages_received_;
  static telemetry::Counter& bytes = telemetry::counter("comm.bytes_received");
  static telemetry::Counter& msgs =
      telemetry::counter("comm.messages_received");
  bytes.add(m.payload.size());
  msgs.add(1);
  count_tag_bytes("bytes_received", tag, m.payload.size());
  close_flow(m);
  *out = std::move(m.payload);
  return RecvStatus::kOk;
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag,
                                                int* actual_source,
                                                std::size_t expect_elem_size) {
  if (source == kProcNull) {
    throw std::invalid_argument("recv: source is kProcNull");
  }
  if (source != kAnySource) check_peer(source, "recv");
  Mailbox& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  Message m;
  if (validate::enabled()) {
    check_phase("recv", source, tag);
    {
      std::lock_guard<std::mutex> lock(state_->validate_mutex);
      state_->pending_recvs[static_cast<std::size_t>(rank_)] = {true, source,
                                                                tag, phase_};
    }
    const bool got = box.pop_matching_for(
        source, tag, std::chrono::milliseconds(validate::timeout_ms()), &m);
    if (!got) {
      // Leave this rank's pending slot active so the dump shows the receive
      // that starved; other timed-out ranks produce their own dumps.
      const std::string report =
          "deadlock watchdog: rank " + std::to_string(rank_) +
          " made no progress on recv(source=" +
          (source == kAnySource ? std::string("any") : std::to_string(source)) +
          ", tag=" + tags::describe(tag) + ") within " +
          std::to_string(validate::timeout_ms()) +
          " ms; pending operations:\n" + pending_ops_report();
      validate::emit_report(report);
      throw validate::DeadlockError(report);
    }
    {
      std::lock_guard<std::mutex> lock(state_->validate_mutex);
      state_->pending_recvs[static_cast<std::size_t>(rank_)].active = false;
    }
    if (expect_elem_size != 0 && m.elem_size != 0 &&
        m.elem_size != expect_elem_size) {
      const std::string msg =
          "rank " + std::to_string(rank_) + ": typed-envelope mismatch on "
          "recv(source=" + std::to_string(m.source) + ", tag=" +
          tags::describe(tag) + "): sender element size " +
          std::to_string(m.elem_size) + " bytes, receiver expects " +
          std::to_string(expect_elem_size) + " bytes";
      validate::emit_report(msg);
      throw validate::EnvelopeError(msg);
    }
  } else {
    m = box.pop_matching(source, tag);
  }
  if (m.crc != 0 && util::crc32(m.payload.data(), m.payload.size()) != m.crc) {
    // Blocking receivers have no retry protocol; fail loudly rather than
    // handing garbage bytes to a tensor. Bounded receivers (recv_bytes_for)
    // report kCorrupt instead and let the caller retry or degrade.
    static telemetry::Counter& corrupt =
        telemetry::counter("comm.corrupt_detected");
    corrupt.add(1);
    throw std::runtime_error(
        "rank " + std::to_string(rank_) + ": CRC mismatch on recv(source=" +
        std::to_string(m.source) + ", tag=" + tags::describe(tag) +
        "): payload corrupted in transit");
  }
  if (actual_source != nullptr) *actual_source = m.source;
  bytes_received_ += m.payload.size();
  ++messages_received_;
  static telemetry::Counter& bytes = telemetry::counter("comm.bytes_received");
  static telemetry::Counter& msgs =
      telemetry::counter("comm.messages_received");
  bytes.add(m.payload.size());
  msgs.add(1);
  count_tag_bytes("bytes_received", tag, m.payload.size());
  close_flow(m);
  return std::move(m.payload);
}

bool Communicator::probe(int source, int tag) {
  // A peek, not a pop/re-push round trip: re-pushing would move the probed
  // message behind later arrivals of its own channel, silently breaking the
  // non-overtaking guarantee whenever more than one message is queued.
  // Threading (src/minimpi/README.md): contains() is individually
  // thread-safe, but probe-then-recv is only race-free when the calling
  // thread is the channel's sole consumer.
  Mailbox& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  return box.contains(source, tag);
}

}  // namespace parpde::mpi
