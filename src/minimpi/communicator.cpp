#include "minimpi/communicator.hpp"

#include "util/telemetry.hpp"

namespace parpde::mpi {

namespace {

// Per-tag byte accounting only runs while telemetry tracing is active: the
// registry lookup is a mutex + string build, too heavy for the default path.
void count_tag_bytes(const char* direction, int tag, std::size_t bytes) {
  if (!telemetry::enabled()) return;
  telemetry::counter("comm.tag." + std::to_string(tag) + "." + direction)
      .add(bytes);
}

}  // namespace

Communicator::Communicator(int rank, int size, std::shared_ptr<SharedState> state)
    : rank_(rank), size_(size), state_(std::move(state)) {
  if (size <= 0 || rank < 0 || rank >= size) {
    throw std::invalid_argument("Communicator: bad rank/size");
  }
  if (!state_) throw std::invalid_argument("Communicator: null shared state");
}

void Communicator::check_peer(int peer, const char* what) const {
  if (peer < 0 || peer >= size_) {
    throw std::invalid_argument(std::string(what) + ": peer rank " +
                                std::to_string(peer) + " out of range");
  }
}

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::byte> payload) {
  if (dest == kProcNull) return;
  check_peer(dest, "send");
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload.assign(payload.begin(), payload.end());
  bytes_sent_ += payload.size();
  ++messages_sent_;
  static telemetry::Counter& bytes = telemetry::counter("comm.bytes_sent");
  static telemetry::Counter& msgs = telemetry::counter("comm.messages_sent");
  bytes.add(payload.size());
  msgs.add(1);
  count_tag_bytes("bytes_sent", tag, payload.size());
  state_->mailboxes[static_cast<std::size_t>(dest)].push(std::move(m));
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag,
                                                int* actual_source) {
  if (source == kProcNull) {
    throw std::invalid_argument("recv: source is kProcNull");
  }
  if (source != kAnySource) check_peer(source, "recv");
  Message m =
      state_->mailboxes[static_cast<std::size_t>(rank_)].pop_matching(source, tag);
  if (actual_source != nullptr) *actual_source = m.source;
  bytes_received_ += m.payload.size();
  ++messages_received_;
  static telemetry::Counter& bytes = telemetry::counter("comm.bytes_received");
  static telemetry::Counter& msgs =
      telemetry::counter("comm.messages_received");
  bytes.add(m.payload.size());
  msgs.add(1);
  count_tag_bytes("bytes_received", tag, m.payload.size());
  return std::move(m.payload);
}

bool Communicator::probe(int source, int tag) {
  Message m;
  Mailbox& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  if (!box.try_pop_matching(source, tag, &m)) return false;
  box.push(std::move(m));  // put it back; probe is non-destructive
  return true;
}

}  // namespace parpde::mpi
