#include "minimpi/communicator.hpp"

namespace parpde::mpi {

Communicator::Communicator(int rank, int size, std::shared_ptr<SharedState> state)
    : rank_(rank), size_(size), state_(std::move(state)) {
  if (size <= 0 || rank < 0 || rank >= size) {
    throw std::invalid_argument("Communicator: bad rank/size");
  }
  if (!state_) throw std::invalid_argument("Communicator: null shared state");
}

void Communicator::check_peer(int peer, const char* what) const {
  if (peer < 0 || peer >= size_) {
    throw std::invalid_argument(std::string(what) + ": peer rank " +
                                std::to_string(peer) + " out of range");
  }
}

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::byte> payload) {
  if (dest == kProcNull) return;
  check_peer(dest, "send");
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload.assign(payload.begin(), payload.end());
  bytes_sent_ += payload.size();
  ++messages_sent_;
  state_->mailboxes[static_cast<std::size_t>(dest)].push(std::move(m));
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag,
                                                int* actual_source) {
  if (source == kProcNull) {
    throw std::invalid_argument("recv: source is kProcNull");
  }
  if (source != kAnySource) check_peer(source, "recv");
  Message m =
      state_->mailboxes[static_cast<std::size_t>(rank_)].pop_matching(source, tag);
  if (actual_source != nullptr) *actual_source = m.source;
  return std::move(m.payload);
}

bool Communicator::probe(int source, int tag) {
  Message m;
  Mailbox& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  if (!box.try_pop_matching(source, tag, &m)) return false;
  box.push(std::move(m));  // put it back; probe is non-destructive
  return true;
}

}  // namespace parpde::mpi
