#pragma once

// Rank-local communication endpoint. Mirrors the subset of MPI the paper's
// scheme needs: blocking and nonblocking point-to-point with tags, plus the
// collectives in collectives.hpp. Ranks are threads of one process; payloads
// are copied through shared mailboxes, so the programming model (no shared
// mutable state between ranks, explicit messages) is preserved even though
// the transport is shared memory.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "minimpi/mailbox.hpp"

namespace parpde::mpi {

// State shared by all ranks of one Environment::run invocation.
struct SharedState {
  explicit SharedState(int size) : mailboxes(static_cast<std::size_t>(size)) {}

  std::vector<Mailbox> mailboxes;

  // Central barrier (sense-reversing via generation counter).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;
};

// Completion handle for nonblocking operations. isend completes immediately
// (sends are buffered); irecv completes at wait(), which performs the matching
// blocking receive. This is a legal MPI execution (completion delayed until
// wait) and is sufficient for the exchange patterns in this library.
class Request {
 public:
  Request() = default;
  explicit Request(std::function<void()> on_wait) : on_wait_(std::move(on_wait)) {}

  void wait() {
    if (on_wait_) {
      auto f = std::move(on_wait_);
      on_wait_ = nullptr;
      f();
    }
  }

  [[nodiscard]] bool pending() const { return static_cast<bool>(on_wait_); }

 private:
  std::function<void()> on_wait_;
};

inline void wait_all(std::span<Request> requests) {
  for (auto& r : requests) r.wait();
}

class Communicator {
 public:
  Communicator(int rank, int size, std::shared_ptr<SharedState> state);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  // --- byte-level point-to-point -----------------------------------------

  // Buffered send: copies the payload into the destination mailbox and
  // returns immediately. dest == kProcNull is a no-op (boundary neighbors).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  // Blocking receive matching (source|kAnySource, tag). Returns the payload;
  // if `actual_source` is non-null it receives the sender's rank.
  std::vector<std::byte> recv_bytes(int source, int tag,
                                    int* actual_source = nullptr);

  // --- typed convenience (trivially copyable element types) ---------------

  template <typename T>
  void send(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(values));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag, int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag, actual_source);
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error("recv: payload size not a multiple of T");
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  T recv_value(int source, int tag, int* actual_source = nullptr) {
    const auto v = recv<T>(source, tag, actual_source);
    if (v.size() != 1) throw std::runtime_error("recv_value: wrong element count");
    return v.front();
  }

  // --- nonblocking ---------------------------------------------------------

  template <typename T>
  Request isend(int dest, int tag, std::span<const T> values) {
    send(dest, tag, values);  // buffered: completes immediately
    return Request{};
  }

  // The receive runs when the returned Request is waited on; `out` must stay
  // alive until then.
  template <typename T>
  Request irecv(int source, int tag, std::vector<T>* out) {
    return Request([this, source, tag, out] { *out = recv<T>(source, tag); });
  }

  // Non-destructive check whether a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

  // --- traffic accounting (used by the communication benchmarks and the
  // telemetry run reports; send and receive sides are counted symmetrically,
  // so per-rank accounting balances across a communicator) ------------------

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t messages_received() const noexcept {
    return messages_received_;
  }
  void reset_counters() noexcept {
    bytes_sent_ = 0;
    messages_sent_ = 0;
    bytes_received_ = 0;
    messages_received_ = 0;
  }

  [[nodiscard]] SharedState& shared() noexcept { return *state_; }

 private:
  void check_peer(int peer, const char* what) const;

  int rank_;
  int size_;
  std::shared_ptr<SharedState> state_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t messages_received_ = 0;
};

}  // namespace parpde::mpi
