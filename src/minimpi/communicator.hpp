#pragma once

// Rank-local communication endpoint. Mirrors the subset of MPI the paper's
// scheme needs: blocking and nonblocking point-to-point with tags, plus the
// collectives in collectives.hpp. Ranks are threads of one process; payloads
// are copied through shared mailboxes, so the programming model (no shared
// mutable state between ranks, explicit messages) is preserved even though
// the transport is shared memory.
//
// Tags come from the central registry in minimpi/tags.hpp; with the debug
// validator enabled (minimpi/validate.hpp, PARPDE_MPI_VALIDATE) every message
// carries a typed envelope, blocking receives are watchdogged, and
// communication-free phases (PhaseScope) trap any traffic.
//
// With a fault plan installed (minimpi/fault.hpp, PARPDE_FAULT) the send path
// consults the injector — messages may be dropped, delayed, duplicated or
// bit-corrupted — and every payload is CRC-stamped so receivers detect the
// corruption. Without a plan both hooks are one relaxed atomic load.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <chrono>

#include "minimpi/mailbox.hpp"
#include "minimpi/validate.hpp"

namespace parpde::mpi {

// Outcome of a bounded receive (recv_for / recv_bytes_for).
enum class RecvStatus {
  kOk,       // message delivered
  kTimeout,  // nothing matched within the deadline; nothing consumed
  kCorrupt,  // a matching message arrived but failed its CRC envelope; the
             // corrupt message was consumed and counted (comm.corrupt_detected)
};

// A blocking receive in flight, registered so the deadlock watchdog can dump
// what every rank is waiting on.
struct PendingRecv {
  bool active = false;
  int source = 0;
  int tag = 0;
  const char* phase = "default";
};

// State shared by all ranks of one Environment::run invocation.
struct SharedState {
  explicit SharedState(int size)
      : mailboxes(static_cast<std::size_t>(size)),
        pending_recvs(static_cast<std::size_t>(size)) {
    for (int r = 0; r < size; ++r) {
      mailboxes[static_cast<std::size_t>(r)].set_owner(r);
    }
  }

  std::vector<Mailbox> mailboxes;

  // Central barrier (sense-reversing via generation counter).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Validator bookkeeping: one slot per rank, guarded by validate_mutex.
  std::mutex validate_mutex;
  std::vector<PendingRecv> pending_recvs;
};

// Completion handle for nonblocking operations. isend completes immediately
// (sends are buffered); irecv completes at wait(), which performs the matching
// blocking receive. This is a legal MPI execution (completion delayed until
// wait) and is sufficient for the exchange patterns in this library.
class Request {
 public:
  Request() = default;
  explicit Request(std::function<void()> on_wait) : on_wait_(std::move(on_wait)) {}

  void wait() {
    if (on_wait_) {
      auto f = std::move(on_wait_);
      on_wait_ = nullptr;
      f();
    }
  }

  [[nodiscard]] bool pending() const { return static_cast<bool>(on_wait_); }

 private:
  std::function<void()> on_wait_;
};

inline void wait_all(std::span<Request> requests) {
  for (auto& r : requests) r.wait();
}

// Whether a phase may generate message traffic. kForbidden phases (the
// paper's communication-free training regions) trap any send or receive with
// validate::PhaseError when the validator is enabled.
enum class CommPolicy { kAllowed, kForbidden };

class Communicator {
 public:
  Communicator(int rank, int size, std::shared_ptr<SharedState> state);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  // --- byte-level point-to-point -----------------------------------------

  // Buffered send: copies the payload into the destination mailbox and
  // returns immediately. dest == kProcNull is a no-op (boundary neighbors).
  // `elem_size` is the validation envelope (sizeof(T) for typed sends,
  // 0 = untyped bytes).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload,
                  std::size_t elem_size = 0);

  // Blocking receive matching (source|kAnySource, tag). Returns the payload;
  // if `actual_source` is non-null it receives the sender's rank. With the
  // validator enabled, `expect_elem_size` != 0 is checked against the
  // sender's envelope, and the receive is watchdogged: instead of hanging
  // past validate::timeout_ms() it dumps every rank's pending operations and
  // throws validate::DeadlockError.
  std::vector<std::byte> recv_bytes(int source, int tag,
                                    int* actual_source = nullptr,
                                    std::size_t expect_elem_size = 0);

  // Bounded-wait receive: waits at most `timeout` for a message matching
  // (source|kAnySource, tag). Never hangs and never trips the deadlock
  // watchdog — this is the receive the fault-tolerant inference path uses on
  // halo tags (lint rule `unbounded-halo-recv`). On kOk the payload lands in
  // `*out`; on kTimeout nothing is consumed and the caller may retry or
  // degrade; on kCorrupt an injected-corruption message was detected by its
  // CRC envelope, consumed and discarded.
  RecvStatus recv_bytes_for(int source, int tag,
                            std::chrono::milliseconds timeout,
                            std::vector<std::byte>* out,
                            int* actual_source = nullptr,
                            std::size_t expect_elem_size = 0);

  // --- typed convenience (trivially copyable element types) ---------------

  template <typename T>
  void send(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(values), sizeof(T));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag, int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag, actual_source, sizeof(T));
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error("recv: payload size not a multiple of T");
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  // Typed bounded-wait receive (see recv_bytes_for).
  template <typename T>
  RecvStatus recv_for(int source, int tag, std::chrono::milliseconds timeout,
                      std::vector<T>* out, int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes;
    const RecvStatus status =
        recv_bytes_for(source, tag, timeout, &bytes, actual_source, sizeof(T));
    if (status != RecvStatus::kOk) return status;
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error("recv_for: payload size not a multiple of T");
    }
    out->resize(bytes.size() / sizeof(T));
    std::memcpy(out->data(), bytes.data(), bytes.size());
    return RecvStatus::kOk;
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  T recv_value(int source, int tag, int* actual_source = nullptr) {
    const auto v = recv<T>(source, tag, actual_source);
    if (v.size() != 1) throw std::runtime_error("recv_value: wrong element count");
    return v.front();
  }

  // --- nonblocking ---------------------------------------------------------

  // Buffered-send contract: the payload is copied eagerly into the
  // destination mailbox, so the returned Request is already complete and the
  // caller's buffer may be reused immediately (MPI_Bsend semantics, not
  // MPI_Isend: completion never waits for the receiver). The cost is
  // unbounded buffering — a fast sender can grow the receiver's mailbox
  // without backpressure — so the validator flags payloads larger than
  // validate::isend_cap_bytes() (stderr warning + the
  // "validate.isend_over_cap" counter); such transfers should use a blocking
  // send or be chunked.
  template <typename T>
  Request isend(int dest, int tag, std::span<const T> values) {
    if (validate::enabled() &&
        values.size_bytes() > validate::isend_cap_bytes()) {
      flag_isend_over_cap(dest, tag, values.size_bytes());
    }
    send(dest, tag, values);
    return Request{};
  }

  // The receive runs when the returned Request is waited on; `out` must stay
  // alive until then.
  template <typename T>
  Request irecv(int source, int tag, std::vector<T>* out) {
    return Request([this, source, tag, out] { *out = recv<T>(source, tag); });
  }

  // Non-destructive check whether a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

  // --- validation phases ---------------------------------------------------

  [[nodiscard]] const char* phase() const noexcept { return phase_; }
  [[nodiscard]] CommPolicy policy() const noexcept { return policy_; }

  // --- traffic accounting (used by the communication benchmarks and the
  // telemetry run reports; send and receive sides are counted symmetrically,
  // so per-rank accounting balances across a communicator) ------------------

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t messages_received() const noexcept {
    return messages_received_;
  }
  void reset_counters() noexcept {
    bytes_sent_ = 0;
    messages_sent_ = 0;
    bytes_received_ = 0;
    messages_received_ = 0;
  }

  [[nodiscard]] SharedState& shared() noexcept { return *state_; }

  // Multi-line description of every rank's blocked receives and queued
  // messages (the watchdog dump; exposed for barrier diagnostics and tests).
  [[nodiscard]] std::string pending_ops_report() const;

 private:
  friend class PhaseScope;

  void check_peer(int peer, const char* what) const;
  // Throws validate::PhaseError if traffic is forbidden in the current phase.
  void check_phase(const char* what, int peer, int tag) const;
  void flag_isend_over_cap(int dest, int tag, std::size_t bytes) const;

  int rank_;
  int size_;
  std::shared_ptr<SharedState> state_;
  const char* phase_ = "default";
  CommPolicy policy_ = CommPolicy::kAllowed;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t messages_received_ = 0;
};

// RAII phase bracket: names the enclosed communication epoch (watchdog dumps
// and per-phase counters use the name) and optionally forbids traffic inside
// it. Restores the previous phase on destruction; `name` must outlive the
// scope (string literals in practice).
class PhaseScope {
 public:
  PhaseScope(Communicator& comm, const char* name,
             CommPolicy policy = CommPolicy::kAllowed) noexcept
      : comm_(comm), prev_phase_(comm.phase_), prev_policy_(comm.policy_) {
    comm_.phase_ = name;
    comm_.policy_ = policy;
  }
  ~PhaseScope() {
    comm_.phase_ = prev_phase_;
    comm_.policy_ = prev_policy_;
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Communicator& comm_;
  const char* prev_phase_;
  CommPolicy prev_policy_;
};

}  // namespace parpde::mpi
