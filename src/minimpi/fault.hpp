#pragma once

// Deterministic fault injection for the minimpi substrate.
//
// A FaultPlan is a seeded list of message-fault rules (drop, delay, duplicate,
// bit-corrupt) scoped by tag/source/destination, plus an optional rank-kill
// directive. Installed process-wide (programmatically or via the PARPDE_FAULT
// environment variable), it is consulted by Communicator::send_bytes on every
// message and by the cooperative kill points in the trainers. When no plan is
// installed every hook is one relaxed atomic load, and message semantics are
// byte-identical to a build without this header.
//
// Determinism: each rule keeps an independent hit sequence per message channel
// (source, dest, tag), and the probability draw hashes (seed, rule, channel,
// sequence). Message order within a channel is program order, so a seeded
// plan produces the same faults on every run regardless of thread
// interleaving, provided probabilistic rules are scoped to a single channel
// (exact tag/source/dest) — the recommended usage. Rules matching several
// channels stay per-channel deterministic but share max_hits globally.
//
// PARPDE_FAULT grammar (segments separated by ';'):
//   seed=N                          RNG seed for probability draws
//   drop:tag=4096-4099,src=1,dst=0,prob=0.5,max=3
//   delay:tag=4096,ms=50
//   dup:tag=4200
//   corrupt:tag=4096,prob=0.25
//   kill:rank=2,epoch=1             cooperative kill at an epoch boundary
//   kill:rank=2,step=5              cooperative kill at a rollout step boundary
//   kill:rank=2,sends=10            kill after the rank's 10th send
// Omitted selectors match anything; `tag` accepts "A" or "A-B" (inclusive).
//
// Example:
//   PARPDE_FAULT="seed=7;drop:tag=4096-4099,prob=0.3;kill:rank=1,epoch=2"

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace parpde::mpi::fault {

// Simulated rank death. Environment::run_collect reports it as a failed rank
// instead of rethrowing; the fault-tolerant trainer then restarts that rank
// from its last valid checkpoint. Carries the training epoch or rollout step
// the rank died at (-1 = not applicable) so failure latency is attributable
// in run reports and traces.
class RankFailure : public std::runtime_error {
 public:
  explicit RankFailure(const std::string& what, int epoch = -1, int step = -1)
      : std::runtime_error(what), epoch_(epoch), step_(step) {}

  [[nodiscard]] int epoch() const noexcept { return epoch_; }
  [[nodiscard]] int step() const noexcept { return step_; }

 private:
  int epoch_ = -1;
  int step_ = -1;
};

enum class Action { kDrop, kDelay, kDuplicate, kCorrupt };

[[nodiscard]] const char* action_name(Action a) noexcept;

// One message-fault rule. Selector fields use -1 for "any".
struct Rule {
  Action action = Action::kDrop;
  int tag_lo = -1;           // inclusive tag range; tag_lo == -1 matches all
  int tag_hi = -1;
  int source = -1;           // sending rank
  int dest = -1;             // receiving rank
  double probability = 1.0;  // per-message chance, drawn deterministically
  int max_hits = -1;         // stop matching after N applications (-1 = never)
  int delay_ms = 0;          // kDelay only

  [[nodiscard]] bool matches(int src, int dst, int tag) const noexcept {
    if (tag_lo >= 0 && (tag < tag_lo || tag > tag_hi)) return false;
    if (source >= 0 && src != source) return false;
    if (dest >= 0 && dst != dest) return false;
    return true;
  }
};

// Cooperative rank-kill directive. Fires at most once per installed plan, so
// the post-failure restart of the same rank (same process, plan still
// installed) trains to completion instead of dying again.
struct KillSpec {
  int rank = -1;                  // -1 = no kill
  int at_epoch = -1;              // check_kill_epoch(rank, epoch) trigger
  int at_step = -1;               // check_kill_step(rank, step) trigger
  std::uint64_t after_sends = 0;  // on_send_complete trigger (0 = disabled)
};

// What the injector decided for one message.
struct Decision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  int delay_ms = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : seed_(seed) {}

  FaultPlan& add_rule(const Rule& rule) {
    rules_.push_back(rule);
    return *this;
  }
  FaultPlan& set_kill(const KillSpec& kill) {
    kill_ = kill;
    return *this;
  }

  // Parses the PARPDE_FAULT grammar; throws std::invalid_argument with the
  // offending segment on malformed input.
  static FaultPlan parse(const std::string& spec);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] const KillSpec& kill() const noexcept { return kill_; }

 private:
  std::uint64_t seed_;
  std::vector<Rule> rules_;
  KillSpec kill_;
};

// --- process-wide installation ----------------------------------------------

// True while a plan is installed (one relaxed atomic load).
[[nodiscard]] bool enabled() noexcept;

// Installs `plan`, replacing any previous one and resetting all hit/kill
// bookkeeping. Not thread-safe against concurrent hook calls — install before
// launching an Environment.
void install(FaultPlan plan);

// Removes the installed plan; every hook becomes a no-op again.
void uninstall();

// Installs FaultPlan::parse(getenv("PARPDE_FAULT")) when the variable is set
// and non-empty. Returns whether a plan was installed. Malformed specs throw.
bool install_from_env();

// --- hooks (cheap no-ops when disabled) -------------------------------------

// Send-side verdict for one message; applies kDelay sleeps internally and
// advances the deterministic per-channel sequences.
[[nodiscard]] Decision on_send(int source, int dest, int tag);

// Counts a completed send by `rank` and throws RankFailure when the plan's
// after_sends kill point is reached.
void on_send_complete(int rank);

// Epoch-boundary kill point; throws RankFailure when the plan says this rank
// dies at this epoch (at most once per installed plan).
void check_kill_epoch(int rank, int epoch);

// Rollout step-boundary kill point (the elastic runtime polls it before any
// of the step's sends, so a death never leaves a step partially published);
// throws RankFailure when the plan says this rank dies at this step (at most
// once per installed plan).
void check_kill_step(int rank, int step);

// Deterministically flips one byte of `payload` (position and XOR mask are
// hashed from the plan seed and `salt`). No-op on empty payloads.
void corrupt_payload(std::span<std::byte> payload, std::uint64_t salt);

}  // namespace parpde::mpi::fault
