#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::nn {

namespace {

void check(const Tensor& prediction, const Tensor& target, const char* what) {
  if (!prediction.same_shape(target)) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_to_string(prediction.shape()) + " vs " +
                                shape_to_string(target.shape()));
  }
  if (prediction.size() == 0) {
    throw std::invalid_argument(std::string(what) + ": empty tensors");
  }
}

}  // namespace

double MAPELoss::compute(const Tensor& prediction, const Tensor& target,
                         Tensor* grad) const {
  check(prediction, target, "MAPELoss");
  const double m = static_cast<double>(prediction.size());
  const double scale = 100.0 / m;
  if (grad != nullptr) *grad = Tensor(prediction.shape());
  double loss = 0.0;
  for (std::int64_t i = 0; i < prediction.size(); ++i) {
    const double y = target[i];
    const double denom = std::max(std::fabs(y), eps_);
    const double diff = static_cast<double>(prediction[i]) - y;
    loss += std::fabs(diff) / denom;
    if (grad != nullptr) {
      const double sign = diff > 0.0 ? 1.0 : (diff < 0.0 ? -1.0 : 0.0);
      (*grad)[i] = static_cast<float>(scale * sign / denom);
    }
  }
  return scale * loss;
}

double MSELoss::compute(const Tensor& prediction, const Tensor& target,
                        Tensor* grad) const {
  check(prediction, target, "MSELoss");
  const double m = static_cast<double>(prediction.size());
  if (grad != nullptr) *grad = Tensor(prediction.shape());
  double loss = 0.0;
  for (std::int64_t i = 0; i < prediction.size(); ++i) {
    const double diff =
        static_cast<double>(prediction[i]) - static_cast<double>(target[i]);
    loss += diff * diff;
    if (grad != nullptr) (*grad)[i] = static_cast<float>(2.0 * diff / m);
  }
  return loss / m;
}

double MAELoss::compute(const Tensor& prediction, const Tensor& target,
                        Tensor* grad) const {
  check(prediction, target, "MAELoss");
  const double m = static_cast<double>(prediction.size());
  if (grad != nullptr) *grad = Tensor(prediction.shape());
  double loss = 0.0;
  for (std::int64_t i = 0; i < prediction.size(); ++i) {
    const double diff =
        static_cast<double>(prediction[i]) - static_cast<double>(target[i]);
    loss += std::fabs(diff);
    if (grad != nullptr) {
      const double sign = diff > 0.0 ? 1.0 : (diff < 0.0 ? -1.0 : 0.0);
      (*grad)[i] = static_cast<float>(sign / m);
    }
  }
  return loss / m;
}

WeightedMSELoss::WeightedMSELoss(std::vector<double> channel_weights)
    : weights_(std::move(channel_weights)) {
  if (weights_.empty()) {
    throw std::invalid_argument("WeightedMSELoss: no weights");
  }
  for (const double w : weights_) {
    if (!(w >= 0.0)) throw std::invalid_argument("WeightedMSELoss: bad weight");
  }
}

double WeightedMSELoss::compute(const Tensor& prediction, const Tensor& target,
                                Tensor* grad) const {
  check(prediction, target, "WeightedMSELoss");
  const bool batched = prediction.ndim() == 4;
  if (!batched && prediction.ndim() != 3) {
    throw std::invalid_argument("WeightedMSELoss: expected [C,H,W] or [N,C,H,W]");
  }
  const auto c = batched ? prediction.dim(1) : prediction.dim(0);
  if (c != static_cast<std::int64_t>(weights_.size())) {
    throw std::invalid_argument("WeightedMSELoss: weight/channel mismatch");
  }
  const auto n = batched ? prediction.dim(0) : 1;
  const auto plane = prediction.size() / (n * c);
  const double m = static_cast<double>(prediction.size());
  if (grad != nullptr) *grad = Tensor(prediction.shape());
  double loss = 0.0;
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const double w = weights_[static_cast<std::size_t>(ic)];
      const std::int64_t base = (in * c + ic) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        const double diff = static_cast<double>(prediction[base + i]) -
                            static_cast<double>(target[base + i]);
        loss += w * diff * diff;
        if (grad != nullptr) {
          (*grad)[base + i] = static_cast<float>(2.0 * w * diff / m);
        }
      }
    }
  }
  return loss / m;
}

LossPtr make_loss(const std::string& name) {
  if (name == "mape") return std::make_unique<MAPELoss>();
  if (name == "mse") return std::make_unique<MSELoss>();
  if (name == "mae") return std::make_unique<MAELoss>();
  throw std::invalid_argument("make_loss: unknown loss '" + name + "'");
}

}  // namespace parpde::nn
