#pragma once

// Stateless activation layers. The paper uses leaky ReLU with a fixed
// epsilon = 0.01 (Eq. (2)); plain ReLU (Eq. (1)) and tanh are provided for the
// activation ablation.

#include "nn/module.hpp"

namespace parpde::nn {

class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f)
      : negative_slope_(negative_slope) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] float negative_slope() const { return negative_slope_; }

 private:
  float negative_slope_;
  Tensor input_;
};

class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor input_;
};

class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 private:
  Tensor output_;
};

}  // namespace parpde::nn
