#pragma once

// Loss functions. The paper uses the mean absolute percentage error
// (Eq. (7)) because the four physical channels differ by orders of magnitude;
// MSE and MAE are implemented for the loss ablation. MAPE is stabilized with
// a denominator floor max(|y|, eps) — velocity targets are exactly zero at
// rest, where the textbook form is singular (see DESIGN.md §6).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  // Returns the scalar loss; if `grad` is non-null it is resized to the
  // prediction shape and filled with dL/dprediction.
  virtual double compute(const Tensor& prediction, const Tensor& target,
                         Tensor* grad) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using LossPtr = std::unique_ptr<Loss>;

// L = 100/m * sum |ŷ - y| / max(|y|, eps)   (percent).
class MAPELoss final : public Loss {
 public:
  // The default denominator floor is 1e-2: about 1% of the characteristic
  // field magnitude of the paper's test case, large enough that the
  // zero-crossing velocity channels do not blow the percentage up.
  explicit MAPELoss(double eps = 1e-2) : eps_(eps) {}
  double compute(const Tensor& prediction, const Tensor& target,
                 Tensor* grad) const override;
  [[nodiscard]] std::string name() const override { return "mape"; }

 private:
  double eps_;
};

// L = 1/m * sum (ŷ - y)^2.
class MSELoss final : public Loss {
 public:
  double compute(const Tensor& prediction, const Tensor& target,
                 Tensor* grad) const override;
  [[nodiscard]] std::string name() const override { return "mse"; }
};

// L = 1/m * sum |ŷ - y|.
class MAELoss final : public Loss {
 public:
  double compute(const Tensor& prediction, const Tensor& target,
                 Tensor* grad) const override;
  [[nodiscard]] std::string name() const override { return "mae"; }
};

// Per-channel weighted MSE: L = 1/m * sum_c w_c * sum_i (ŷ - y)^2. An
// alternative to input normalization for balancing channels of very
// different magnitudes (cf. the Sec. II loss discussion); weights are
// typically 1/var_c of the training data.
class WeightedMSELoss final : public Loss {
 public:
  explicit WeightedMSELoss(std::vector<double> channel_weights);
  double compute(const Tensor& prediction, const Tensor& target,
                 Tensor* grad) const override;
  [[nodiscard]] std::string name() const override { return "wmse"; }

 private:
  std::vector<double> weights_;
};

// Factory: "mape" | "mse" | "mae".
LossPtr make_loss(const std::string& name);

}  // namespace parpde::nn
