#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/crc32.hpp"

namespace parpde::nn {

namespace {

// Framed "PPNN" layout:
//   magic "PPNN" | u32 version | u64 payload_len | u32 crc32(payload) | payload
//   v2 payload: u32 tensor_count | tensors (tensor format)
//   v3 payload: v2 payload | u32 range_count | range_count f32 ranges
// The length + CRC turn a truncated or bit-rotted checkpoint into a clear
// diagnostic instead of garbage weights. The v1 format was the bare payload
// (no magic); load_parameters still reads it — a u32 tensor count can never
// collide with the magic bytes. v3 appends the int8 activation-calibration
// ranges (per-conv-layer input max-abs) and is only written when there are
// ranges to store, so checkpoints without quantization state stay v2.
constexpr char kMagic[4] = {'P', 'P', 'N', 'N'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionQuant = 3;

void parse_tensors(std::istream& in, std::uint32_t count, Module& module) {
  auto params = module.parameters();
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch (file "
                             "has " + std::to_string(count) + ", model has " +
                             std::to_string(params.size()) + ")");
  }
  for (auto& p : params) {
    Tensor t = read_tensor(in);
    if (!t.same_shape(*p.value)) {
      throw std::runtime_error("load_parameters: shape mismatch for " + p.name);
    }
    *p.value = std::move(t);
  }
}

}  // namespace

void save_parameters(std::ostream& out, Module& module) {
  save_parameters(out, module, {});
}

void save_parameters(std::ostream& out, Module& module,
                     const std::vector<float>& calibration) {
  const auto params = module.parameters();
  std::ostringstream payload_stream(std::ios::binary);
  const auto count = static_cast<std::uint32_t>(params.size());
  payload_stream.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) write_tensor(payload_stream, *p.value);
  if (!calibration.empty()) {
    const auto ranges = static_cast<std::uint32_t>(calibration.size());
    payload_stream.write(reinterpret_cast<const char*>(&ranges),
                         sizeof(ranges));
    payload_stream.write(
        reinterpret_cast<const char*>(calibration.data()),
        static_cast<std::streamsize>(calibration.size() * sizeof(float)));
  }
  const std::string payload = std::move(payload_stream).str();
  const std::uint32_t version = calibration.empty() ? kVersion : kVersionQuant;

  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto len = static_cast<std::uint64_t>(payload.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw std::runtime_error("save_parameters: stream failure");
}

void load_parameters(std::istream& in, Module& module) {
  load_parameters(in, module, nullptr);
}

void load_parameters(std::istream& in, Module& module,
                     std::vector<float>* calibration) {
  if (calibration != nullptr) calibration->clear();
  char head[4];
  in.read(head, sizeof(head));
  if (!in) throw std::runtime_error("load_parameters: empty or unreadable stream");

  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    // v1 compatibility: the bare format opened directly with the u32 tensor
    // count — the four bytes just consumed.
    std::uint32_t count = 0;
    std::memcpy(&count, head, sizeof(count));
    parse_tensors(in, count, module);
    return;
  }

  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in) throw std::runtime_error("load_parameters: truncated header");
  if (version != kVersion && version != kVersionQuant) {
    throw std::runtime_error("load_parameters: unsupported format version " +
                             std::to_string(version));
  }
  if (payload_len > (1ull << 32)) {
    throw std::runtime_error("load_parameters: implausible payload length");
  }
  std::string payload(static_cast<std::size_t>(payload_len), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_len)) {
    throw std::runtime_error(
        "load_parameters: truncated payload — the checkpoint was cut short "
        "(torn write or incomplete copy)");
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    throw std::runtime_error(
        "load_parameters: CRC mismatch — the checkpoint is corrupt (bit rot "
        "or partial overwrite); refusing to load garbage weights");
  }
  std::istringstream payload_in(payload, std::ios::binary);
  std::uint32_t count = 0;
  payload_in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!payload_in) throw std::runtime_error("load_parameters: empty payload");
  parse_tensors(payload_in, count, module);
  if (version == kVersionQuant) {
    std::uint32_t ranges = 0;
    payload_in.read(reinterpret_cast<char*>(&ranges), sizeof(ranges));
    if (!payload_in) {
      throw std::runtime_error(
          "load_parameters: v3 checkpoint missing its calibration section");
    }
    std::vector<float> stored(ranges);
    payload_in.read(reinterpret_cast<char*>(stored.data()),
                    static_cast<std::streamsize>(ranges * sizeof(float)));
    if (!payload_in) {
      throw std::runtime_error(
          "load_parameters: truncated calibration section");
    }
    if (calibration != nullptr) *calibration = std::move(stored);
  }
}

void save_checkpoint(const std::string& path, Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  save_parameters(out, module);
}

void load_checkpoint(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  load_parameters(in, module);
}

void save_checkpoint(const std::string& path, Module& module,
                     const std::vector<float>& calibration) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  save_parameters(out, module, calibration);
}

void load_checkpoint(const std::string& path, Module& module,
                     std::vector<float>* calibration) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  load_parameters(in, module, calibration);
}

}  // namespace parpde::nn
