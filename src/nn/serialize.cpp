#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace parpde::nn {

void save_parameters(std::ostream& out, Module& module) {
  const auto params = module.parameters();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) write_tensor(out, *p.value);
  if (!out) throw std::runtime_error("save_parameters: stream failure");
}

void load_parameters(std::istream& in, Module& module) {
  auto params = module.parameters();
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (auto& p : params) {
    Tensor t = read_tensor(in);
    if (!t.same_shape(*p.value)) {
      throw std::runtime_error("load_parameters: shape mismatch for " + p.name);
    }
    *p.value = std::move(t);
  }
}

void save_checkpoint(const std::string& path, Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  save_parameters(out, module);
}

void load_checkpoint(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  load_parameters(in, module);
}

}  // namespace parpde::nn
