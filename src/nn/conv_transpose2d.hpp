#pragma once

// Transpose ("de-") convolution, stride 1, no padding: output grows by k-1 in
// each spatial direction. This is the fourth border-handling strategy the
// paper lists in Sec. III ("adding de-convolutional layers or the transpose
// convolution"), flagged there as under investigation — implemented here as
// the extension feature and exercised by the encoder-decoder model variant.

#include "nn/module.hpp"
#include "util/random.hpp"

namespace parpde::nn {

class ConvTranspose2d final : public Module {
 public:
  ConvTranspose2d(std::int64_t in_channels, std::int64_t out_channels,
                  std::int64_t kernel);

  void init(util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;

  Tensor weight_;       // [Cin, Cout, k, k] (PyTorch ConvTranspose2d layout)
  Tensor bias_;         // [Cout]
  Tensor weight_grad_;
  Tensor bias_grad_;

  Tensor input_;
};

}  // namespace parpde::nn
