#pragma once

// Weight initialization schemes. Glorot (Xavier) uniform is the default, as
// appropriate for the shallow leaky-ReLU CNN of Table I; He (Kaiming) uniform
// is provided for deeper/ReLU-heavy variants.

#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace parpde::nn {

// U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    util::Rng& rng);

// U(-a, a) with a = sqrt(6 / fan_in).
void he_uniform(Tensor& w, std::int64_t fan_in, util::Rng& rng);

}  // namespace parpde::nn
