#pragma once

// Convolution primitives (stride 1, square kernel, symmetric zero padding)
// built on im2col + GEMM.
//
// The batched entry points lower a whole [N, C, H, W] batch into one wide
// [Cin*k*k x N*OH*OW] column matrix and issue a single large GEMM per layer,
// instead of N small ones — the GEMM gets enough columns to block and thread
// well, and the per-layer Conv2dWorkspace keeps every buffer alive across
// batches (no steady-state allocation). The single-sample versions remain for
// recurrent cells (ConvLSTM) whose backward-through-time pass re-evaluates
// per timestep.

#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"
#include "util/aligned.hpp"

namespace parpde::nn {

// Persistent per-layer scratch for the batched convolution path. Buffers only
// grow; a layer reuses them for every batch of the same geometry. All buffers
// are 64-byte aligned so the GEMM micro-kernels get clean vector loads.
struct Conv2dWorkspace {
  util::AlignedVector<float> col;   // [Cin*k*k x G*OH*OW] batched im2col columns
  util::AlignedVector<float> out;   // [Cout    x G*OH*OW] channel-major GEMM output
  util::AlignedVector<float> dy;    // [Cout    x G*OH*OW] channel-major gathered dY
  util::AlignedVector<float> dcol;  // [Cin*k*k x G*OH*OW] backward-data columns
};

// Number of samples lowered per wide GEMM: the whole batch when the column
// matrix fits the workspace budget, otherwise the largest group that does.
// Depends only on the problem geometry (never on thread count), so training
// results are reproducible across machines.
std::int64_t conv2d_batch_group(const ConvGeometry& g, std::int64_t batch);

// y [N, Cout, OH, OW] = w (*) x + b for x [N, Cin, H, W], w [Cout, Cin, k, k]
// and b [Cout] (b may be empty to skip the bias).
void conv2d_forward_batched(const Tensor& x, const Tensor& w, const Tensor& b,
                            std::int64_t pad, Tensor& y, Conv2dWorkspace& ws);

// Full backward: dx = w^T (*) dy (overwritten), dw += dy (*) x and
// db += sum(dy) (accumulating, like the single-sample versions).
void conv2d_backward_batched(const Tensor& x, const Tensor& dy,
                             const Tensor& w, std::int64_t pad, Tensor& dx,
                             Tensor& dw, Tensor& db, Conv2dWorkspace& ws);

// y [Cout, OH, OW] = w (*) x + b, where x is [Cin, H, W], w is
// [Cout, Cin, k, k] and b is [Cout] (b may be empty to skip the bias).
// `col` is caller-provided scratch resized as needed.
void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::int64_t pad, Tensor& y, util::AlignedVector<float>& col);

// dx = w^T (*) dy (backward-data). dx is overwritten, shaped like x.
void conv2d_backward_data(const Tensor& dy, const Tensor& w, std::int64_t pad,
                          Tensor& dx, util::AlignedVector<float>& col);

// dw += dy (*) x, db += sum(dy) (backward-weights, accumulating).
void conv2d_backward_weights(const Tensor& x, const Tensor& dy, std::int64_t pad,
                             Tensor& dw, Tensor& db, util::AlignedVector<float>& col);

}  // namespace parpde::nn
