#pragma once

// Functional single-sample convolution primitives (stride 1, square kernel,
// symmetric zero padding) built on im2col + GEMM. The Conv2d layer wraps the
// same lowering with caching; these stateless versions exist for recurrent
// cells (ConvLSTM) whose backward-through-time pass needs per-timestep
// re-evaluation instead of a single cached activation.

#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace parpde::nn {

// y [Cout, OH, OW] = w (*) x + b, where x is [Cin, H, W], w is
// [Cout, Cin, k, k] and b is [Cout] (b may be empty to skip the bias).
// `col` is caller-provided scratch resized as needed.
void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::int64_t pad, Tensor& y, std::vector<float>& col);

// dx = w^T (*) dy (backward-data). dx is overwritten, shaped like x.
void conv2d_backward_data(const Tensor& dy, const Tensor& w, std::int64_t pad,
                          Tensor& dx, std::vector<float>& col);

// dw += dy (*) x, db += sum(dy) (backward-weights, accumulating).
void conv2d_backward_weights(const Tensor& x, const Tensor& dy, std::int64_t pad,
                             Tensor& dw, Tensor& db, std::vector<float>& col);

}  // namespace parpde::nn
