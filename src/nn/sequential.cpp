#include "nn/sequential.hpp"

#include <stdexcept>

#include "util/telemetry.hpp"

namespace parpde::nn {

Module& Sequential::add(ModulePtr module) {
  if (!module) throw std::invalid_argument("Sequential::add: null module");
  layers_.push_back(std::move(module));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) {
    // Layer names are only materialized while tracing.
    telemetry::Span span(
        telemetry::enabled() ? layer->name() + " fwd" : std::string(), "nn");
    h = layer->forward(h);
  }
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    telemetry::Span span(
        telemetry::enabled() ? (*it)->name() + " bwd" : std::string(), "nn");
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (auto& p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::string Sequential::name() const {
  std::string s = "sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) s += ", ";
    s += layers_[i]->name();
  }
  s += ']';
  return s;
}

}  // namespace parpde::nn
