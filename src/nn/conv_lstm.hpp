#pragma once

// Convolutional LSTM — the extension the paper names as future work
// (Sec. IV-B / V: "incorporation of more complex layers, such as recurrent
// and LSTM layers. For these layers, the data must be fed into the network as
// time-series"). One cell with convolutional input/hidden transforms, a
// 1x1-conv readout, and full backpropagation through time.
//
// Sequence convention: the batch dimension is TIME. forward() consumes
// [T, Cin, H, W] as one sequence (hidden state starts at zero), produces the
// per-step readout [T, Cout, H, W], and backward() runs BPTT over the same
// sequence. This makes the cell a drop-in Module for the existing training
// loop with shuffle disabled.

#include "nn/module.hpp"
#include "util/aligned.hpp"
#include "util/random.hpp"

namespace parpde::nn {

class ConvLSTM final : public Module {
 public:
  ConvLSTM(std::int64_t in_channels, std::int64_t hidden_channels,
           std::int64_t out_channels, std::int64_t kernel);

  // Glorot init for the gate and readout convs; forget-gate bias starts at +1
  // (standard LSTM practice, keeps early memory open).
  void init(util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t hidden_channels() const { return hidden_channels_; }

 private:
  // Gate blocks inside the fused [4*Ch] channel axis, in order.
  enum Gate { kInput = 0, kForget = 1, kCell = 2, kOutput = 3 };

  std::int64_t in_channels_;
  std::int64_t hidden_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t pad_;

  Tensor wx_;  // [4Ch, Cin, k, k] input-to-gates conv
  Tensor wh_;  // [4Ch, Ch, k, k] hidden-to-gates conv
  Tensor b_;   // [4Ch]
  Tensor wy_;  // [Cout, Ch, 1, 1] readout conv
  Tensor by_;  // [Cout]
  Tensor wx_grad_, wh_grad_, b_grad_, wy_grad_, by_grad_;

  // Per-timestep caches for BPTT (filled by forward).
  struct StepCache {
    Tensor x;       // [Cin, H, W]
    Tensor h_prev;  // [Ch, H, W]
    Tensor c_prev;  // [Ch, H, W]
    Tensor gates;   // [4Ch, H, W], post-activation (i, f, g~tanh, o)
    Tensor c;       // [Ch, H, W]
    Tensor tanh_c;  // [Ch, H, W]
  };
  std::vector<StepCache> steps_;
  std::int64_t height_ = 0;
  std::int64_t width_ = 0;

  util::AlignedVector<float> col_;  // conv scratch
};

}  // namespace parpde::nn
