#include "nn/conv_lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace parpde::nn {

namespace {

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

ConvLSTM::ConvLSTM(std::int64_t in_channels, std::int64_t hidden_channels,
                   std::int64_t out_channels, std::int64_t kernel)
    : in_channels_(in_channels),
      hidden_channels_(hidden_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_((kernel - 1) / 2),
      wx_({4 * hidden_channels, in_channels, kernel, kernel}),
      wh_({4 * hidden_channels, hidden_channels, kernel, kernel}),
      b_({4 * hidden_channels}),
      wy_({out_channels, hidden_channels, 1, 1}),
      by_({out_channels}),
      wx_grad_({4 * hidden_channels, in_channels, kernel, kernel}),
      wh_grad_({4 * hidden_channels, hidden_channels, kernel, kernel}),
      b_grad_({4 * hidden_channels}),
      wy_grad_({out_channels, hidden_channels, 1, 1}),
      by_grad_({out_channels}) {
  if (in_channels <= 0 || hidden_channels <= 0 || out_channels <= 0 ||
      kernel <= 0 || kernel % 2 == 0) {
    throw std::invalid_argument("ConvLSTM: bad configuration (odd kernel only)");
  }
}

void ConvLSTM::init(util::Rng& rng) {
  glorot_uniform(wx_, in_channels_ * kernel_ * kernel_,
                 4 * hidden_channels_ * kernel_ * kernel_, rng);
  glorot_uniform(wh_, hidden_channels_ * kernel_ * kernel_,
                 4 * hidden_channels_ * kernel_ * kernel_, rng);
  glorot_uniform(wy_, hidden_channels_, out_channels_, rng);
  b_.fill(0.0f);
  by_.fill(0.0f);
  // Forget-gate bias +1: the cell starts by remembering.
  for (std::int64_t c = 0; c < hidden_channels_; ++c) {
    b_[kForget * hidden_channels_ + c] = 1.0f;
  }
}

Tensor ConvLSTM::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("ConvLSTM::forward: expected [T," +
                                std::to_string(in_channels_) + ",H,W], got " +
                                shape_to_string(x.shape()));
  }
  const std::int64_t T = x.dim(0);
  height_ = x.dim(2);
  width_ = x.dim(3);
  const std::int64_t plane = height_ * width_;

  steps_.assign(static_cast<std::size_t>(T), StepCache{});
  Tensor y({T, out_channels_, height_, width_});
  Tensor h = Tensor({hidden_channels_, height_, width_});
  Tensor c = Tensor({hidden_channels_, height_, width_});
  Tensor zx, zh;
  const Tensor no_bias;

  for (std::int64_t t = 0; t < T; ++t) {
    StepCache& cache = steps_[static_cast<std::size_t>(t)];
    cache.x = Tensor::from(
        {in_channels_, height_, width_},
        std::vector<float>(x.data() + t * in_channels_ * plane,
                           x.data() + (t + 1) * in_channels_ * plane));
    cache.h_prev = h;
    cache.c_prev = c;

    // Fused gate pre-activations z = Wx * x_t + Wh * h_{t-1} + b.
    backend::blocked_f32().conv2d_forward(cache.x, wx_, b_, pad_, zx, col_);
    backend::blocked_f32().conv2d_forward(cache.h_prev, wh_, no_bias, pad_, zh, col_);
    ops::axpy(zx, 1.0f, zh);

    // Activations: i, f, o sigmoid; g tanh. Stored post-activation.
    cache.gates = Tensor({4 * hidden_channels_, height_, width_});
    for (std::int64_t g = 0; g < 4; ++g) {
      const std::int64_t off = g * hidden_channels_ * plane;
      float* dst = cache.gates.data() + off;
      const float* src = zx.data() + off;
      if (g == kCell) {
        for (std::int64_t i = 0; i < hidden_channels_ * plane; ++i) {
          dst[i] = std::tanh(src[i]);
        }
      } else {
        for (std::int64_t i = 0; i < hidden_channels_ * plane; ++i) {
          dst[i] = sigmoid(src[i]);
        }
      }
    }

    // c_t = f .* c_{t-1} + i .* g ;  h_t = o .* tanh(c_t).
    cache.c = Tensor({hidden_channels_, height_, width_});
    cache.tanh_c = Tensor({hidden_channels_, height_, width_});
    const float* gi = cache.gates.data() + kInput * hidden_channels_ * plane;
    const float* gf = cache.gates.data() + kForget * hidden_channels_ * plane;
    const float* gg = cache.gates.data() + kCell * hidden_channels_ * plane;
    const float* go = cache.gates.data() + kOutput * hidden_channels_ * plane;
    for (std::int64_t i = 0; i < hidden_channels_ * plane; ++i) {
      const float ct = gf[i] * cache.c_prev[i] + gi[i] * gg[i];
      cache.c[i] = ct;
      const float th = std::tanh(ct);
      cache.tanh_c[i] = th;
      h[i] = go[i] * th;
    }
    c = cache.c;

    // Readout y_t = Wy (1x1) * h_t + by.
    Tensor yt;
    backend::blocked_f32().conv2d_forward(h, wy_, by_, 0, yt, col_);
    std::copy(yt.data(), yt.data() + out_channels_ * plane,
              y.data() + t * out_channels_ * plane);
    // `h` already holds h_t for the next iteration; stash it for BPTT by
    // keeping the gates/c caches (h_t is recomputed from them cheaply).
  }
  return y;
}

Tensor ConvLSTM::backward(const Tensor& grad_out) {
  const std::int64_t T = static_cast<std::int64_t>(steps_.size());
  if (T == 0) throw std::logic_error("ConvLSTM::backward before forward");
  const std::int64_t plane = height_ * width_;
  if (grad_out.ndim() != 4 || grad_out.dim(0) != T ||
      grad_out.dim(1) != out_channels_ || grad_out.dim(2) != height_ ||
      grad_out.dim(3) != width_) {
    throw std::invalid_argument("ConvLSTM::backward: gradient shape mismatch");
  }

  Tensor grad_in({T, in_channels_, height_, width_});
  Tensor dh_next({hidden_channels_, height_, width_});
  Tensor dc_next({hidden_channels_, height_, width_});
  Tensor dz({4 * hidden_channels_, height_, width_});
  Tensor dyt({out_channels_, height_, width_});
  Tensor dh({hidden_channels_, height_, width_});
  Tensor dx({in_channels_, height_, width_});
  Tensor dh_prev({hidden_channels_, height_, width_});
  const Tensor no_bias;

  for (std::int64_t t = T - 1; t >= 0; --t) {
    const StepCache& cache = steps_[static_cast<std::size_t>(t)];
    const float* gi = cache.gates.data() + kInput * hidden_channels_ * plane;
    const float* gf = cache.gates.data() + kForget * hidden_channels_ * plane;
    const float* gg = cache.gates.data() + kCell * hidden_channels_ * plane;
    const float* go = cache.gates.data() + kOutput * hidden_channels_ * plane;

    // h_t = o .* tanh(c_t) (recomputed from caches for the readout backward).
    Tensor h_t({hidden_channels_, height_, width_});
    for (std::int64_t i = 0; i < hidden_channels_ * plane; ++i) {
      h_t[i] = go[i] * cache.tanh_c[i];
    }

    // Readout backward: dWy += dy ⊗ h_t ; dh = Wy^T dy + dh_next.
    std::copy(grad_out.data() + t * out_channels_ * plane,
              grad_out.data() + (t + 1) * out_channels_ * plane, dyt.data());
    backend::blocked_f32().conv2d_backward_weights(h_t, dyt, 0, wy_grad_, by_grad_, col_);
    backend::blocked_f32().conv2d_backward_data(dyt, wy_, 0, dh, col_);
    ops::axpy(dh, 1.0f, dh_next);

    // Cell/gate backward.
    float* dzi = dz.data() + kInput * hidden_channels_ * plane;
    float* dzf = dz.data() + kForget * hidden_channels_ * plane;
    float* dzg = dz.data() + kCell * hidden_channels_ * plane;
    float* dzo = dz.data() + kOutput * hidden_channels_ * plane;
    for (std::int64_t i = 0; i < hidden_channels_ * plane; ++i) {
      const float th = cache.tanh_c[i];
      const float dc = dh[i] * go[i] * (1.0f - th * th) + dc_next[i];
      dzo[i] = dh[i] * th * go[i] * (1.0f - go[i]);
      dzf[i] = dc * cache.c_prev[i] * gf[i] * (1.0f - gf[i]);
      dzi[i] = dc * gg[i] * gi[i] * (1.0f - gi[i]);
      dzg[i] = dc * gi[i] * (1.0f - gg[i] * gg[i]);
      dc_next[i] = dc * gf[i];
    }

    // Gate-conv backward: parameters and both data paths.
    backend::blocked_f32().conv2d_backward_weights(cache.x, dz, pad_, wx_grad_, b_grad_, col_);
    {
      Tensor empty_bias;
      backend::blocked_f32().conv2d_backward_weights(cache.h_prev, dz, pad_, wh_grad_, empty_bias,
                              col_);
    }
    backend::blocked_f32().conv2d_backward_data(dz, wx_, pad_, dx, col_);
    backend::blocked_f32().conv2d_backward_data(dz, wh_, pad_, dh_prev, col_);

    std::copy(dx.data(), dx.data() + in_channels_ * plane,
              grad_in.data() + t * in_channels_ * plane);
    dh_next = dh_prev;
  }
  return grad_in;
}

std::vector<ParamRef> ConvLSTM::parameters() {
  return {{&wx_, &wx_grad_, "conv_lstm.wx"},
          {&wh_, &wh_grad_, "conv_lstm.wh"},
          {&b_, &b_grad_, "conv_lstm.b"},
          {&wy_, &wy_grad_, "conv_lstm.wy"},
          {&by_, &by_grad_, "conv_lstm.by"}};
}

std::string ConvLSTM::name() const {
  return "conv_lstm(" + std::to_string(in_channels_) + "->" +
         std::to_string(hidden_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

}  // namespace parpde::nn
