#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "util/thread_pool.hpp"

namespace parpde::nn {

namespace {

// Elementwise maps write disjoint outputs, so threading them is
// bit-deterministic. The grain keeps the tiny test tensors inline.
constexpr std::int64_t kElementwiseGrain = 1 << 14;

}  // namespace

Tensor LeakyReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y(x.shape());
  backend::blocked_f32().leaky_relu(x.data(), y.data(), x.size(),
                                    negative_slope_);
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  if (input_.empty()) throw std::logic_error("LeakyReLU::backward before forward");
  if (!grad_out.same_shape(input_)) {
    throw std::invalid_argument("LeakyReLU::backward: gradient shape mismatch");
  }
  Tensor grad_in(input_.shape());
  const float eps = negative_slope_;
  util::ThreadPool::global().parallel_for(
      input_.size(), kElementwiseGrain, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          // Subgradient at exactly 0 follows the positive branch (paper
          // Sec. II: "a value for this unlikely case should be selected").
          grad_in[i] = input_[i] >= 0.0f ? grad_out[i] : eps * grad_out[i];
        }
      });
  return grad_in;
}

std::string LeakyReLU::name() const {
  return "leaky_relu(" + std::to_string(negative_slope_) + ")";
}

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y(x.shape());
  backend::blocked_f32().relu(x.data(), y.data(), x.size());
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (input_.empty()) throw std::logic_error("ReLU::backward before forward");
  if (!grad_out.same_shape(input_)) {
    throw std::invalid_argument("ReLU::backward: gradient shape mismatch");
  }
  Tensor grad_in(input_.shape());
  for (std::int64_t i = 0; i < input_.size(); ++i) {
    grad_in[i] = input_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return grad_in;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y(x.shape());
  backend::blocked_f32().tanh(x.data(), y.data(), x.size());
  output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (output_.empty()) throw std::logic_error("Tanh::backward before forward");
  if (!grad_out.same_shape(output_)) {
    throw std::invalid_argument("Tanh::backward: gradient shape mismatch");
  }
  Tensor grad_in(output_.shape());
  for (std::int64_t i = 0; i < output_.size(); ++i) {
    grad_in[i] = grad_out[i] * (1.0f - output_[i] * output_[i]);
  }
  return grad_in;
}

}  // namespace parpde::nn
