#pragma once

// Feed-forward container chaining modules. The paper's per-subdomain model is
// a Sequential of [Conv2d, LeakyReLU] x 4 (Table I).

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace parpde::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  // Appends a layer; returns a reference to the stored module for chaining.
  Module& add(ModulePtr module);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto m = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *m;
    add(std::move(m));
    return ref;
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace parpde::nn
