#include "nn/conv_transpose2d.hpp"

#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "nn/init.hpp"

namespace parpde::nn {

ConvTranspose2d::ConvTranspose2d(std::int64_t in_channels,
                                 std::int64_t out_channels, std::int64_t kernel)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_({in_channels, out_channels, kernel, kernel}),
      bias_({out_channels}),
      weight_grad_({in_channels, out_channels, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0) {
    throw std::invalid_argument("ConvTranspose2d: bad configuration");
  }
}

void ConvTranspose2d::init(util::Rng& rng) {
  glorot_uniform(weight_, in_channels_ * kernel_ * kernel_,
                 out_channels_ * kernel_ * kernel_, rng);
  bias_.fill(0.0f);
}

Tensor ConvTranspose2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("ConvTranspose2d::forward: bad input shape " +
                                shape_to_string(x.shape()));
  }
  input_ = x;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h + kernel_ - 1, ow = w + kernel_ - 1;
  Tensor y({n, out_channels_, oh, ow});
  // The scatter loop nest lives in the backend now (same kernel both the
  // module graph and any future fused deconv path share).
  backend::blocked_f32().conv_transpose2d_forward(
      x.data(), weight_.data(), bias_.data(), n, in_channels_, out_channels_,
      h, w, kernel_, y.data());
  return y;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_out) {
  if (input_.empty()) {
    throw std::logic_error("ConvTranspose2d::backward before forward");
  }
  const std::int64_t n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const std::int64_t oh = h + kernel_ - 1, ow = w + kernel_ - 1;
  if (grad_out.ndim() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_channels_ || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow) {
    throw std::invalid_argument("ConvTranspose2d::backward: gradient mismatch");
  }
  Tensor grad_in(input_.shape());
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t co = 0; co < out_channels_; ++co) {
      const float* dyplane = grad_out.data() + ((s * out_channels_ + co) * oh) * ow;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < oh * ow; ++i) acc += dyplane[i];
      bias_grad_[co] += acc;
    }
    for (std::int64_t ci = 0; ci < in_channels_; ++ci) {
      const float* xplane = input_.data() + ((s * in_channels_ + ci) * h) * w;
      float* dxplane = grad_in.data() + ((s * in_channels_ + ci) * h) * w;
      for (std::int64_t co = 0; co < out_channels_; ++co) {
        const float* ker = weight_.data() +
                           ((ci * out_channels_ + co) * kernel_) * kernel_;
        float* dker = weight_grad_.data() +
                      ((ci * out_channels_ + co) * kernel_) * kernel_;
        const float* dyplane =
            grad_out.data() + ((s * out_channels_ + co) * oh) * ow;
        for (std::int64_t iy = 0; iy < h; ++iy) {
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* dyrow = dyplane + (iy + ky) * ow;
            const float* krow = ker + ky * kernel_;
            float* dkrow = dker + ky * kernel_;
            const float* xrow = xplane + iy * w;
            float* dxrow = dxplane + iy * w;
            for (std::int64_t ix = 0; ix < w; ++ix) {
              float dx_acc = 0.0f;
              const float xv = xrow[ix];
              for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                const float dy = dyrow[ix + kx];
                dx_acc += krow[kx] * dy;
                dkrow[kx] += xv * dy;
              }
              dxrow[ix] += dx_acc;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<ParamRef> ConvTranspose2d::parameters() {
  return {{&weight_, &weight_grad_, name() + ".weight"},
          {&bias_, &bias_grad_, name() + ".bias"}};
}

std::string ConvTranspose2d::name() const {
  return "conv_transpose2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

}  // namespace parpde::nn
