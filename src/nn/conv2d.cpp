#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace parpde::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad < 0 ? (kernel - 1) / 2 : pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0) {
    throw std::invalid_argument("Conv2d: bad configuration");
  }
}

void Conv2d::init(util::Rng& rng) {
  glorot_uniform(weight_, in_channels_ * kernel_ * kernel_,
                 out_channels_ * kernel_ * kernel_, rng);
  bias_.fill(0.0f);
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [N," +
                                std::to_string(in_channels_) + ",H,W], got " +
                                shape_to_string(x.shape()));
  }
  input_ = x;
  const ConvGeometry g{in_channels_, x.dim(2), x.dim(3), kernel_, pad_};
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
  }
  const std::int64_t n = x.dim(0);
  Tensor y({n, out_channels_, oh, ow});
  col_.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));

  const std::int64_t in_stride = in_channels_ * g.height * g.width;
  const std::int64_t out_stride = out_channels_ * oh * ow;
  for (std::int64_t s = 0; s < n; ++s) {
    im2col(x.data() + s * in_stride, g, col_.data());
    // y_s [Cout x OH*OW] = W [Cout x Cin*k*k] * col
    gemm(weight_.data(), col_.data(), y.data() + s * out_stride, out_channels_,
         g.col_rows(), g.col_cols());
    // Add bias per output channel.
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      float* plane = y.data() + s * out_stride + c * oh * ow;
      const float b = bias_[c];
      for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += b;
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (input_.empty()) throw std::logic_error("Conv2d::backward before forward");
  const ConvGeometry g{in_channels_, input_.dim(2), input_.dim(3), kernel_, pad_};
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t n = input_.dim(0);
  if (grad_out.ndim() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_channels_ || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }

  Tensor grad_in(input_.shape());
  std::vector<float> dcol(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  col_.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));

  const std::int64_t in_stride = in_channels_ * g.height * g.width;
  const std::int64_t out_stride = out_channels_ * oh * ow;
  for (std::int64_t s = 0; s < n; ++s) {
    const float* dy = grad_out.data() + s * out_stride;
    // dW [Cout x Cin*k*k] += dY [Cout x P] * col^T, recomputing col to avoid
    // caching one column matrix per sample.
    im2col(input_.data() + s * in_stride, g, col_.data());
    gemm_bt_acc(dy, col_.data(), weight_grad_.data(), out_channels_,
                g.col_cols(), g.col_rows());
    // db[c] += sum of dY over the spatial plane.
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      const float* plane = dy + c * oh * ow;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < oh * ow; ++i) acc += plane[i];
      bias_grad_[c] += acc;
    }
    // dcol [Cin*k*k x P] = W^T * dY, then scatter back to input gradients.
    gemm_at(weight_.data(), dy, dcol.data(), g.col_rows(), out_channels_,
            g.col_cols());
    col2im(dcol.data(), g, grad_in.data() + s * in_stride);
  }
  return grad_in;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {{&weight_, &weight_grad_, name() + ".weight"},
          {&bias_, &bias_grad_, name() + ".bias"}};
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) +
         ",p=" + std::to_string(pad_) + ")";
}

}  // namespace parpde::nn
