#include "nn/conv2d.hpp"

#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "nn/init.hpp"
#include "util/telemetry.hpp"

namespace parpde::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad < 0 ? (kernel - 1) / 2 : pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0) {
    throw std::invalid_argument("Conv2d: bad configuration");
  }
}

void Conv2d::init(util::Rng& rng) {
  glorot_uniform(weight_, in_channels_ * kernel_ * kernel_,
                 out_channels_ * kernel_ * kernel_, rng);
  bias_.fill(0.0f);
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [N," +
                                std::to_string(in_channels_) + ",H,W], got " +
                                shape_to_string(x.shape()));
  }
  input_ = x;
  static telemetry::Counter& calls = telemetry::counter("nn.conv2d.forward");
  calls.add(1);
  telemetry::Span span("conv2d.forward", "nn");
  // Whole-batch lowering: one wide im2col + one GEMM per layer. Training is
  // fp32 by design, so the module graph dispatches through the reference
  // backend explicitly (int8 applies to the fused inference path only).
  Tensor y;
  backend::blocked_f32().conv2d_forward_batched(x, weight_, bias_, pad_, y,
                                                ws_);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (input_.empty()) throw std::logic_error("Conv2d::backward before forward");
  const ConvGeometry g{in_channels_, input_.dim(2), input_.dim(3), kernel_, pad_};
  const std::int64_t oh = g.out_height();
  const std::int64_t ow = g.out_width();
  const std::int64_t n = input_.dim(0);
  if (grad_out.ndim() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_channels_ || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }

  static telemetry::Counter& calls = telemetry::counter("nn.conv2d.backward");
  calls.add(1);
  telemetry::Span span("conv2d.backward", "nn");
  Tensor grad_in;
  // Batched backward: recomputes the wide column matrix once, then one GEMM
  // each for dW and the data gradient.
  backend::blocked_f32().conv2d_backward_batched(
      input_, grad_out, weight_, pad_, grad_in, weight_grad_, bias_grad_, ws_);
  return grad_in;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {{&weight_, &weight_grad_, name() + ".weight"},
          {&bias_, &bias_grad_, name() + ".bias"}};
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) +
         ",p=" + std::to_string(pad_) + ")";
}

}  // namespace parpde::nn
