#pragma once

// Pre-sized inference plan for a Sequential of Conv2d + pointwise activation
// layers (the paper's Table-I subdomain network). The plan walks the model
// once at construction, pre-allocates every per-layer activation buffer and
// im2col workspace for a maximum input geometry, and then evaluates forward
// passes into those buffers: the steady-state step performs zero heap
// allocations (verified by the counting-allocator test in
// tests/test_rollout_overlap.cpp).
//
// run() accepts any input no larger than the pre-sized maximum, which is what
// lets the overlapped rollout engine evaluate the same plan on the bare
// interior tile (while halo strips are in flight) and afterwards on the four
// thin rim bands — see docs/performance.md. Results are bit-identical to
// Module::forward: the convs lower to the same im2col + GEMM kernels (whose
// per-element k-reduction order is independent of the matrix width and the
// worker count) and the activations replicate the layers' exact formulas.
//
// The plan holds non-owning pointers into the Sequential's layers; the model
// must outlive the plan and keep its layer list unchanged.

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"

namespace parpde::nn {

class ForwardPlan {
 public:
  // Walks `model` and pre-sizes all buffers for inputs up to
  // [in_channels, max_h, max_w]. If the model contains a layer type the plan
  // cannot replay (anything but Conv2d / LeakyReLU / ReLU / Tanh), the plan
  // is marked unsupported and run() must not be called — callers fall back
  // to Module::forward.
  ForwardPlan(Sequential& model, std::int64_t in_channels, std::int64_t max_h,
              std::int64_t max_w);

  [[nodiscard]] bool supported() const noexcept { return supported_; }

  // Non-owning view of the result; valid until the next run() call.
  struct Output {
    const float* data = nullptr;
    std::int64_t channels = 0;
    std::int64_t height = 0;
    std::int64_t width = 0;

    [[nodiscard]] std::int64_t size() const { return channels * height * width; }
  };

  // Evaluates the model on a dense CHW input [in_channels, h, w] with
  // h <= max_h and w <= max_w. Never allocates for in-range geometries;
  // out-of-range ones grow the buffers and bump growth_events().
  Output run(const float* x, std::int64_t h, std::int64_t w);

  [[nodiscard]] std::int64_t in_channels() const noexcept {
    return in_channels_;
  }
  [[nodiscard]] std::int64_t out_channels() const noexcept {
    return out_channels_;
  }
  // Total spatial shrink of the stack: output is [out_channels, h - s, w - s]
  // for input height/width h, w (0 for "same"-padded nets).
  [[nodiscard]] std::int64_t shrink() const noexcept { return shrink_; }

  // Buffer regrowths since construction; 0 in a pre-sized steady state.
  [[nodiscard]] std::uint64_t growth_events() const noexcept {
    return growth_events_;
  }

 private:
  enum class Op { kConv, kLeakyReLU, kReLU, kTanh };

  struct Step {
    Op op = Op::kConv;
    // kConv only: non-owning views of the layer's parameters.
    const float* weight = nullptr;  // [Cout, Cin*k*k] row-major
    const float* bias = nullptr;    // [Cout] (nullptr = no bias)
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 0;
    std::int64_t pad = 0;
    // kLeakyReLU only.
    float slope = 0.0f;
  };

  float* ensure(std::vector<float>& buf, std::int64_t floats);

  std::vector<Step> steps_;
  std::int64_t in_channels_ = 0;
  std::int64_t out_channels_ = 0;
  std::int64_t max_h_ = 0;
  std::int64_t max_w_ = 0;
  std::int64_t shrink_ = 0;
  bool supported_ = true;
  std::uint64_t growth_events_ = 0;

  std::vector<float> col_;    // im2col workspace, sized for the widest conv
  std::vector<float> ping_;   // activation ping-pong buffers
  std::vector<float> pong_;
};

}  // namespace parpde::nn
