#pragma once

// Pre-sized inference plan for a Sequential of Conv2d + pointwise activation
// layers (the paper's Table-I subdomain network). The plan walks the model
// once at construction, pre-allocates every per-layer activation buffer, asks
// the selected KernelBackend for a PlanContext holding the backend-side state
// (im2col workspace for fp32; quantized weights and int8 workspaces for
// int8), and then evaluates forward passes into those buffers: the
// steady-state step performs zero heap allocations on either backend
// (verified by the counting-allocator tests in tests/test_rollout_overlap.cpp
// and tests/test_quant_rollout.cpp).
//
// run() accepts any input no larger than the pre-sized maximum, which is what
// lets the overlapped rollout engine evaluate the same plan on the bare
// interior tile (while halo strips are in flight) and afterwards on the four
// thin rim bands — see docs/performance.md. On the fp32 backend results are
// bit-identical to Module::forward: the convs lower to the same im2col + GEMM
// kernels (whose per-element k-reduction order is independent of the matrix
// width and the worker count) and the fused bias/activation epilogue applies
// the layers' exact per-element formulas. On the int8 backend results are
// bit-deterministic (integer accumulation is exact; activation scales are
// fixed by calibration, not derived per call) but intentionally differ from
// fp32 within the documented error budget.
//
// The plan holds non-owning pointers into the Sequential's layers; the model
// must outlive the plan and keep its layer list unchanged.

#include <cstdint>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "nn/sequential.hpp"
#include "util/aligned.hpp"

namespace parpde::nn {

class ForwardPlan {
 public:
  // Walks `model` and pre-sizes all buffers for inputs up to
  // [in_channels, max_h, max_w]. If the model contains a layer type the plan
  // cannot replay (anything but Conv2d / LeakyReLU / ReLU / Tanh), the plan
  // is marked unsupported and run() must not be called — callers fall back
  // to Module::forward. `backend` selects the execution provider
  // (nullptr = the reference fp32 backend). `max_batch` additionally
  // pre-sizes the plan for run_batched() calls of up to that many stacked
  // samples (1 = the classic single-sample plan).
  ForwardPlan(Sequential& model, std::int64_t in_channels, std::int64_t max_h,
              std::int64_t max_w,
              const backend::KernelBackend* backend = nullptr,
              std::int64_t max_batch = 1);

  [[nodiscard]] bool supported() const noexcept { return supported_; }

  [[nodiscard]] const backend::KernelBackend& backend() const noexcept {
    return *backend_;
  }

  // Non-owning view of the result; valid until the next run() call.
  struct Output {
    const float* data = nullptr;
    std::int64_t channels = 0;
    std::int64_t height = 0;
    std::int64_t width = 0;

    [[nodiscard]] std::int64_t size() const { return channels * height * width; }
  };

  // Evaluates the model on a dense CHW input [in_channels, h, w] with
  // h <= max_h and w <= max_w. Never allocates for in-range geometries;
  // out-of-range ones grow the buffers and bump growth_events().
  Output run(const float* x, std::int64_t h, std::int64_t w);

  // Evaluates the model on `batch` stacked samples [B, in_channels, h, w] in
  // one pass per layer: every conv lowers the whole batch into a single wide
  // GEMM (backend conv_forward_batched). Output::data points at the stacked
  // [B, out_channels, oh, ow] result; the per-sample shape is in the Output
  // fields. Each sample's bytes are identical to a solo run() on that sample
  // — the cross-session coalescing contract SurrogateServer builds on (see
  // docs/serving.md). Never allocates for batch <= max_batch and in-range
  // geometries.
  Output run_batched(const float* x, std::int64_t batch, std::int64_t h,
                     std::int64_t w);

  // --- activation-scale calibration (int8 backend) --------------------------
  // True when the backend quantizes activations and no input ranges have been
  // installed yet; run() must not be called in that state.
  [[nodiscard]] bool needs_calibration() const;
  // One fp32 reference pass over a representative tile [in_channels, h, w]:
  // records each conv layer's input max-abs and installs the ranges into the
  // backend context. Allocates (calibration happens before steady state).
  void calibrate(const float* x, std::int64_t h, std::int64_t w);
  // Installs externally recorded ranges (e.g. the quantized-weights section
  // of a serialized model); one entry per conv layer.
  void set_calibration(std::vector<float> ranges);
  // Ranges installed by calibrate()/set_calibration(); empty before either.
  [[nodiscard]] const std::vector<float>& calibration() const noexcept {
    return ranges_;
  }

  [[nodiscard]] std::int64_t in_channels() const noexcept {
    return in_channels_;
  }
  [[nodiscard]] std::int64_t out_channels() const noexcept {
    return out_channels_;
  }
  // Total spatial shrink of the stack: output is [out_channels, h - s, w - s]
  // for input height/width h, w (0 for "same"-padded nets).
  [[nodiscard]] std::int64_t shrink() const noexcept { return shrink_; }
  // Largest batch the plan pre-sized run_batched() for.
  [[nodiscard]] std::int64_t max_batch() const noexcept { return max_batch_; }

  // Buffer regrowths since construction (plan activation buffers plus the
  // backend context's workspaces); 0 in a pre-sized steady state.
  [[nodiscard]] std::uint64_t growth_events() const noexcept {
    return growth_events_ +
           (ctx_ != nullptr ? ctx_->growth_events() : std::uint64_t{0});
  }

 private:
  enum class Op { kConv, kLeakyReLU, kReLU, kTanh };

  // Post-fusion step list: a kConv step indexes the ConvLayerDesc (which may
  // carry a fused activation); the pointwise ops only appear standalone when
  // they have no conv to fuse into (e.g. an activation-first model).
  struct Step {
    Op op = Op::kConv;
    int conv = -1;       // kConv: index into descs_
    float slope = 0.0f;  // kLeakyReLU only
  };

  float* ensure(util::AlignedVector<float>& buf, std::int64_t floats);

  // One wide pass over `batch` stacked samples through every step. When
  // `final_dst` is non-null the last step writes its [batch, out_channels,
  // oh, ow] result there instead of into a ping-pong buffer, which is what
  // lets run_batched() evaluate a large batch in cache-sized sample groups
  // while still returning one contiguous stacked output.
  Output run_group(const float* x, std::int64_t batch, std::int64_t h,
                   std::int64_t w, float* final_dst);

  const backend::KernelBackend* backend_ = nullptr;
  std::vector<Step> steps_;
  std::vector<backend::ConvLayerDesc> descs_;
  std::unique_ptr<backend::PlanContext> ctx_;
  std::vector<float> ranges_;
  std::int64_t in_channels_ = 0;
  std::int64_t out_channels_ = 0;
  std::int64_t max_h_ = 0;
  std::int64_t max_w_ = 0;
  std::int64_t max_batch_ = 1;
  std::int64_t shrink_ = 0;
  bool supported_ = true;
  std::uint64_t growth_events_ = 0;

  util::AlignedVector<float> ping_;  // activation ping-pong buffers
  util::AlignedVector<float> pong_;
  // Stacked final output for the grouped run_batched() path (only sized when
  // max_batch > 1): sample groups write their last-layer result here at their
  // batch offset so the returned Output spans the whole batch contiguously.
  util::AlignedVector<float> stack_;
};

}  // namespace parpde::nn
