#pragma once

// Layer abstraction. Modules are stateful: forward() caches whatever backward()
// needs, and backward() consumes the most recent forward's cache. This mirrors
// the define-by-run training loop the paper uses (PyTorch) without a general
// autograd tape — the per-subdomain model is a plain feed-forward chain.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::nn {

// Non-owning handle to one learnable parameter and its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Computes the layer output; caches activations needed by backward().
  virtual Tensor forward(const Tensor& x) = 0;

  // Propagates the loss gradient; accumulates into parameter grads and
  // returns the gradient with respect to the layer input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> parameters() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  // Zeroes all parameter gradients.
  void zero_grad() {
    for (auto& p : parameters()) p.grad->fill(0.0f);
  }

  // Total learnable scalar count.
  [[nodiscard]] std::int64_t parameter_count() {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.value->size();
    return n;
  }
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace parpde::nn
