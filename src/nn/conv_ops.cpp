#include "nn/conv_ops.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace parpde::nn {

namespace {

// Cap on one workspace buffer (floats): 16M floats = 64 MiB. The full-scale
// 256x256 runs fall back to smaller sample groups; the laptop-scale tests
// lower whole batches at once.
constexpr std::int64_t kMaxWorkspaceFloats = std::int64_t{1} << 24;

ConvGeometry batched_geometry(const Tensor& x, const Tensor& w,
                              std::int64_t pad, const char* what) {
  if (x.ndim() != 4 || w.ndim() != 4 || w.dim(1) != x.dim(1)) {
    throw std::invalid_argument(std::string(what) +
                                ": expected x [N,Cin,H,W], w [Cout,Cin,k,k]");
  }
  if (w.dim(2) != w.dim(3)) {
    throw std::invalid_argument(std::string(what) + ": kernel must be square");
  }
  return ConvGeometry{x.dim(1), x.dim(2), x.dim(3), w.dim(2), pad};
}

ConvGeometry geometry_of(const Tensor& x, const Tensor& w, std::int64_t pad,
                         const char* what) {
  if (x.ndim() != 3 || w.ndim() != 4 || w.dim(1) != x.dim(0)) {
    throw std::invalid_argument(std::string(what) +
                                ": expected x [Cin,H,W], w [Cout,Cin,k,k]");
  }
  if (w.dim(2) != w.dim(3)) {
    throw std::invalid_argument(std::string(what) + ": kernel must be square");
  }
  return ConvGeometry{x.dim(0), x.dim(1), x.dim(2), w.dim(2), pad};
}

}  // namespace

void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::int64_t pad, Tensor& y, util::AlignedVector<float>& col) {
  const ConvGeometry g = geometry_of(x, w, pad, "conv2d_forward");
  const std::int64_t cout = w.dim(0);
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_forward: input smaller than kernel");
  }
  if (y.ndim() != 3 || y.dim(0) != cout || y.dim(1) != oh || y.dim(2) != ow) {
    y = Tensor({cout, oh, ow});
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(x.data(), g, col.data());
  gemm(w.data(), col.data(), y.data(), cout, g.col_rows(), g.col_cols());
  if (!b.empty()) {
    if (b.size() != cout) {
      throw std::invalid_argument("conv2d_forward: bias size mismatch");
    }
    for (std::int64_t c = 0; c < cout; ++c) {
      float* plane = y.data() + c * oh * ow;
      const float bias = b[c];
      for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += bias;
    }
  }
}

void conv2d_backward_data(const Tensor& dy, const Tensor& w, std::int64_t pad,
                          Tensor& dx, util::AlignedVector<float>& col) {
  if (dy.ndim() != 3 || w.ndim() != 4 || dy.dim(0) != w.dim(0)) {
    throw std::invalid_argument(
        "conv2d_backward_data: expected dy [Cout,OH,OW], w [Cout,Cin,k,k]");
  }
  if (dx.ndim() != 3 || dx.dim(0) != w.dim(1)) {
    throw std::invalid_argument("conv2d_backward_data: dx must be [Cin,H,W]");
  }
  const ConvGeometry g{w.dim(1), dx.dim(1), dx.dim(2), w.dim(2), pad};
  if (g.out_height() != dy.dim(1) || g.out_width() != dy.dim(2)) {
    throw std::invalid_argument("conv2d_backward_data: shape mismatch");
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  gemm_at(w.data(), dy.data(), col.data(), g.col_rows(), w.dim(0), g.col_cols());
  dx.fill(0.0f);
  col2im(col.data(), g, dx.data());
}

void conv2d_backward_weights(const Tensor& x, const Tensor& dy, std::int64_t pad,
                             Tensor& dw, Tensor& db, util::AlignedVector<float>& col) {
  const ConvGeometry g = geometry_of(x, dw, pad, "conv2d_backward_weights");
  const std::int64_t cout = dw.dim(0);
  if (dy.dim(0) != cout || dy.dim(1) != g.out_height() ||
      dy.dim(2) != g.out_width()) {
    throw std::invalid_argument("conv2d_backward_weights: dy shape mismatch");
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(x.data(), g, col.data());
  gemm_bt_acc(dy.data(), col.data(), dw.data(), cout, g.col_cols(),
              g.col_rows());
  if (!db.empty()) {
    const std::int64_t plane = g.out_height() * g.out_width();
    for (std::int64_t c = 0; c < cout; ++c) {
      const float* p = dy.data() + c * plane;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) acc += p[i];
      db[c] += acc;
    }
  }
}

std::int64_t conv2d_batch_group(const ConvGeometry& g, std::int64_t batch) {
  const std::int64_t per_sample = g.col_rows() * g.col_cols();
  if (per_sample <= 0) return 1;
  return std::clamp<std::int64_t>(kMaxWorkspaceFloats / per_sample, 1, batch);
}

void conv2d_forward_batched(const Tensor& x, const Tensor& w, const Tensor& b,
                            std::int64_t pad, Tensor& y, Conv2dWorkspace& ws) {
  const ConvGeometry g = batched_geometry(x, w, pad, "conv2d_forward_batched");
  const std::int64_t cout = w.dim(0);
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d_forward_batched: input smaller than kernel");
  }
  if (!b.empty() && b.size() != cout) {
    throw std::invalid_argument("conv2d_forward_batched: bias size mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t plane = oh * ow;
  const std::int64_t in_stride = g.in_channels * g.height * g.width;
  const std::int64_t out_stride = cout * plane;
  if (y.ndim() != 4 || y.dim(0) != n || y.dim(1) != cout || y.dim(2) != oh ||
      y.dim(3) != ow) {
    y = Tensor({n, cout, oh, ow});
  }

  const std::int64_t group = conv2d_batch_group(g, n);
  auto& pool = util::ThreadPool::global();
  for (std::int64_t g0 = 0; g0 < n; g0 += group) {
    const std::int64_t gn = std::min(group, n - g0);
    const std::int64_t wide = gn * plane;
    ws.col.resize(static_cast<std::size_t>(g.col_rows() * wide));
    ws.out.resize(static_cast<std::size_t>(cout * wide));
    im2col_batched(x.data() + g0 * in_stride, gn, g, ws.col.data());
    // out [Cout x gn*plane] = W [Cout x Cin*k*k] * col: one wide GEMM for the
    // whole group instead of gn narrow ones.
    gemm(w.data(), ws.col.data(), ws.out.data(), cout, g.col_rows(), wide);
    // Scatter the channel-major GEMM output into NCHW order, fusing the bias
    // add. Planes are disjoint, so the parallel loop is deterministic.
    pool.parallel_for(gn * cout, 4, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t t = begin; t < end; ++t) {
        const std::int64_t s = t / cout, c = t % cout;
        const float* src = ws.out.data() + c * wide + s * plane;
        float* dst = y.data() + (g0 + s) * out_stride + c * plane;
        if (b.empty()) {
          std::memcpy(dst, src, static_cast<std::size_t>(plane) * sizeof(float));
        } else {
          const float bias = b[c];
          for (std::int64_t i = 0; i < plane; ++i) dst[i] = src[i] + bias;
        }
      }
    });
  }
}

void conv2d_backward_batched(const Tensor& x, const Tensor& dy,
                             const Tensor& w, std::int64_t pad, Tensor& dx,
                             Tensor& dw, Tensor& db, Conv2dWorkspace& ws) {
  const ConvGeometry g = batched_geometry(x, w, pad, "conv2d_backward_batched");
  const std::int64_t cout = w.dim(0);
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t n = x.dim(0);
  if (dy.ndim() != 4 || dy.dim(0) != n || dy.dim(1) != cout ||
      dy.dim(2) != oh || dy.dim(3) != ow) {
    throw std::invalid_argument("conv2d_backward_batched: dy shape mismatch");
  }
  if (!dw.same_shape(w)) {
    throw std::invalid_argument("conv2d_backward_batched: dw shape mismatch");
  }
  if (!db.empty() && db.size() != cout) {
    throw std::invalid_argument("conv2d_backward_batched: db size mismatch");
  }
  const std::int64_t plane = oh * ow;
  const std::int64_t in_stride = g.in_channels * g.height * g.width;
  const std::int64_t out_stride = cout * plane;
  if (!dx.same_shape(x)) {
    dx = Tensor(x.shape());
  } else {
    dx.fill(0.0f);
  }

  const std::int64_t group = conv2d_batch_group(g, n);
  auto& pool = util::ThreadPool::global();
  for (std::int64_t g0 = 0; g0 < n; g0 += group) {
    const std::int64_t gn = std::min(group, n - g0);
    const std::int64_t wide = gn * plane;
    ws.col.resize(static_cast<std::size_t>(g.col_rows() * wide));
    ws.dy.resize(static_cast<std::size_t>(cout * wide));
    ws.dcol.resize(static_cast<std::size_t>(g.col_rows() * wide));
    // Gather dY from NCHW into the channel-major layout the wide GEMMs need.
    pool.parallel_for(gn * cout, 4, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t t = begin; t < end; ++t) {
        const std::int64_t s = t / cout, c = t % cout;
        std::memcpy(ws.dy.data() + c * wide + s * plane,
                    dy.data() + (g0 + s) * out_stride + c * plane,
                    static_cast<std::size_t>(plane) * sizeof(float));
      }
    });
    // db[c] += sum over the channel's row. Channels are independent and each
    // row is summed left-to-right by one thread: deterministic at any worker
    // count.
    if (!db.empty()) {
      pool.parallel_for(cout, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t c = begin; c < end; ++c) {
          const float* row = ws.dy.data() + c * wide;
          float acc = 0.0f;
          for (std::int64_t i = 0; i < wide; ++i) acc += row[i];
          db[c] += acc;
        }
      });
    }
    // dW += dY [Cout x wide] * col^T: the k-reduction over all gn*plane
    // columns stays on a single thread per dW element inside the GEMM.
    im2col_batched(x.data() + g0 * in_stride, gn, g, ws.col.data());
    gemm_bt_acc(ws.dy.data(), ws.col.data(), dw.data(), cout, wide,
                g.col_rows());
    // dcol [Cin*k*k x wide] = W^T * dY, scattered back per sample.
    gemm_at(w.data(), ws.dy.data(), ws.dcol.data(), g.col_rows(), cout, wide);
    col2im_batched(ws.dcol.data(), gn, g, dx.data() + g0 * in_stride);
  }
}

}  // namespace parpde::nn
