#include "nn/conv_ops.hpp"

#include <stdexcept>

#include "tensor/gemm.hpp"

namespace parpde::nn {

namespace {

ConvGeometry geometry_of(const Tensor& x, const Tensor& w, std::int64_t pad,
                         const char* what) {
  if (x.ndim() != 3 || w.ndim() != 4 || w.dim(1) != x.dim(0)) {
    throw std::invalid_argument(std::string(what) +
                                ": expected x [Cin,H,W], w [Cout,Cin,k,k]");
  }
  if (w.dim(2) != w.dim(3)) {
    throw std::invalid_argument(std::string(what) + ": kernel must be square");
  }
  return ConvGeometry{x.dim(0), x.dim(1), x.dim(2), w.dim(2), pad};
}

}  // namespace

void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::int64_t pad, Tensor& y, std::vector<float>& col) {
  const ConvGeometry g = geometry_of(x, w, pad, "conv2d_forward");
  const std::int64_t cout = w.dim(0);
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_forward: input smaller than kernel");
  }
  if (y.ndim() != 3 || y.dim(0) != cout || y.dim(1) != oh || y.dim(2) != ow) {
    y = Tensor({cout, oh, ow});
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(x.data(), g, col.data());
  gemm(w.data(), col.data(), y.data(), cout, g.col_rows(), g.col_cols());
  if (!b.empty()) {
    if (b.size() != cout) {
      throw std::invalid_argument("conv2d_forward: bias size mismatch");
    }
    for (std::int64_t c = 0; c < cout; ++c) {
      float* plane = y.data() + c * oh * ow;
      const float bias = b[c];
      for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += bias;
    }
  }
}

void conv2d_backward_data(const Tensor& dy, const Tensor& w, std::int64_t pad,
                          Tensor& dx, std::vector<float>& col) {
  if (dy.ndim() != 3 || w.ndim() != 4 || dy.dim(0) != w.dim(0)) {
    throw std::invalid_argument(
        "conv2d_backward_data: expected dy [Cout,OH,OW], w [Cout,Cin,k,k]");
  }
  if (dx.ndim() != 3 || dx.dim(0) != w.dim(1)) {
    throw std::invalid_argument("conv2d_backward_data: dx must be [Cin,H,W]");
  }
  const ConvGeometry g{w.dim(1), dx.dim(1), dx.dim(2), w.dim(2), pad};
  if (g.out_height() != dy.dim(1) || g.out_width() != dy.dim(2)) {
    throw std::invalid_argument("conv2d_backward_data: shape mismatch");
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  gemm_at(w.data(), dy.data(), col.data(), g.col_rows(), w.dim(0), g.col_cols());
  dx.fill(0.0f);
  col2im(col.data(), g, dx.data());
}

void conv2d_backward_weights(const Tensor& x, const Tensor& dy, std::int64_t pad,
                             Tensor& dw, Tensor& db, std::vector<float>& col) {
  const ConvGeometry g = geometry_of(x, dw, pad, "conv2d_backward_weights");
  const std::int64_t cout = dw.dim(0);
  if (dy.dim(0) != cout || dy.dim(1) != g.out_height() ||
      dy.dim(2) != g.out_width()) {
    throw std::invalid_argument("conv2d_backward_weights: dy shape mismatch");
  }
  col.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(x.data(), g, col.data());
  gemm_bt_acc(dy.data(), col.data(), dw.data(), cout, g.col_cols(),
              g.col_rows());
  if (!db.empty()) {
    const std::int64_t plane = g.out_height() * g.out_width();
    for (std::int64_t c = 0; c < cout; ++c) {
      const float* p = dy.data() + c * plane;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) acc += p[i];
      db[c] += acc;
    }
  }
}

}  // namespace parpde::nn
