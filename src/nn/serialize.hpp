#pragma once

// Model checkpointing: saves/restores the parameter tensors of a module in
// declaration order. The architecture itself is rebuilt by the caller (the
// checkpoint stores values, not structure), matching the common
// "state_dict"-style workflow.

#include <istream>
#include <ostream>
#include <string>

#include "nn/module.hpp"

namespace parpde::nn {

void save_parameters(std::ostream& out, Module& module);
void load_parameters(std::istream& in, Module& module);

void save_checkpoint(const std::string& path, Module& module);
void load_checkpoint(const std::string& path, Module& module);

}  // namespace parpde::nn
