#pragma once

// Model checkpointing: saves/restores the parameter tensors of a module in
// declaration order. The architecture itself is rebuilt by the caller (the
// checkpoint stores values, not structure), matching the common
// "state_dict"-style workflow.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace parpde::nn {

void save_parameters(std::ostream& out, Module& module);
void load_parameters(std::istream& in, Module& module);

// With a non-empty `calibration` (one activation max-abs range per conv
// layer, the quantity ForwardPlan::calibration() records and the int8
// backend turns into fixed input scales) the file gains a v3 trailer after
// the weight tensors, so a quantized rollout can start without re-running
// the fp32 calibration pass. An empty vector writes the plain v2 format —
// older readers keep working on checkpoints that carry no quantization
// state. On load, `calibration` (if non-null) receives the stored ranges,
// or is cleared when the file predates v3 / carries none.
void save_parameters(std::ostream& out, Module& module,
                     const std::vector<float>& calibration);
void load_parameters(std::istream& in, Module& module,
                     std::vector<float>* calibration);

void save_checkpoint(const std::string& path, Module& module);
void load_checkpoint(const std::string& path, Module& module);
void save_checkpoint(const std::string& path, Module& module,
                     const std::vector<float>& calibration);
void load_checkpoint(const std::string& path, Module& module,
                     std::vector<float>* calibration);

}  // namespace parpde::nn
