#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::nn {

void Optimizer::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("set_learning_rate: lr <= 0");
  lr_ = lr;
}

namespace {

// Moment slots are lazily shaped (first step() allocates them); a snapshot
// taken before that materializes them as the zeros they conceptually are, so
// shape validation on import stays uniform.
Tensor materialized_slot(const Tensor& slot, const Tensor& param) {
  if (slot.size() == param.size()) return slot;
  return Tensor(param.shape());
}

void check_slot_count(const OptimizerState& state, std::size_t expected,
                      const char* who) {
  if (state.slots.size() != expected) {
    throw std::runtime_error(std::string(who) +
                             "::import_state: slot count mismatch (got " +
                             std::to_string(state.slots.size()) + ", expected " +
                             std::to_string(expected) + ")");
  }
}

void check_slot_shape(const Tensor& slot, const Tensor& param,
                      const char* who) {
  if (!slot.same_shape(param)) {
    throw std::runtime_error(std::string(who) +
                             "::import_state: slot shape mismatch");
  }
}

}  // namespace

OptimizerState Optimizer::export_state() const {
  OptimizerState state;
  state.name = name();
  state.learning_rate = lr_;
  return state;
}

void Optimizer::import_common(const OptimizerState& state) {
  if (state.name != name()) {
    throw std::runtime_error("Optimizer::import_state: checkpoint holds '" +
                             state.name + "' state, live optimizer is '" +
                             name() + "'");
  }
  set_learning_rate(state.learning_rate);
}

void Optimizer::import_state(const OptimizerState& state) {
  import_common(state);
  check_slot_count(state, 0, "Optimizer");
}

double Optimizer::clip_grad_norm(double max_norm) {
  if (max_norm <= 0.0) {
    throw std::invalid_argument("clip_grad_norm: max_norm <= 0");
  }
  double sq = 0.0;
  for (const auto& p : params_) {
    for (std::int64_t i = 0; i < p.grad->size(); ++i) {
      const double g = (*p.grad)[i];
      sq += g * g;
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      for (std::int64_t i = 0; i < p.grad->size(); ++i) (*p.grad)[i] *= scale;
    }
  }
  return norm;
}

StepDecaySchedule::StepDecaySchedule(double factor, int every)
    : factor_(factor), every_(every) {
  if (factor <= 0.0 || factor > 1.0 || every <= 0) {
    throw std::invalid_argument("StepDecaySchedule: bad configuration");
  }
}

void StepDecaySchedule::advance(Optimizer& optimizer) {
  ++epoch_;
  if (epoch_ % every_ == 0) {
    optimizer.set_learning_rate(optimizer.learning_rate() * factor_);
  }
}

SGD::SGD(std::vector<ParamRef> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("SGD: lr must be positive");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SGD: momentum must be in [0, 1)");
  }
  velocity_.resize(params_.size());
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    if (momentum_ == 0.0) {
      for (std::int64_t j = 0; j < w.size(); ++j) {
        w[j] -= static_cast<float>(lr_) * g[j];
      }
      continue;
    }
    Tensor& vel = velocity_[i];
    if (vel.size() != w.size()) vel = Tensor(w.shape());
    const auto mom = static_cast<float>(momentum_);
    const auto lr = static_cast<float>(lr_);
    for (std::int64_t j = 0; j < w.size(); ++j) {
      vel[j] = mom * vel[j] + g[j];
      w[j] -= lr * vel[j];
    }
  }
}

std::string SGD::name() const {
  return momentum_ == 0.0 ? "sgd" : "sgd+momentum";
}

OptimizerState SGD::export_state() const {
  OptimizerState state = Optimizer::export_state();
  if (momentum_ == 0.0) return state;  // stateless update rule
  state.slots.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    state.slots.push_back(materialized_slot(velocity_[i], *params_[i].value));
  }
  return state;
}

void SGD::import_state(const OptimizerState& state) {
  import_common(state);
  check_slot_count(state, momentum_ == 0.0 ? 0 : params_.size(), "SGD");
  for (std::size_t i = 0; i < state.slots.size(); ++i) {
    check_slot_shape(state.slots[i], *params_[i].value, "SGD");
    velocity_[i] = state.slots[i];
  }
}

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  // Bias corrections 1/(1 - rho^t) of Eq. (5).
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    if (m.size() != w.size()) m = Tensor(w.shape());
    if (v.size() != w.size()) v = Tensor(w.shape());
    for (std::int64_t j = 0; j < w.size(); ++j) {
      const double gj = g[j];
      const double mj = beta1_ * m[j] + (1.0 - beta1_) * gj;        // Eq. (3)
      const double vj = beta2_ * v[j] + (1.0 - beta2_) * gj * gj;   // Eq. (4)
      m[j] = static_cast<float>(mj);
      v[j] = static_cast<float>(vj);
      const double mhat = mj / bc1;                                 // Eq. (5)
      const double vhat = vj / bc2;
      w[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));  // Eq. (6)
    }
  }
}

OptimizerState Adam::export_state() const {
  OptimizerState state = Optimizer::export_state();
  state.step_count = t_;
  state.slots.reserve(2 * params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    state.slots.push_back(materialized_slot(m_[i], *params_[i].value));
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    state.slots.push_back(materialized_slot(v_[i], *params_[i].value));
  }
  return state;
}

void Adam::import_state(const OptimizerState& state) {
  import_common(state);
  check_slot_count(state, 2 * params_.size(), "Adam");
  if (state.step_count < 0) {
    throw std::runtime_error("Adam::import_state: negative step count");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    check_slot_shape(state.slots[i], *params_[i].value, "Adam");
    check_slot_shape(state.slots[params_.size() + i], *params_[i].value, "Adam");
  }
  t_ = state.step_count;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i] = state.slots[i];
    v_[i] = state.slots[params_.size() + i];
  }
}

OptimizerPtr make_optimizer(const std::string& name, std::vector<ParamRef> params,
                            double lr) {
  if (name == "adam") return std::make_unique<Adam>(std::move(params), lr);
  if (name == "sgd") return std::make_unique<SGD>(std::move(params), lr);
  if (name == "momentum") {
    return std::make_unique<SGD>(std::move(params), lr, 0.9);
  }
  throw std::invalid_argument("make_optimizer: unknown optimizer '" + name + "'");
}

}  // namespace parpde::nn
