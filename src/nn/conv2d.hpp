#pragma once

// 2-d convolution layer (stride 1, square kernel, optional symmetric zero
// padding), lowered to GEMM via im2col. This is the layer type of Table I in
// the paper; with pad = (k-1)/2 ("same" padding) the spatial size is
// preserved, with pad = 0 ("valid") the output shrinks by k-1.

#include "nn/conv_ops.hpp"
#include "nn/module.hpp"
#include "tensor/im2col.hpp"
#include "util/random.hpp"

namespace parpde::nn {

class Conv2d final : public Module {
 public:
  // pad < 0 selects "same" padding ((kernel-1)/2) for odd kernels.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t pad = -1);

  // Glorot-uniform weight init, zero bias.
  void init(util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::int64_t kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t pad() const { return pad_; }

  // Direct access for tests and checkpointing.
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t pad_;

  Tensor weight_;       // [Cout, Cin, k, k]
  Tensor bias_;         // [Cout]
  Tensor weight_grad_;  // same shape as weight_
  Tensor bias_grad_;    // same shape as bias_

  Tensor input_;         // cached forward input [N, Cin, H, W]
  Conv2dWorkspace ws_;   // persistent batched im2col / GEMM scratch
};

}  // namespace parpde::nn
