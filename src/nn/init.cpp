#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::nn {

void glorot_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    util::Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("glorot_uniform: bad fan sizes");
  }
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(w.values(), -a, a);
}

void he_uniform(Tensor& w, std::int64_t fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_uniform: bad fan_in");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  rng.fill_uniform(w.values(), -a, a);
}

}  // namespace parpde::nn
