#include "nn/forward_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "tensor/im2col.hpp"

namespace parpde::nn {

namespace {

// Walks the fused step list once and returns the largest activation buffer
// (in floats) any step writes for an input of [in_channels, h, w].
std::int64_t peak_plane_floats(const std::vector<backend::ConvLayerDesc>& descs,
                               std::int64_t in_channels, std::int64_t h,
                               std::int64_t w, bool activation_first) {
  std::int64_t peak = activation_first ? in_channels * h * w : 0;
  for (const backend::ConvLayerDesc& l : descs) {
    const ConvGeometry g{l.in_channels, h, w, l.kernel, l.pad};
    h = g.out_height();
    w = g.out_width();
    peak = std::max(peak, l.out_channels * h * w);
  }
  return peak;
}

float max_abs(const float* x, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

}  // namespace

ForwardPlan::ForwardPlan(Sequential& model, std::int64_t in_channels,
                         std::int64_t max_h, std::int64_t max_w,
                         const backend::KernelBackend* backend,
                         std::int64_t max_batch)
    : backend_(backend != nullptr ? backend : &backend::blocked_f32()),
      in_channels_(in_channels),
      max_h_(max_h),
      max_w_(max_w),
      max_batch_(max_batch > 0 ? max_batch : 1) {
  std::int64_t ch = in_channels;
  std::int64_t h = max_h;
  std::int64_t w = max_w;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Module& layer = model.layer(i);
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      if (conv->in_channels() != ch) {
        supported_ = false;
        return;
      }
      backend::ConvLayerDesc desc;
      desc.weight = conv->weight().data();
      desc.bias = conv->bias().empty() ? nullptr : conv->bias().data();
      desc.in_channels = conv->in_channels();
      desc.out_channels = conv->out_channels();
      desc.kernel = conv->kernel();
      desc.pad = conv->pad();
      const ConvGeometry g{ch, h, w, desc.kernel, desc.pad};
      if (g.out_height() <= 0 || g.out_width() <= 0) {
        supported_ = false;
        return;
      }
      ch = desc.out_channels;
      h = g.out_height();
      w = g.out_width();
      Step step;
      step.op = Op::kConv;
      step.conv = static_cast<int>(descs_.size());
      descs_.push_back(desc);
      steps_.push_back(step);
      continue;
    }
    // Pointwise layer: fuse into the preceding conv's epilogue when there is
    // one (the Table-I net is conv/act pairs throughout); otherwise keep it
    // as a standalone step.
    backend::Fused fused = backend::Fused::kNone;
    float slope = 0.0f;
    if (auto* leaky = dynamic_cast<LeakyReLU*>(&layer)) {
      fused = backend::Fused::kLeakyReLU;
      slope = leaky->negative_slope();
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      fused = backend::Fused::kReLU;
    } else if (dynamic_cast<Tanh*>(&layer) != nullptr) {
      fused = backend::Fused::kTanh;
    } else {
      supported_ = false;  // e.g. ConvTranspose2d in deconv mode
      return;
    }
    if (!steps_.empty() && steps_.back().op == Op::kConv &&
        descs_[static_cast<std::size_t>(steps_.back().conv)].fused ==
            backend::Fused::kNone) {
      backend::ConvLayerDesc& prev =
          descs_[static_cast<std::size_t>(steps_.back().conv)];
      prev.fused = fused;
      prev.slope = slope;
      continue;
    }
    Step step;
    switch (fused) {
      case backend::Fused::kLeakyReLU:
        step.op = Op::kLeakyReLU;
        step.slope = slope;
        break;
      case backend::Fused::kReLU:
        step.op = Op::kReLU;
        break;
      case backend::Fused::kTanh:
        step.op = Op::kTanh;
        break;
      case backend::Fused::kNone:
        break;  // unreachable
    }
    steps_.push_back(step);
  }
  out_channels_ = ch;
  shrink_ = max_h - h;
  if (shrink_ != max_w - w) {
    supported_ = false;  // non-square shrink; no caller needs it
    return;
  }
  const bool activation_first = !steps_.empty() && steps_.front().op != Op::kConv;
  const std::int64_t peak_plane =
      peak_plane_floats(descs_, in_channels, max_h, max_w, activation_first);
  ping_.resize(static_cast<std::size_t>(max_batch_ * peak_plane));
  pong_.resize(static_cast<std::size_t>(max_batch_ * peak_plane));
  if (max_batch_ > 1) {
    stack_.resize(static_cast<std::size_t>(
        max_batch_ * out_channels_ * (max_h - shrink_) * (max_w - shrink_)));
  }
  ctx_ = backend_->make_plan_context(descs_, max_h, max_w, max_batch_);
  growth_events_ = 0;
}

float* ForwardPlan::ensure(util::AlignedVector<float>& buf,
                           std::int64_t floats) {
  if (static_cast<std::int64_t>(buf.size()) < floats) {
    buf.resize(static_cast<std::size_t>(floats));
    ++growth_events_;
  }
  return buf.data();
}

bool ForwardPlan::needs_calibration() const {
  return supported_ && backend_->needs_calibration(*ctx_);
}

void ForwardPlan::calibrate(const float* x, std::int64_t h, std::int64_t w) {
  if (!supported_) {
    throw std::logic_error("ForwardPlan::calibrate on an unsupported model");
  }
  // One fp32 reference pass through a throwaway context, recording each conv
  // layer's input max-abs. Runs on the reference backend regardless of the
  // plan's own, so calibration is backend-independent and deterministic.
  const backend::KernelBackend& ref = backend::blocked_f32();
  auto ctx = ref.make_plan_context(descs_, h, w);
  const bool activation_first = !steps_.empty() && steps_.front().op != Op::kConv;
  const std::int64_t peak =
      peak_plane_floats(descs_, in_channels_, h, w, activation_first);
  util::AlignedVector<float> ping(static_cast<std::size_t>(peak));
  util::AlignedVector<float> pong(static_cast<std::size_t>(peak));
  std::vector<float> ranges;
  ranges.reserve(descs_.size());

  const float* cur = x;
  float* cur_buf = nullptr;
  std::int64_t ch = in_channels_;
  std::int64_t th = h, tw = w;
  for (const Step& step : steps_) {
    if (step.op == Op::kConv) {
      const backend::ConvLayerDesc& l =
          descs_[static_cast<std::size_t>(step.conv)];
      ranges.push_back(max_abs(cur, ch * th * tw));
      const ConvGeometry g{ch, th, tw, l.kernel, l.pad};
      float* dst = (cur_buf == ping.data() && cur_buf != nullptr)
                       ? pong.data()
                       : ping.data();
      ref.conv_forward(*ctx, step.conv, cur, th, tw, dst);
      cur = dst;
      cur_buf = dst;
      ch = l.out_channels;
      th = g.out_height();
      tw = g.out_width();
      continue;
    }
    const std::int64_t n = ch * th * tw;
    float* dst = cur_buf != nullptr ? cur_buf : ping.data();
    switch (step.op) {
      case Op::kLeakyReLU:
        ref.leaky_relu(cur, dst, n, step.slope);
        break;
      case Op::kReLU:
        ref.relu(cur, dst, n);
        break;
      case Op::kTanh:
        ref.tanh(cur, dst, n);
        break;
      case Op::kConv:
        break;  // unreachable
    }
    cur = dst;
    cur_buf = dst;
  }
  set_calibration(std::move(ranges));
}

void ForwardPlan::set_calibration(std::vector<float> ranges) {
  if (ranges.size() != descs_.size()) {
    throw std::invalid_argument(
        "ForwardPlan::set_calibration: one range per conv layer required");
  }
  ranges_ = std::move(ranges);
  backend_->set_input_ranges(*ctx_, ranges_);
}

ForwardPlan::Output ForwardPlan::run(const float* x, std::int64_t h,
                                     std::int64_t w) {
  if (!supported_) {
    throw std::logic_error("ForwardPlan::run on an unsupported model");
  }
  const float* cur = x;
  float* cur_buf = nullptr;  // non-null iff `cur` is one of our buffers
  std::int64_t ch = in_channels_;

  for (const Step& step : steps_) {
    if (step.op == Op::kConv) {
      const backend::ConvLayerDesc& l =
          descs_[static_cast<std::size_t>(step.conv)];
      const ConvGeometry g{ch, h, w, l.kernel, l.pad};
      const std::int64_t oh = g.out_height();
      const std::int64_t ow = g.out_width();
      if (oh <= 0 || ow <= 0) {
        throw std::invalid_argument("ForwardPlan::run: input below kernel size");
      }
      // Write the other ping-pong buffer than the one `cur` lives in.
      util::AlignedVector<float>& out_vec =
          (cur_buf == ping_.data() && cur_buf != nullptr) ? pong_ : ping_;
      float* dst = ensure(out_vec, l.out_channels * oh * ow);
      backend_->conv_forward(*ctx_, step.conv, cur, h, w, dst);
      cur = dst;
      cur_buf = dst;
      ch = l.out_channels;
      h = oh;
      w = ow;
      continue;
    }
    // Standalone pointwise activation: in place when `cur` is already ours,
    // otherwise into a buffer (only possible for an activation-first model).
    const std::int64_t n = ch * h * w;
    float* dst = cur_buf != nullptr ? cur_buf : ensure(ping_, n);
    switch (step.op) {
      case Op::kLeakyReLU:
        backend_->leaky_relu(cur, dst, n, step.slope);
        break;
      case Op::kReLU:
        backend_->relu(cur, dst, n);
        break;
      case Op::kTanh:
        backend_->tanh(cur, dst, n);
        break;
      case Op::kConv:
        break;  // unreachable
    }
    cur = dst;
    cur_buf = dst;
  }
  return Output{cur, ch, h, w};
}

ForwardPlan::Output ForwardPlan::run_batched(const float* x,
                                             std::int64_t batch,
                                             std::int64_t h, std::int64_t w) {
  if (!supported_) {
    throw std::logic_error("ForwardPlan::run_batched on an unsupported model");
  }
  if (batch <= 0) {
    throw std::invalid_argument("ForwardPlan::run_batched: batch must be > 0");
  }
  // Sample grouping: evaluate the batch in groups small enough that a group's
  // per-layer in/out activation pair stays L2-resident across the whole layer
  // walk. Running the full batch layer-by-layer streams batch-wide activation
  // buffers (batch * peak_plane floats, e.g. 4 MB at batch 8 on the 64x64
  // Table-I net) through a ~2 MB L2 at every layer boundary, which costs more
  // in DRAM re-reads than the wide GEMM saves — measured 15-25% slower than
  // solo runs on the int8 backend before grouping. Grouping only changes the
  // evaluation order *across* samples, never within one, so per-sample bits
  // are untouched (the batched-vs-solo identity tests in tests/test_serve.cpp
  // cover exactly this).
  constexpr std::int64_t kGroupBudgetBytes = std::int64_t{2} << 20;
  const bool activation_first =
      !steps_.empty() && steps_.front().op != Op::kConv;
  const std::int64_t peak =
      peak_plane_floats(descs_, in_channels_, h, w, activation_first);
  const std::int64_t per_sample_bytes =
      2 * peak * static_cast<std::int64_t>(sizeof(float));
  const std::int64_t group = std::min(
      batch, std::max<std::int64_t>(1, kGroupBudgetBytes / per_sample_bytes));
  if (group >= batch) {
    return run_group(x, batch, h, w, nullptr);
  }
  const std::int64_t oh = h - shrink_;
  const std::int64_t ow = w - shrink_;
  const std::int64_t out_floats = out_channels_ * oh * ow;
  float* out = ensure(stack_, batch * out_floats);
  Output last{};
  for (std::int64_t s0 = 0; s0 < batch; s0 += group) {
    const std::int64_t gb = std::min(group, batch - s0);
    last = run_group(x + s0 * in_channels_ * h * w, gb, h, w,
                     out + s0 * out_floats);
  }
  return Output{out, last.channels, last.height, last.width};
}

ForwardPlan::Output ForwardPlan::run_group(const float* x, std::int64_t batch,
                                           std::int64_t h, std::int64_t w,
                                           float* final_dst) {
  const float* cur = x;
  float* cur_buf = nullptr;  // non-null iff `cur` is one of our buffers
  std::int64_t ch = in_channels_;

  for (const Step& step : steps_) {
    const bool last = &step == &steps_.back();
    if (step.op == Op::kConv) {
      const backend::ConvLayerDesc& l =
          descs_[static_cast<std::size_t>(step.conv)];
      const ConvGeometry g{ch, h, w, l.kernel, l.pad};
      const std::int64_t oh = g.out_height();
      const std::int64_t ow = g.out_width();
      if (oh <= 0 || ow <= 0) {
        throw std::invalid_argument(
            "ForwardPlan::run_batched: input below kernel size");
      }
      util::AlignedVector<float>& out_vec =
          (cur_buf == ping_.data() && cur_buf != nullptr) ? pong_ : ping_;
      float* dst = (last && final_dst != nullptr)
                       ? final_dst
                       : ensure(out_vec, batch * l.out_channels * oh * ow);
      backend_->conv_forward_batched(*ctx_, step.conv, cur, batch, h, w, dst);
      cur = dst;
      cur_buf = dst;
      ch = l.out_channels;
      h = oh;
      w = ow;
      continue;
    }
    // Standalone pointwise activation over the whole stacked batch: the ops
    // are elementwise, so per-sample results cannot depend on the batch.
    const std::int64_t n = batch * ch * h * w;
    float* dst = (last && final_dst != nullptr)
                     ? final_dst
                     : (cur_buf != nullptr ? cur_buf : ensure(ping_, n));
    switch (step.op) {
      case Op::kLeakyReLU:
        backend_->leaky_relu(cur, dst, n, step.slope);
        break;
      case Op::kReLU:
        backend_->relu(cur, dst, n);
        break;
      case Op::kTanh:
        backend_->tanh(cur, dst, n);
        break;
      case Op::kConv:
        break;  // unreachable
    }
    cur = dst;
    cur_buf = dst;
  }
  return Output{cur, ch, h, w};
}

}  // namespace parpde::nn
