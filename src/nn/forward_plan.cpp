#include "nn/forward_plan.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/thread_pool.hpp"

namespace parpde::nn {

namespace {

// Same grain the activation layers use, so the plan's elementwise passes
// chunk identically (values are order-independent either way).
constexpr std::int64_t kElementwiseGrain = 1 << 14;

}  // namespace

ForwardPlan::ForwardPlan(Sequential& model, std::int64_t in_channels,
                         std::int64_t max_h, std::int64_t max_w)
    : in_channels_(in_channels), max_h_(max_h), max_w_(max_w) {
  std::int64_t ch = in_channels;
  std::int64_t h = max_h;
  std::int64_t w = max_w;
  std::int64_t peak_plane = 0;   // largest activation buffer, floats
  std::int64_t peak_col = 0;     // largest im2col matrix, floats
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Module& layer = model.layer(i);
    Step step;
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      if (conv->in_channels() != ch) {
        supported_ = false;
        return;
      }
      step.op = Op::kConv;
      step.weight = conv->weight().data();
      step.bias = conv->bias().empty() ? nullptr : conv->bias().data();
      step.in_channels = conv->in_channels();
      step.out_channels = conv->out_channels();
      step.kernel = conv->kernel();
      step.pad = conv->pad();
      const ConvGeometry g{ch, h, w, step.kernel, step.pad};
      if (g.out_height() <= 0 || g.out_width() <= 0) {
        supported_ = false;
        return;
      }
      peak_col = std::max(peak_col, g.col_rows() * g.col_cols());
      ch = step.out_channels;
      h = g.out_height();
      w = g.out_width();
      peak_plane = std::max(peak_plane, ch * h * w);
    } else if (auto* leaky = dynamic_cast<LeakyReLU*>(&layer)) {
      step.op = Op::kLeakyReLU;
      step.slope = leaky->negative_slope();
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      step.op = Op::kReLU;
    } else if (dynamic_cast<Tanh*>(&layer) != nullptr) {
      step.op = Op::kTanh;
    } else {
      supported_ = false;  // e.g. ConvTranspose2d in deconv mode
      return;
    }
    steps_.push_back(step);
  }
  out_channels_ = ch;
  shrink_ = max_h - h;
  if (shrink_ != max_w - w) {
    supported_ = false;  // non-square shrink; no caller needs it
    return;
  }
  // An activation as the very first layer writes into a buffer too.
  if (!steps_.empty() && steps_.front().op != Op::kConv) {
    peak_plane = std::max(peak_plane, in_channels * max_h * max_w);
  }
  col_.resize(static_cast<std::size_t>(peak_col));
  ping_.resize(static_cast<std::size_t>(peak_plane));
  pong_.resize(static_cast<std::size_t>(peak_plane));
  growth_events_ = 0;
}

float* ForwardPlan::ensure(std::vector<float>& buf, std::int64_t floats) {
  if (static_cast<std::int64_t>(buf.size()) < floats) {
    buf.resize(static_cast<std::size_t>(floats));
    ++growth_events_;
  }
  return buf.data();
}

ForwardPlan::Output ForwardPlan::run(const float* x, std::int64_t h,
                                     std::int64_t w) {
  if (!supported_) {
    throw std::logic_error("ForwardPlan::run on an unsupported model");
  }
  const float* cur = x;
  float* cur_buf = nullptr;  // non-null iff `cur` is one of our buffers
  std::int64_t ch = in_channels_;
  auto& pool = util::ThreadPool::global();

  for (const Step& step : steps_) {
    if (step.op == Op::kConv) {
      const ConvGeometry g{ch, h, w, step.kernel, step.pad};
      const std::int64_t oh = g.out_height();
      const std::int64_t ow = g.out_width();
      if (oh <= 0 || ow <= 0) {
        throw std::invalid_argument("ForwardPlan::run: input below kernel size");
      }
      const std::int64_t plane = oh * ow;
      float* col = ensure(col_, g.col_rows() * g.col_cols());
      im2col(cur, g, col);
      // Write the other ping-pong buffer than the one `cur` lives in.
      std::vector<float>& out_vec = (cur_buf == ping_.data() && cur_buf != nullptr)
                                        ? pong_
                                        : ping_;
      float* dst = ensure(out_vec, step.out_channels * plane);
      // out [Cout x plane] = W [Cout x Cin*k*k] * col — the same lowering
      // Conv2d::forward uses, so every output element sees the identical
      // k-reduction order.
      gemm(step.weight, col, dst, step.out_channels, g.col_rows(), plane);
      if (step.bias != nullptr) {
        const float* bias = step.bias;
        pool.parallel_for(step.out_channels, 1,
                          [&](std::int64_t begin, std::int64_t end) {
                            for (std::int64_t c = begin; c < end; ++c) {
                              float* row = dst + c * plane;
                              const float b = bias[c];
                              for (std::int64_t i = 0; i < plane; ++i) {
                                row[i] = row[i] + b;
                              }
                            }
                          });
      }
      cur = dst;
      cur_buf = dst;
      ch = step.out_channels;
      h = oh;
      w = ow;
      continue;
    }
    // Pointwise activation: in place when `cur` is already ours, otherwise
    // into a buffer (only possible for an activation-first model).
    const std::int64_t n = ch * h * w;
    float* dst = cur_buf != nullptr ? cur_buf : ensure(ping_, n);
    const float* src = cur;
    switch (step.op) {
      case Op::kLeakyReLU: {
        const float eps = step.slope;
        pool.parallel_for(n, kElementwiseGrain,
                          [&](std::int64_t begin, std::int64_t end) {
                            for (std::int64_t i = begin; i < end; ++i) {
                              const float v = src[i];
                              dst[i] = v >= 0.0f ? v : eps * v;
                            }
                          });
        break;
      }
      case Op::kReLU:
        for (std::int64_t i = 0; i < n; ++i) {
          dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
        }
        break;
      case Op::kTanh:
        for (std::int64_t i = 0; i < n; ++i) dst[i] = std::tanh(src[i]);
        break;
      case Op::kConv:
        break;  // unreachable
    }
    cur = dst;
    cur_buf = dst;
  }
  return Output{cur, ch, h, w};
}

}  // namespace parpde::nn
