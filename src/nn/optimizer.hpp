#pragma once

// First-order optimizers. ADAM implements exactly Eqs. (3)-(6) of the paper
// (first/second moments with bias correction); SGD with optional momentum is
// the ablation baseline. State (moments) is kept per parameter tensor and
// keyed by position in the parameter list, which is stable for a fixed model.

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace parpde::nn {

// Snapshot of an optimizer's mutable state, sufficient to continue training
// bit-identically after a restart (core/train_checkpoint.hpp persists it).
// `slots` holds the per-parameter moment tensors in a fixed order: ADAM
// stores first moments then second moments (2P tensors), SGD+momentum its
// velocities (P), plain SGD none.
struct OptimizerState {
  std::string name;             // must match the live optimizer's name()
  std::int64_t step_count = 0;  // ADAM t (drives the bias corrections)
  double learning_rate = 0.0;
  std::vector<Tensor> slots;
};

class Optimizer {
 public:
  Optimizer(std::vector<ParamRef> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the currently accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (auto& p : params_) p.grad->fill(0.0f);
  }

  // Current learning rate; mutable to support decay schedules.
  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr);

  // Rescales all gradients so their global L2 norm is at most `max_norm`;
  // returns the pre-clip norm. No-op (returns the norm) when already within
  // bounds.
  double clip_grad_norm(double max_norm);

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const std::vector<ParamRef>& params() const { return params_; }

  // Checkpoint/restore of the mutable state (moments, step count, decayed
  // learning rate). import_state validates the optimizer kind and slot shapes
  // and throws on mismatch; after it, training continues exactly as if never
  // interrupted.
  [[nodiscard]] virtual OptimizerState export_state() const;
  virtual void import_state(const OptimizerState& state);

 protected:
  // Shared import preamble: checks the name tag and restores the learning
  // rate; derived classes restore their slots.
  void import_common(const OptimizerState& state);
  std::vector<ParamRef> params_;
  double lr_;
};

// Multiplies the learning rate by `factor` every `every` epochs. A scheduler
// object is advanced once per epoch by the trainer.
class StepDecaySchedule {
 public:
  StepDecaySchedule(double factor, int every);

  // Call once per finished epoch; applies the decay when due.
  void advance(Optimizer& optimizer);

  [[nodiscard]] int epochs_seen() const noexcept { return epoch_; }
  // Restores the epoch counter on resume (the decayed learning rate itself
  // travels in OptimizerState).
  void set_epochs_seen(int epochs) noexcept { epoch_ = epochs; }

 private:
  double factor_;
  int every_;
  int epoch_ = 0;
};

using OptimizerPtr = std::unique_ptr<Optimizer>;

class SGD final : public Optimizer {
 public:
  SGD(std::vector<ParamRef> params, double lr, double momentum = 0.0);
  void step() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;  // one per parameter, lazily shaped
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  [[nodiscard]] std::string name() const override { return "adam"; }
  [[nodiscard]] OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

  [[nodiscard]] std::int64_t step_count() const { return t_; }

 private:
  double beta1_;
  double beta2_;
  double eps_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;  // first moments
  std::vector<Tensor> v_;  // second moments
};

// Factory: "adam" | "sgd" | "momentum" (SGD with 0.9 momentum).
OptimizerPtr make_optimizer(const std::string& name, std::vector<ParamRef> params,
                            double lr);

}  // namespace parpde::nn
