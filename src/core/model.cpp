#include "core/model.hpp"

#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"

namespace parpde::core {

std::int64_t model_shrink(const NetworkConfig& net, BorderMode mode) {
  switch (mode) {
    case BorderMode::kZeroPad:
    case BorderMode::kDeconv:  // the transpose head restores the size
      return 0;
    case BorderMode::kHaloPad:
    case BorderMode::kValidInner:
      return net.receptive_halo();
  }
  return 0;
}

std::unique_ptr<nn::Sequential> build_model(const NetworkConfig& net,
                                            BorderMode mode, util::Rng& rng) {
  if (net.channels.size() < 2) {
    throw std::invalid_argument("build_model: need at least one layer");
  }
  auto model = std::make_unique<nn::Sequential>();
  const int layers = net.layers();

  if (mode == BorderMode::kDeconv) {
    // Approach 4: the first L-1 convs run unpadded (shrinking the field),
    // the head is a transpose conv whose kernel exactly restores the input
    // size. Needs at least two layers so there is a conv stack to undo.
    if (layers < 2) {
      throw std::invalid_argument("build_model: deconv mode needs >= 2 layers");
    }
    const std::int64_t shrink =
        static_cast<std::int64_t>(layers - 1) * (net.kernel - 1) / 2;
    for (int l = 0; l < layers - 1; ++l) {
      auto& conv = model->emplace<nn::Conv2d>(
          net.channels[static_cast<std::size_t>(l)],
          net.channels[static_cast<std::size_t>(l) + 1], net.kernel, 0);
      conv.init(rng);
      model->emplace<nn::LeakyReLU>(net.leaky_slope);
    }
    auto& head = model->emplace<nn::ConvTranspose2d>(
        net.channels[static_cast<std::size_t>(layers) - 1],
        net.channels.back(), 2 * shrink + 1);
    head.init(rng);
    if (net.final_activation) model->emplace<nn::LeakyReLU>(net.leaky_slope);
    return model;
  }

  const std::int64_t pad = mode == BorderMode::kZeroPad ? -1 /*same*/ : 0;
  for (int l = 0; l < layers; ++l) {
    auto& conv = model->emplace<nn::Conv2d>(net.channels[static_cast<std::size_t>(l)],
                                            net.channels[static_cast<std::size_t>(l) + 1],
                                            net.kernel, pad);
    conv.init(rng);
    if (l + 1 < layers || net.final_activation) {
      model->emplace<nn::LeakyReLU>(net.leaky_slope);
    }
  }
  return model;
}

std::vector<Tensor> export_parameters(nn::Module& model) {
  std::vector<Tensor> out;
  for (const auto& p : model.parameters()) out.push_back(*p.value);
  return out;
}

void import_parameters(nn::Module& model, const std::vector<Tensor>& values) {
  auto params = model.parameters();
  if (params.size() != values.size()) {
    throw std::invalid_argument("import_parameters: count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i].value->same_shape(values[i])) {
      throw std::invalid_argument("import_parameters: shape mismatch at " +
                                  params[i].name);
    }
    *params[i].value = values[i];
  }
}

}  // namespace parpde::core
