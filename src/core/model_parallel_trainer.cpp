#include "core/model_parallel_trainer.hpp"

#include <cstring>
#include <stdexcept>

#include "data/batcher.hpp"
#include "minimpi/collectives.hpp"
#include "minimpi/environment.hpp"
#include "nn/conv2d.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace parpde::core {

namespace {

// Start of chunk `c` when splitting `total` into `parts` (balanced).
std::int64_t chunk_start(std::int64_t total, int parts, int c) {
  const std::int64_t base = total / parts;
  const std::int64_t rem = total % parts;
  return static_cast<std::int64_t>(c) * base +
         std::min<std::int64_t>(c, rem);
}

// Copies output-channel rows [c0, c1) of a full conv weight/bias into a
// slice-sized tensor.
Tensor slice_weight(const Tensor& full, std::int64_t c0, std::int64_t c1) {
  const std::int64_t row = full.size() / full.dim(0);
  Tensor out({c1 - c0, full.dim(1), full.dim(2), full.dim(3)});
  std::memcpy(out.data(), full.data() + c0 * row,
              static_cast<std::size_t>((c1 - c0) * row) * sizeof(float));
  return out;
}

Tensor slice_bias(const Tensor& full, std::int64_t c0, std::int64_t c1) {
  Tensor out({c1 - c0});
  std::memcpy(out.data(), full.data() + c0,
              static_cast<std::size_t>(c1 - c0) * sizeof(float));
  return out;
}

}  // namespace

ModelParallelTrainer::ModelParallelTrainer(TrainConfig config, int ranks)
    : config_(std::move(config)), ranks_(ranks) {
  if (ranks <= 0) throw std::invalid_argument("ModelParallelTrainer: bad ranks");
  if (config_.border != BorderMode::kZeroPad) {
    throw std::invalid_argument(
        "ModelParallelTrainer: only zero-pad border mode is supported");
  }
  for (std::size_t l = 1; l < config_.network.channels.size(); ++l) {
    if (config_.network.channels[l] < ranks) {
      throw std::invalid_argument(
          "ModelParallelTrainer: more ranks than output channels in layer " +
          std::to_string(l));
    }
  }
}

ModelParallelReport ModelParallelTrainer::train(
    const data::FrameDataset& dataset) const {
  const auto split = dataset.chronological_split(config_.train_fraction);
  const domain::Partition partition(dataset.height(), dataset.width(), 1, 1);
  const auto task = make_subdomain_task(dataset.frames(), split.train,
                                        partition.block(0, 0), config_);
  const auto& net = config_.network;
  const int layers = net.layers();

  ModelParallelReport report;
  report.ranks = ranks_;
  // Assembled full parameters, filled by rank 0 at the end (w, b per layer).
  report.parameters.resize(static_cast<std::size_t>(2 * layers));

  util::WallTimer wall;
  mpi::Environment env(ranks_);
  env.run([&](mpi::Communicator& comm) {
    const int rank = comm.rank();
    mpi::PhaseScope phase(comm, "mp.train");
    comm.reset_counters();
    util::AccumulatingTimer comm_timer;

    // Shared-seed monolithic init, sliced per rank: the distributed network
    // is parameter-identical to build_model(..., seed_stream 0).
    util::Rng rng = util::Rng(config_.seed).fork(0);
    auto reference = build_model(net, BorderMode::kZeroPad, rng);
    const auto ref_params = export_parameters(*reference);

    std::vector<std::unique_ptr<nn::Conv2d>> slices;
    std::vector<std::int64_t> c0(static_cast<std::size_t>(layers));
    std::vector<std::int64_t> c1(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
      const std::int64_t cout = net.channels[static_cast<std::size_t>(l) + 1];
      c0[static_cast<std::size_t>(l)] = chunk_start(cout, ranks_, rank);
      c1[static_cast<std::size_t>(l)] = chunk_start(cout, ranks_, rank + 1);
      auto conv = std::make_unique<nn::Conv2d>(
          net.channels[static_cast<std::size_t>(l)],
          c1[static_cast<std::size_t>(l)] - c0[static_cast<std::size_t>(l)],
          net.kernel, /*pad=*/-1);
      conv->weight() = slice_weight(ref_params[static_cast<std::size_t>(2 * l)],
                                    c0[static_cast<std::size_t>(l)],
                                    c1[static_cast<std::size_t>(l)]);
      conv->bias() = slice_bias(ref_params[static_cast<std::size_t>(2 * l) + 1],
                                c0[static_cast<std::size_t>(l)],
                                c1[static_cast<std::size_t>(l)]);
      slices.push_back(std::move(conv));
    }
    std::vector<nn::ParamRef> my_params;
    for (auto& conv : slices) {
      for (auto& p : conv->parameters()) my_params.push_back(p);
    }
    auto optimizer =
        nn::make_optimizer(config_.optimizer, my_params, config_.learning_rate);
    auto loss_fn = nn::make_loss(config_.loss);

    // Allgathers each rank's [N, cs, H, W] slice into the full [N, C, H, W]
    // activation (rank blocks are contiguous channel ranges).
    auto assemble = [&](const Tensor& mine, std::int64_t full_channels,
                        int layer) {
      comm_timer.start();
      telemetry::Span span("mp.allgather", "comm");
      const auto flat = mpi::allgather<float>(comm, mine.values());
      span.finish();
      comm_timer.stop();
      const std::int64_t n = mine.dim(0), h = mine.dim(2), w = mine.dim(3);
      Tensor full({n, full_channels, h, w});
      std::size_t offset = 0;
      for (int r = 0; r < ranks_; ++r) {
        const std::int64_t rc0 = chunk_start(full_channels, ranks_, r);
        const std::int64_t rc1 = chunk_start(full_channels, ranks_, r + 1);
        for (std::int64_t in = 0; in < n; ++in) {
          float* dst = full.data() + (in * full_channels + rc0) * h * w;
          const std::size_t count =
              static_cast<std::size_t>((rc1 - rc0) * h * w);
          std::memcpy(dst, flat.data() + offset, count * sizeof(float));
          offset += count;
        }
      }
      (void)layer;
      return full;
    };

    const float slope = net.leaky_slope;
    std::vector<Tensor> pre_activation(static_cast<std::size_t>(layers));

    auto forward = [&](const Tensor& x) {
      Tensor h = x;
      for (int l = 0; l < layers; ++l) {
        const Tensor mine = slices[static_cast<std::size_t>(l)]->forward(h);
        Tensor full = assemble(mine, net.channels[static_cast<std::size_t>(l) + 1], l);
        const bool act = l + 1 < layers || net.final_activation;
        if (act) {
          pre_activation[static_cast<std::size_t>(l)] = full;
          for (std::int64_t i = 0; i < full.size(); ++i) {
            if (full[i] < 0.0f) full[i] *= slope;
          }
        } else {
          pre_activation[static_cast<std::size_t>(l)] = Tensor{};
        }
        h = std::move(full);
      }
      return h;
    };

    auto backward = [&](Tensor dy) {
      for (int l = layers - 1; l >= 0; --l) {
        const Tensor& pre = pre_activation[static_cast<std::size_t>(l)];
        if (!pre.empty()) {
          for (std::int64_t i = 0; i < dy.size(); ++i) {
            if (pre[i] < 0.0f) dy[i] *= slope;
          }
        }
        // This rank backpropagates through its slice of the output channels.
        const std::int64_t cout = net.channels[static_cast<std::size_t>(l) + 1];
        const std::int64_t n = dy.dim(0), h = dy.dim(2), w = dy.dim(3);
        const std::int64_t lc0 = c0[static_cast<std::size_t>(l)];
        const std::int64_t lc1 = c1[static_cast<std::size_t>(l)];
        Tensor dy_slice({n, lc1 - lc0, h, w});
        for (std::int64_t in = 0; in < n; ++in) {
          std::memcpy(dy_slice.data() + in * (lc1 - lc0) * h * w,
                      dy.data() + (in * cout + lc0) * h * w,
                      static_cast<std::size_t>((lc1 - lc0) * h * w) *
                          sizeof(float));
        }
        Tensor dx = slices[static_cast<std::size_t>(l)]->backward(dy_slice);
        // Sum the per-slice input-gradient contributions across ranks.
        comm_timer.start();
        telemetry::Span span("mp.allreduce", "comm");
        mpi::allreduce<float>(comm, dx.values(), mpi::ReduceOp::kSum);
        span.finish();
        comm_timer.stop();
        dy = std::move(dx);
      }
    };

    // Identical batch schedule on every rank (model parallelism shares all
    // the data).
    data::Batcher batcher(task.inputs.dim(0), config_.batch_size, config_.seed,
                          config_.shuffle);
    std::vector<EpochStats> epochs;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      telemetry::Span epoch_span(
          telemetry::enabled() ? "mp.epoch " + std::to_string(epoch)
                               : std::string(),
          "epoch");
      util::WallTimer epoch_timer;
      double loss_sum = 0.0;
      std::int64_t batches = 0;
      for (const auto& batch : batcher.next_epoch()) {
        // Materialize the batch.
        const auto ci = task.inputs.dim(1), hi = task.inputs.dim(2),
                   wi = task.inputs.dim(3);
        Tensor in({static_cast<std::int64_t>(batch.size()), ci, hi, wi});
        Tensor target({static_cast<std::int64_t>(batch.size()), ci, hi, wi});
        const std::int64_t stride = ci * hi * wi;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::memcpy(in.data() + static_cast<std::int64_t>(i) * stride,
                      task.inputs.data() + batch[i] * stride,
                      static_cast<std::size_t>(stride) * sizeof(float));
          std::memcpy(target.data() + static_cast<std::int64_t>(i) * stride,
                      task.targets.data() + batch[i] * stride,
                      static_cast<std::size_t>(stride) * sizeof(float));
        }
        optimizer->zero_grad();
        const Tensor prediction = forward(in);
        Tensor grad;
        loss_sum += loss_fn->compute(prediction, target, &grad);
        backward(std::move(grad));
        optimizer->step();
        ++batches;
      }
      EpochStats stats;
      stats.loss = loss_sum / static_cast<double>(batches);
      stats.seconds = epoch_timer.seconds();
      epochs.push_back(stats);
    }

    // Assemble the full parameters on rank 0.
    for (int l = 0; l < layers; ++l) {
      const std::int64_t cout = net.channels[static_cast<std::size_t>(l) + 1];
      const auto w_all = mpi::gather<float>(
          comm, slices[static_cast<std::size_t>(l)]->weight().values(), 0);
      const auto b_all = mpi::gather<float>(
          comm, slices[static_cast<std::size_t>(l)]->bias().values(), 0);
      if (rank == 0) {
        report.parameters[static_cast<std::size_t>(2 * l)] = Tensor::from(
            {cout, net.channels[static_cast<std::size_t>(l)], net.kernel,
             net.kernel},
            std::vector<float>(w_all.begin(), w_all.end()));
        report.parameters[static_cast<std::size_t>(2 * l) + 1] =
            Tensor::from({cout}, std::vector<float>(b_all.begin(), b_all.end()));
      }
    }
    if (rank == 0) {
      report.epochs = std::move(epochs);
      report.comm_seconds = comm_timer.seconds();
    }
    std::vector<std::uint64_t> bytes = {comm.bytes_sent(),
                                        comm.bytes_received()};
    mpi::allreduce<std::uint64_t>(comm, bytes, mpi::ReduceOp::kSum);
    if (rank == 0) {
      report.comm_bytes = bytes[0];
      report.comm_bytes_received = bytes[1];
    }
  });
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace parpde::core
