#pragma once

// The paper's contribution (Sec. III, "Training"): decompose every frame into
// spatial subdomains, assign an independent network + optimizer to each rank,
// and train with zero inter-rank communication.
//
// Two execution modes:
//  - kConcurrent: all ranks run as threads of an Environment (the real SPMD
//    program). Communication counters are asserted to stay at zero during
//    training, which checks the "communication-free" property structurally.
//  - kIsolated: ranks are trained one after another on the single available
//    core, timing each in isolation. Because training is communication-free
//    and per-rank deterministic, this produces bit-identical models, and
//    max_r(T_r) is exactly the parallel wall time P dedicated cores would
//    see — the measurement protocol used for Fig. 4 on this one-core sandbox
//    (DESIGN.md §5).

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "minimpi/cart.hpp"

namespace parpde::core {

enum class ExecutionMode { kConcurrent, kIsolated };

struct RankOutcome {
  int rank = 0;
  domain::BlockRange block;
  std::vector<Tensor> parameters;  // trained values, declaration order
  TrainResult result;
  std::uint64_t train_bytes_sent = 0;      // asserted 0 in concurrent mode
  std::uint64_t train_bytes_received = 0;  // symmetric recv-side accounting
};

// One injected-fault death observed during training: which rank died, where
// (training epoch; step is -1 outside rollouts) and the RankFailure message.
// Surfaced verbatim in the JSONL run report's `rank_failures` array.
struct RankFailureRecord {
  int rank = -1;
  int epoch = -1;
  int step = -1;
  std::string error;
};

struct ParallelTrainReport {
  int ranks = 1;
  mpi::Dims dims;
  ExecutionMode mode = ExecutionMode::kConcurrent;
  std::vector<RankOutcome> rank_outcomes;
  double wall_seconds = 0.0;  // wall time of the whole call (serialized here)
  // Deaths observed during this call (fault injection), in rank order.
  // Transient diagnostics: not serialized into ensemble checkpoints.
  std::vector<RankFailureRecord> failures;
  // Tasks that died mid-training (fault injection) and were retrained alone
  // from their latest valid checkpoint; with tasks_per_rank > 1 a host-rank
  // death retrains every task it carried. Task id == rank id in the classic
  // one-task-per-rank layout. Empty on a healthy run.
  std::vector<int> retrained_ranks;

  // max_r T_r: the modeled parallel training time on dedicated cores.
  [[nodiscard]] double modeled_parallel_seconds() const;
  // sum_r T_r: total compute work.
  [[nodiscard]] double total_work_seconds() const;
  // Mean of the per-rank final training losses.
  [[nodiscard]] double mean_final_loss() const;
};

// Crash-consistency knobs (docs/robustness.md). With a checkpoint directory
// configured, every rank snapshots its full training state (weights + ADAM
// moments + shuffle RNG + epoch) every `checkpoint_every` epochs, written
// atomically with a CRC. `resume` restarts each rank from its latest *valid*
// checkpoint — bit-identically to the uninterrupted run. Independent of the
// options, a rank killed mid-run by fault injection is retrained alone from
// its checkpoint after the surviving ranks finish; because training is
// communication-free (Sec. III), one dead rank costs exactly one subdomain's
// work, never the ensemble.
struct FaultToleranceOptions {
  std::string checkpoint_dir;  // empty = no checkpoint/restart
  int checkpoint_every = 0;    // epochs between snapshots (0 = no snapshots)
  bool resume = false;         // start from the latest valid checkpoints
};

class ParallelTrainer {
 public:
  // `ranks` physical ranks training `ranks * tasks_per_rank` subdomain tasks;
  // the *task* count is factorized into the 2-d grid via dims_create, so the
  // report's `ranks`/`dims`/`rank_outcomes` all describe tasks. With
  // tasks_per_rank == 1 (the default) this is the classic one-subdomain-per-
  // rank layout. Over-decomposition (> 1) exists for the elastic runtime
  // (src/elastic/): a task's seed stream is its task id, so the trained
  // weights are independent of which rank hosted the training — survivors can
  // adopt a dead rank's tasks and resume bit-identically.
  ParallelTrainer(TrainConfig config, int ranks, int tasks_per_rank = 1);

  // Trains all ranks. When `resume_from` is supplied (e.g. a loaded
  // checkpoint of a compatible topology/architecture), every rank starts from
  // its previously trained weights instead of a fresh initialization —
  // optimizer state (ADAM moments) restarts. `fault_tolerance` (may be null)
  // enables mid-training checkpoints, crash resume and dead-rank retraining.
  [[nodiscard]] ParallelTrainReport train(
      const data::FrameDataset& dataset,
      ExecutionMode mode = ExecutionMode::kConcurrent,
      const ParallelTrainReport* resume_from = nullptr,
      const FaultToleranceOptions* fault_tolerance = nullptr) const;

  [[nodiscard]] const TrainConfig& config() const { return config_; }
  [[nodiscard]] mpi::Dims dims() const { return dims_; }
  [[nodiscard]] int tasks_per_rank() const { return tasks_per_rank_; }

 private:
  TrainConfig config_;
  int ranks_;
  int tasks_per_rank_;
  mpi::Dims dims_;
};

}  // namespace parpde::core
