#include "core/trainer.hpp"

#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>

#include "data/batcher.hpp"
#include "domain/halo.hpp"
#include "minimpi/fault.hpp"
#include "tensor/ops.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace parpde::core {

SubdomainTask make_subdomain_task(std::span<const Tensor> frames,
                                  std::span<const std::int64_t> pair_indices,
                                  const domain::BlockRange& block,
                                  const TrainConfig& config) {
  if (frames.size() < 2 || pair_indices.empty()) {
    throw std::invalid_argument("make_subdomain_task: no training pairs");
  }
  const std::int64_t halo = config.network.receptive_halo();
  const std::int64_t input_halo =
      config.border == BorderMode::kHaloPad ? halo : 0;
  const std::int64_t target_crop =
      config.border == BorderMode::kValidInner ? halo : 0;
  if (block.height() <= 2 * target_crop || block.width() <= 2 * target_crop) {
    throw std::invalid_argument(
        "make_subdomain_task: block too small for valid-inner targets");
  }

  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;
  inputs.reserve(pair_indices.size());
  targets.reserve(pair_indices.size());
  for (const auto pair : pair_indices) {
    if (pair < 0 || pair + 1 >= static_cast<std::int64_t>(frames.size())) {
      throw std::invalid_argument("make_subdomain_task: pair index out of range");
    }
    Tensor in = domain::extract_with_halo(frames[static_cast<std::size_t>(pair)],
                                          block, input_halo);
    domain::BlockRange target_block = block;
    target_block.h0 += target_crop;
    target_block.h1 -= target_crop;
    target_block.w0 += target_crop;
    target_block.w1 -= target_crop;
    Tensor out = domain::extract_interior(
        frames[static_cast<std::size_t>(pair) + 1], target_block);
    in.reshape({1, in.dim(0), in.dim(1), in.dim(2)});
    out.reshape({1, out.dim(0), out.dim(1), out.dim(2)});
    inputs.push_back(std::move(in));
    targets.push_back(std::move(out));
  }
  SubdomainTask task;
  task.inputs = ops::stack_samples(inputs);
  task.targets = ops::stack_samples(targets);
  return task;
}

NetworkTrainer::NetworkTrainer(const TrainConfig& config,
                               std::uint64_t seed_stream)
    : config_(config), seed_stream_(seed_stream) {
  util::Rng rng = util::Rng(config.seed).fork(seed_stream);
  model_ = build_model(config.network, config.border, rng);
  if (config.loss == "wmse") {
    loss_ = std::make_unique<nn::WeightedMSELoss>(config.channel_weights);
  } else {
    loss_ = nn::make_loss(config.loss);
  }
  optimizer_ = nn::make_optimizer(config.optimizer, model_->parameters(),
                                  config.learning_rate);
}

void NetworkTrainer::gather_rows(const Tensor& stacked,
                                 std::span<const std::int64_t> indices,
                                 Tensor& out) {
  const auto c = stacked.dim(1), h = stacked.dim(2), w = stacked.dim(3);
  const std::int64_t stride = c * h * w;
  const std::int64_t rows = static_cast<std::int64_t>(indices.size());
  if (out.ndim() != 4 || out.dim(0) != rows || out.dim(1) != c ||
      out.dim(2) != h || out.dim(3) != w) {
    out = Tensor({rows, c, h, w});
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto idx = indices[i];
    if (idx < 0 || idx >= stacked.dim(0)) {
      throw std::invalid_argument("gather_rows: index out of range");
    }
    std::memcpy(out.data() + static_cast<std::int64_t>(i) * stride,
                stacked.data() + idx * stride,
                static_cast<std::size_t>(stride) * sizeof(float));
  }
}

double NetworkTrainer::train_batch(const Tensor& inputs, const Tensor& targets) {
  optimizer_->zero_grad();
  const Tensor prediction = model_->forward(inputs);
  Tensor grad;
  const double loss = loss_->compute(prediction, targets, &grad);
  model_->backward(grad);
  if (config_.clip_grad_norm > 0.0) {
    optimizer_->clip_grad_norm(config_.clip_grad_norm);
  }
  optimizer_->step();
  return loss;
}

TrainResult NetworkTrainer::train(const SubdomainTask& task,
                                  const SubdomainTask* validation,
                                  const TrainerSnapshot* resume,
                                  const CheckpointHook* checkpoint) {
  if (task.inputs.dim(0) != task.targets.dim(0)) {
    throw std::invalid_argument("NetworkTrainer::train: sample count mismatch");
  }
  data::Batcher batcher(task.inputs.dim(0), config_.batch_size,
                        config_.seed ^ (seed_stream_ * 0x9E3779B9ull),
                        config_.shuffle);
  TrainResult result;
  util::WallTimer total;

  double best_monitored = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::vector<Tensor> best_params;
  std::optional<nn::StepDecaySchedule> schedule;
  if (config_.lr_decay_every > 0 && config_.lr_decay_factor < 1.0) {
    schedule.emplace(config_.lr_decay_factor, config_.lr_decay_every);
  }

  int start_epoch = 0;
  if (resume != nullptr) {
    // Restore every piece of mutable training state, so the remaining epochs
    // run the exact arithmetic the uninterrupted run would have.
    import_parameters(*model_, resume->parameters);
    optimizer_->import_state(resume->optimizer);
    batcher.restore_rng(resume->batcher_rng);
    start_epoch = resume->next_epoch;
    result.epochs = resume->epochs;
    result.best_epoch = resume->best_epoch;
    best_monitored = resume->best_monitored;
    epochs_since_best = resume->epochs_since_best;
    best_params = resume->best_params;
    if (schedule) schedule->set_epochs_seen(resume->schedule_epochs);
  }

  auto make_snapshot = [&](int completed_epoch) {
    TrainerSnapshot snap;
    snap.next_epoch = completed_epoch + 1;
    snap.parameters = export_parameters(*model_);
    snap.optimizer = optimizer_->export_state();
    snap.batcher_rng = batcher.rng_state();
    snap.epochs = result.epochs;
    snap.best_monitored = best_monitored;
    snap.epochs_since_best = epochs_since_best;
    snap.best_epoch = result.best_epoch;
    snap.best_params = best_params;
    snap.schedule_epochs = schedule ? schedule->epochs_seen() : 0;
    return snap;
  };

  static telemetry::Counter& epoch_count = telemetry::counter("train.epochs");
  static telemetry::Counter& batch_count = telemetry::counter("train.batches");
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    // Fault injection: a kill:rank=R,epoch=E directive fires here, after the
    // previous epoch's checkpoint landed — the crash point the restart tests
    // exercise.
    mpi::fault::check_kill_epoch(static_cast<int>(seed_stream_), epoch);
    telemetry::Span epoch_span(
        telemetry::enabled() ? "epoch " + std::to_string(epoch) : std::string(),
        "epoch");
    epoch_count.add(1);
    util::WallTimer epoch_timer;
    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (const auto& batch : batcher.next_epoch()) {
      telemetry::Span batch_span("train.batch", "epoch");
      batch_count.add(1);
      gather_rows(task.inputs, batch, batch_inputs_);
      gather_rows(task.targets, batch, batch_targets_);
      loss_sum += train_batch(batch_inputs_, batch_targets_);
      ++batches;
    }
    EpochStats stats;
    stats.loss = loss_sum / static_cast<double>(batches);
    if (validation != nullptr) stats.val_loss = evaluate(*validation);
    stats.seconds = epoch_timer.seconds();
    result.epochs.push_back(stats);
    if (schedule) schedule->advance(*optimizer_);

    if (config_.early_stop_patience > 0) {
      const double monitored =
          validation != nullptr ? stats.val_loss : stats.loss;
      if (monitored < best_monitored - config_.early_stop_min_delta) {
        best_monitored = monitored;
        epochs_since_best = 0;
        result.best_epoch = epoch;
        best_params = export_parameters(*model_);
      } else if (++epochs_since_best >= config_.early_stop_patience) {
        result.stopped_early = true;
        break;
      }
    }

    if (checkpoint != nullptr && checkpoint->every_epochs > 0 &&
        checkpoint->save &&
        ((epoch + 1) % checkpoint->every_epochs == 0 ||
         epoch + 1 == config_.epochs)) {
      checkpoint->save(make_snapshot(epoch));
    }
  }
  if (config_.early_stop_patience > 0 && !best_params.empty()) {
    import_parameters(*model_, best_params);
  }
  result.seconds = total.seconds();
  return result;
}

Tensor NetworkTrainer::predict(const Tensor& input) {
  if (input.ndim() == 3) {
    Tensor batched = input.reshaped({1, input.dim(0), input.dim(1), input.dim(2)});
    Tensor out = model_->forward(batched);
    return out.reshaped({out.dim(1), out.dim(2), out.dim(3)});
  }
  return model_->forward(input);
}

double NetworkTrainer::evaluate(const SubdomainTask& task) {
  const Tensor prediction = model_->forward(task.inputs);
  return loss_->compute(prediction, task.targets, nullptr);
}

SequentialOutcome train_sequential(const data::FrameDataset& dataset,
                                   const TrainConfig& config) {
  const auto split = dataset.chronological_split(config.train_fraction);
  // One block covering the whole grid.
  const domain::Partition partition(dataset.height(), dataset.width(), 1, 1);
  const auto task = make_subdomain_task(dataset.frames(), split.train,
                                        partition.block(0, 0), config);
  // Single trainer, single caller: it may use the full intra-rank budget.
  util::ThreadPool::configure_global(
      util::ThreadPool::resolve_workers(config.num_threads, 1));
  SequentialOutcome outcome;
  outcome.trainer = std::make_unique<NetworkTrainer>(config, /*seed_stream=*/0);
  outcome.result = outcome.trainer->train(task);
  return outcome;
}

}  // namespace parpde::core
