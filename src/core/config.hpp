#pragma once

// Configuration of the paper's training scheme: the Table I network and the
// training hyperparameters of Sec. II, plus the subdomain border strategy of
// Sec. III.

#include <cstdint>
#include <string>
#include <vector>

namespace parpde::core {

// How the conv dimension mismatch at subdomain borders is handled (Sec. III).
enum class BorderMode {
  kZeroPad,     // approach 1: zero padding inside every conv layer
  kHaloPad,     // approach 2: enlarge the input with neighbour data (overlap)
  kValidInner,  // approach 3: compare only the inner (N-k+1)^2 points
  kDeconv,      // approach 4: unpadded convs + transpose-conv head restoring
                // the size ("adding de-convolutional layers or the transpose
                // convolution" — the paper's under-investigation option)
};

[[nodiscard]] std::string border_mode_name(BorderMode mode);
[[nodiscard]] BorderMode border_mode_from_string(const std::string& name);

// Table I: four conv layers, channels 4 -> 6 -> 16 -> 6 -> 4, 5x5 kernels.
struct NetworkConfig {
  std::vector<std::int64_t> channels = {4, 6, 16, 6, 4};
  std::int64_t kernel = 5;
  float leaky_slope = 0.01f;  // Eq. (2), fixed epsilon
  // Apply the activation after the last conv too? The paper's Table I pads
  // every layer and reports leaky ReLU throughout; a linear head is the
  // standard regression choice and is our default (see EXPERIMENTS.md).
  bool final_activation = false;

  [[nodiscard]] int layers() const { return static_cast<int>(channels.size()) - 1; }
  // Receptive-field radius of the stacked convs: layers * (kernel-1)/2.
  [[nodiscard]] std::int64_t receptive_halo() const {
    return static_cast<std::int64_t>(layers()) * (kernel - 1) / 2;
  }
};

struct TrainConfig {
  NetworkConfig network;
  BorderMode border = BorderMode::kHaloPad;
  std::string loss = "mape";       // "mape" | "mse" | "mae" (Sec. II)
  std::string optimizer = "adam";  // "adam" | "sgd" | "momentum"
  double learning_rate = 1e-3;
  int epochs = 20;
  std::int64_t batch_size = 16;
  double train_fraction = 2.0 / 3.0;  // paper: 1000 of 1500 frames
  std::uint64_t seed = 42;
  bool shuffle = true;

  // Intra-rank compute threads for the GEMM / im2col / elementwise kernels
  // (0 = auto: the hardware concurrency divided across concurrent ranks).
  // The trainers cap ranks * threads at the hardware concurrency so the
  // thread-per-rank concurrent mode never oversubscribes; every kernel is
  // bit-deterministic in the thread count, so this is a pure speed knob.
  int num_threads = 0;

  // Per-channel weights for loss == "wmse" (must match the channel count).
  std::vector<double> channel_weights;

  // Learning-rate step decay: lr *= lr_decay_factor every lr_decay_every
  // epochs (0 disables).
  double lr_decay_factor = 1.0;
  int lr_decay_every = 0;

  // Global gradient-norm clipping before each optimizer step (0 disables).
  // Useful with raw-field MAPE, whose sign gradients are large and spiky.
  double clip_grad_norm = 0.0;

  // Early stopping: after `early_stop_patience` consecutive epochs without an
  // improvement of at least `early_stop_min_delta` in the monitored loss
  // (validation loss when a validation task is supplied, else training loss)
  // training stops and the best-epoch weights are restored. 0 disables.
  int early_stop_patience = 0;
  double early_stop_min_delta = 0.0;
};

}  // namespace parpde::core
