#include "core/sequence_trainer.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace parpde::core {

namespace {

// Stacks frames [first, first+count) into a [count, C, H, W] tensor.
Tensor stack_window(std::span<const Tensor> frames, std::int64_t first,
                    std::int64_t count) {
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    const Tensor& f = frames[static_cast<std::size_t>(first + k)];
    samples.push_back(f.reshaped({1, f.dim(0), f.dim(1), f.dim(2)}));
  }
  return ops::stack_samples(samples);
}

}  // namespace

SequenceTrainer::SequenceTrainer(const SequenceConfig& config,
                                 std::int64_t channels)
    : config_(config) {
  if (config.window < 2) {
    throw std::invalid_argument("SequenceTrainer: window must be >= 2");
  }
  model_ = std::make_unique<nn::ConvLSTM>(channels, config.hidden_channels,
                                          channels, config.kernel);
  util::Rng rng(config.seed);
  model_->init(rng);
  loss_ = nn::make_loss(config.loss);
  optimizer_ = nn::make_optimizer(config.optimizer, model_->parameters(),
                                  config.learning_rate);
}

TrainResult SequenceTrainer::train(std::span<const Tensor> frames,
                                   std::int64_t train_frames) {
  if (train_frames < config_.window + 1 ||
      train_frames > static_cast<std::int64_t>(frames.size())) {
    throw std::invalid_argument("SequenceTrainer::train: not enough frames");
  }
  TrainResult result;
  util::WallTimer total;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    telemetry::Span epoch_span(
        telemetry::enabled() ? "seq.epoch " + std::to_string(epoch)
                             : std::string(),
        "epoch");
    util::WallTimer epoch_timer;
    double loss_sum = 0.0;
    std::int64_t windows = 0;
    // Non-overlapping truncated-BPTT windows in chronological order (the
    // hidden state restarts at zero at each window boundary).
    for (std::int64_t s = 0; s + config_.window < train_frames;
         s += config_.window) {
      const Tensor inputs = stack_window(frames, s, config_.window);
      const Tensor targets = stack_window(frames, s + 1, config_.window);
      optimizer_->zero_grad();
      const Tensor prediction = model_->forward(inputs);
      Tensor grad;
      loss_sum += loss_->compute(prediction, targets, &grad);
      model_->backward(grad);
      optimizer_->step();
      ++windows;
    }
    EpochStats stats;
    stats.loss = loss_sum / static_cast<double>(windows);
    stats.seconds = epoch_timer.seconds();
    result.epochs.push_back(stats);
  }
  result.seconds = total.seconds();
  return result;
}

std::vector<Tensor> SequenceTrainer::rollout(std::span<const Tensor> warmup,
                                             int steps) {
  if (warmup.empty()) {
    throw std::invalid_argument("SequenceTrainer::rollout: empty warmup");
  }
  // The cell API processes whole sequences (state resets per forward call),
  // so the rollout re-feeds the growing sequence each step. Quadratic in the
  // horizon, which is fine for the evaluation horizons used here.
  std::vector<Tensor> sequence(warmup.begin(), warmup.end());
  std::vector<Tensor> predictions;
  predictions.reserve(static_cast<std::size_t>(steps));
  for (int k = 0; k < steps; ++k) {
    const Tensor stacked = stack_window(
        sequence, 0, static_cast<std::int64_t>(sequence.size()));
    const Tensor out = model_->forward(stacked);
    const Tensor last = ops::select_sample(out, out.dim(0) - 1);
    Tensor frame = last.reshaped({last.dim(1), last.dim(2), last.dim(3)});
    predictions.push_back(frame);
    sequence.push_back(std::move(frame));
  }
  return predictions;
}

}  // namespace parpde::core
