#pragma once

// Training harness for the ConvLSTM extension (the paper's future-work
// direction): feeds the frames as time series in truncated-BPTT windows and
// rolls the model out autoregressively while keeping temporal context — the
// mechanism the paper expects to tame the rollout error accumulation of the
// pure-CNN model (Sec. IV-B).

#include <span>

#include "core/trainer.hpp"
#include "nn/conv_lstm.hpp"

namespace parpde::core {

struct SequenceConfig {
  std::int64_t hidden_channels = 12;
  std::int64_t kernel = 5;
  std::string loss = "mse";
  std::string optimizer = "adam";
  double learning_rate = 1e-2;
  int epochs = 20;
  std::int64_t window = 8;  // truncated-BPTT window length (in transitions)
  std::uint64_t seed = 42;
};

class SequenceTrainer {
 public:
  SequenceTrainer(const SequenceConfig& config, std::int64_t channels);

  // Trains on sliding windows over the first `train_frames` frames: inputs
  // are frames [s, s+window), targets the frames shifted by one step.
  TrainResult train(std::span<const Tensor> frames, std::int64_t train_frames);

  // Autoregressive rollout: consumes the warmup frames to build temporal
  // context, then feeds its own predictions back for `steps` steps. Returns
  // the predicted frames ([C, H, W] each).
  std::vector<Tensor> rollout(std::span<const Tensor> warmup, int steps);

  nn::ConvLSTM& model() { return *model_; }
  [[nodiscard]] const SequenceConfig& config() const { return config_; }

 private:
  SequenceConfig config_;
  std::unique_ptr<nn::ConvLSTM> model_;
  nn::LossPtr loss_;
  nn::OptimizerPtr optimizer_;
};

}  // namespace parpde::core
