#pragma once

// Single-network training engine (used by every trainer variant) and the
// sequential baseline of Fig. 4 — one network over the whole domain.

#include <functional>
#include <limits>
#include <span>

#include "core/config.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "domain/partition.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace parpde::core {

// Per-rank training set: stacked inputs and targets for one subdomain
// (Sec. III, training steps 1-2). For the full domain, use the partition's
// single block.
struct SubdomainTask {
  Tensor inputs;   // [T, C, ih, iw]
  Tensor targets;  // [T, C, th, tw]
};

// Cuts training pairs out of global frames for one block. The input window is
// enlarged by the receptive halo in halo-pad mode; the target is cropped by
// the receptive halo in valid-inner mode.
SubdomainTask make_subdomain_task(std::span<const Tensor> frames,
                                  std::span<const std::int64_t> pair_indices,
                                  const domain::BlockRange& block,
                                  const TrainConfig& config);

struct EpochStats {
  double loss = 0.0;      // mean training loss of the epoch
  double val_loss = 0.0;  // validation loss (0 when no validation task)
  double seconds = 0.0;   // wall time of the epoch
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double seconds = 0.0;  // total training wall time
  bool stopped_early = false;
  int best_epoch = -1;  // epoch whose weights were kept (early stopping only)
  [[nodiscard]] double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().loss;
  }
};

// Everything a NetworkTrainer needs to continue a run bit-identically after
// a crash: weights, optimizer moments, the batch-shuffle RNG, epoch history
// and the early-stopping bookkeeping. Persisted atomically with a CRC by
// core/train_checkpoint.hpp; a resumed run produces byte-identical weights
// to the uninterrupted one (the chaos tests assert this).
struct TrainerSnapshot {
  int next_epoch = 0;  // first epoch still to run
  std::vector<Tensor> parameters;
  nn::OptimizerState optimizer;
  std::string batcher_rng;  // mt19937_64 textual stream state
  std::vector<EpochStats> epochs;
  // Early-stopping state (mirrors the loop locals in train()).
  double best_monitored = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  int best_epoch = -1;
  std::vector<Tensor> best_params;
  int schedule_epochs = 0;  // StepDecaySchedule::epochs_seen
};

// Periodic checkpoint callback: after every `every_epochs` finished epochs
// (and after the final one) `save` receives a snapshot of the live state.
struct CheckpointHook {
  int every_epochs = 0;  // 0 disables
  std::function<void(const TrainerSnapshot&)> save;
};

// Owns one model + optimizer + loss; trains on a SubdomainTask with
// mini-batch gradient descent (Sec. II configuration).
class NetworkTrainer {
 public:
  // `seed_stream` decorrelates weight init / shuffling across ranks. It also
  // identifies this trainer to the fault injector's epoch-kill directive
  // (== rank in the parallel trainer, 0 for the sequential baseline).
  NetworkTrainer(const TrainConfig& config, std::uint64_t seed_stream);

  // Trains on `task`. When `validation` is supplied its loss is evaluated
  // after every epoch and drives early stopping (if enabled in the config).
  // `resume` continues a checkpointed run from its next epoch with identical
  // arithmetic; `checkpoint` installs the periodic snapshot callback.
  TrainResult train(const SubdomainTask& task,
                    const SubdomainTask* validation = nullptr,
                    const TrainerSnapshot* resume = nullptr,
                    const CheckpointHook* checkpoint = nullptr);

  // One optimizer step on a single batch; returns the batch loss. Exposed for
  // the data-parallel baseline, which synchronizes weights between steps.
  double train_batch(const Tensor& inputs, const Tensor& targets);

  // Forward pass without gradient bookkeeping side effects that matter here.
  Tensor predict(const Tensor& input);

  // Mean loss over a task without updating weights.
  double evaluate(const SubdomainTask& task);

  nn::Sequential& model() { return *model_; }
  nn::Optimizer& optimizer() { return *optimizer_; }
  const TrainConfig& config() const { return config_; }

 private:
  // Gathers the rows of a stacked tensor selected by `indices` into the
  // caller-owned `out`, which is only (re)allocated when its shape changes —
  // the per-batch buffers are reused across the whole training run.
  static void gather_rows(const Tensor& stacked,
                          std::span<const std::int64_t> indices, Tensor& out);

  TrainConfig config_;
  std::unique_ptr<nn::Sequential> model_;
  nn::LossPtr loss_;
  nn::OptimizerPtr optimizer_;
  std::uint64_t seed_stream_;
  Tensor batch_inputs_;   // reusable gather_rows destination
  Tensor batch_targets_;  // reusable gather_rows destination
};

// Fig. 4's "sequential version": a single network trained on the undecomposed
// domain. Returns the trainer (for inference) and the timing result.
struct SequentialOutcome {
  std::unique_ptr<NetworkTrainer> trainer;
  TrainResult result;
};
SequentialOutcome train_sequential(const data::FrameDataset& dataset,
                                   const TrainConfig& config);

}  // namespace parpde::core
