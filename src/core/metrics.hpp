#pragma once

// Prediction-quality metrics for the Fig. 3 reproduction: per-channel and
// overall MAPE (stabilized), RMSE, maximum absolute error, and relative L2
// error, plus the rollout error-growth curve discussed in Sec. IV-B.

#include <string>
#include <vector>

#include "euler/state.hpp"
#include "tensor/tensor.hpp"

namespace parpde::core {

struct ErrorMetrics {
  double mape = 0.0;     // percent, denominator floored at eps
  double rmse = 0.0;
  double max_err = 0.0;
  double rel_l2 = 0.0;   // ||pred - target|| / ||target||
};

// Per-channel metrics of a [C, H, W] prediction against its target.
std::vector<ErrorMetrics> channel_metrics(const Tensor& prediction,
                                          const Tensor& target,
                                          double mape_eps = 1e-6);

// Metrics over all channels at once.
ErrorMetrics overall_metrics(const Tensor& prediction, const Tensor& target,
                             double mape_eps = 1e-6);

// Display name of a channel index ("pressure", "density", "vel-x", "vel-y").
std::string channel_name(std::int64_t channel);

// Relative L2 error per rollout step: predictions[k] vs truths[k].
std::vector<double> rollout_error_curve(const std::vector<Tensor>& predictions,
                                        const std::vector<Tensor>& truths);

// Horizontal centerline profile (row H/2) of one channel — the 1-d comparison
// used to eyeball Fig. 3 agreement in text output.
std::vector<float> centerline(const Tensor& frame, std::int64_t channel);

}  // namespace parpde::core
