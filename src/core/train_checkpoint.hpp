#pragma once

// Crash-consistent per-rank training checkpoints (the restart half of the
// fault-tolerance layer; docs/robustness.md).
//
// Each checkpoint is one file `rank<R>_epoch<E>.ckpt` holding a framed
// TrainerSnapshot:
//
//   magic "PPTC" | u32 version | u64 payload_len | u32 crc32(payload) | payload
//
// and is written atomically: serialize to `<name>.tmp`, fsync, rename over
// the final name, fsync the directory. A crash mid-write therefore leaves
// either the previous checkpoint set intact or a `.tmp` that readers ignore;
// a torn or bit-rotted file fails its length/CRC check and is skipped with a
// warning rather than resurrecting garbage weights. A per-rank manifest
// `rank<R>.latest` (also renamed into place) names the newest file; loading
// falls back to a directory scan when the manifest is missing or stale.

#include <optional>
#include <string>

#include "core/trainer.hpp"

namespace parpde::core {

// Serializes `snapshot` for `rank` into `dir` (created if absent) and
// returns the path written. Atomic in the crash sense described above.
std::string save_rank_checkpoint(const std::string& dir, int rank,
                                 const TrainerSnapshot& snapshot);

// Reads and validates one checkpoint file. Returns false — with a diagnostic
// in `*why` — on any framing, length or CRC failure instead of throwing:
// invalid files are an expected outcome of a crash, not a programming error.
bool read_rank_checkpoint(const std::string& path, int* rank,
                          TrainerSnapshot* out, std::string* why = nullptr);

// Newest valid checkpoint for `rank` in `dir`: tries the manifest first,
// then scans `rank<R>_epoch*.ckpt` newest-epoch-first, skipping (and
// warning about) invalid files. nullopt when none survives.
std::optional<TrainerSnapshot> load_latest_checkpoint(const std::string& dir,
                                                      int rank);

}  // namespace parpde::core
