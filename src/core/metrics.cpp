#include "core/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace parpde::core {

namespace {

ErrorMetrics metrics_over(const float* pred, const float* target,
                          std::int64_t count, double eps) {
  ErrorMetrics m;
  double mape_sum = 0.0;
  double sq_sum = 0.0;
  double target_sq_sum = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    const double y = target[i];
    const double d = static_cast<double>(pred[i]) - y;
    mape_sum += std::fabs(d) / std::max(std::fabs(y), eps);
    sq_sum += d * d;
    target_sq_sum += y * y;
    m.max_err = std::max(m.max_err, std::fabs(d));
  }
  m.mape = 100.0 * mape_sum / static_cast<double>(count);
  m.rmse = std::sqrt(sq_sum / static_cast<double>(count));
  m.rel_l2 = target_sq_sum > 0.0 ? std::sqrt(sq_sum / target_sq_sum)
                                 : std::sqrt(sq_sum);
  return m;
}

void check_pair(const Tensor& prediction, const Tensor& target) {
  if (prediction.ndim() != 3 || !prediction.same_shape(target)) {
    throw std::invalid_argument("metrics: need matching [C,H,W] tensors");
  }
}

}  // namespace

std::vector<ErrorMetrics> channel_metrics(const Tensor& prediction,
                                          const Tensor& target,
                                          double mape_eps) {
  check_pair(prediction, target);
  const auto c = prediction.dim(0);
  const auto plane = prediction.dim(1) * prediction.dim(2);
  std::vector<ErrorMetrics> out;
  out.reserve(static_cast<std::size_t>(c));
  for (std::int64_t ic = 0; ic < c; ++ic) {
    out.push_back(metrics_over(prediction.data() + ic * plane,
                               target.data() + ic * plane, plane, mape_eps));
  }
  return out;
}

ErrorMetrics overall_metrics(const Tensor& prediction, const Tensor& target,
                             double mape_eps) {
  check_pair(prediction, target);
  return metrics_over(prediction.data(), target.data(), prediction.size(),
                      mape_eps);
}

std::string channel_name(std::int64_t channel) {
  switch (channel) {
    case euler::kPressure:
      return "pressure";
    case euler::kDensity:
      return "density";
    case euler::kVelX:
      return "vel-x";
    case euler::kVelY:
      return "vel-y";
    default:
      return "ch" + std::to_string(channel);
  }
}

std::vector<double> rollout_error_curve(const std::vector<Tensor>& predictions,
                                        const std::vector<Tensor>& truths) {
  if (predictions.size() > truths.size()) {
    throw std::invalid_argument("rollout_error_curve: not enough truth frames");
  }
  std::vector<double> curve;
  curve.reserve(predictions.size());
  for (std::size_t k = 0; k < predictions.size(); ++k) {
    curve.push_back(overall_metrics(predictions[k], truths[k]).rel_l2);
  }
  return curve;
}

std::vector<float> centerline(const Tensor& frame, std::int64_t channel) {
  if (frame.ndim() != 3 || channel < 0 || channel >= frame.dim(0)) {
    throw std::invalid_argument("centerline: bad frame/channel");
  }
  const auto h = frame.dim(1), w = frame.dim(2);
  const float* row = frame.data() + (channel * h + h / 2) * w;
  return std::vector<float>(row, row + w);
}

}  // namespace parpde::core
