#pragma once

// Model-parallel baseline — the second parallelization family of the paper's
// related work (Sec. I, citing Ben-Nun & Hoefler [3]: "the second approach
// shares all data among processes but distributes the computation among
// processes. Both approaches require data communication for
// synchronization.").
//
// Every rank holds a slice of the OUTPUT channels of every conv layer and all
// ranks see the full training data. Each forward layer computes its channel
// slice and allgathers the full activation map before the next layer; each
// backward layer computes its slice's weight gradients locally and
// allreduce-sums the input-gradient contributions. The result is
// mathematically identical to the monolithic network (tested), at the price
// of per-layer, per-batch collective traffic — the cost the paper's
// communication-free decomposition avoids.

#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace parpde::core {

struct ModelParallelReport {
  int ranks = 1;
  std::vector<EpochStats> epochs;  // rank-0 view (losses are identical anyway)
  std::vector<Tensor> parameters;  // assembled full-network parameters
  double wall_seconds = 0.0;
  double comm_seconds = 0.0;       // rank-0 time inside collectives
  std::uint64_t comm_bytes = 0;    // total bytes sent by all ranks
  std::uint64_t comm_bytes_received = 0;  // total bytes received by all ranks

  [[nodiscard]] double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().loss;
  }
};

class ModelParallelTrainer {
 public:
  // `ranks` must not exceed the smallest layer output-channel count. Only
  // zero-pad border mode is supported (full-domain model, like the
  // data-parallel baseline).
  ModelParallelTrainer(TrainConfig config, int ranks);

  [[nodiscard]] ModelParallelReport train(const data::FrameDataset& dataset) const;

 private:
  TrainConfig config_;
  int ranks_;
};

}  // namespace parpde::core
