#pragma once

// Builds the per-subdomain CNN of Table I as a Sequential module. The conv
// padding is derived from the border mode: zero-pad mode pads every layer
// ("same"), halo-pad and valid-inner modes run the convs unpadded and absorb
// the shrinkage in the input overlap or the target crop.

#include <memory>

#include "core/config.hpp"
#include "nn/sequential.hpp"
#include "util/random.hpp"

namespace parpde::core {

// Shrinkage per side of the full conv stack when run unpadded.
[[nodiscard]] std::int64_t model_shrink(const NetworkConfig& net, BorderMode mode);

// Constructs and initializes the network; `rng` drives the weight init.
std::unique_ptr<nn::Sequential> build_model(const NetworkConfig& net,
                                            BorderMode mode, util::Rng& rng);

// Copies the current parameter values out of / into a model (declaration
// order), used to move trained weights across Environment::run boundaries.
std::vector<Tensor> export_parameters(nn::Module& model);
void import_parameters(nn::Module& model, const std::vector<Tensor>& values);

}  // namespace parpde::core
