#include "core/parallel_trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "minimpi/environment.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace parpde::core {

double ParallelTrainReport::modeled_parallel_seconds() const {
  double m = 0.0;
  for (const auto& r : rank_outcomes) m = std::max(m, r.result.seconds);
  return m;
}

double ParallelTrainReport::total_work_seconds() const {
  double s = 0.0;
  for (const auto& r : rank_outcomes) s += r.result.seconds;
  return s;
}

double ParallelTrainReport::mean_final_loss() const {
  if (rank_outcomes.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : rank_outcomes) s += r.result.final_loss();
  return s / static_cast<double>(rank_outcomes.size());
}

ParallelTrainer::ParallelTrainer(TrainConfig config, int ranks)
    : config_(std::move(config)), ranks_(ranks), dims_(mpi::dims_create(ranks)) {
  if (ranks <= 0) throw std::invalid_argument("ParallelTrainer: ranks must be > 0");
}

ParallelTrainReport ParallelTrainer::train(const data::FrameDataset& dataset,
                                           ExecutionMode mode,
                                           const ParallelTrainReport* resume_from) const {
  const auto split = dataset.chronological_split(config_.train_fraction);
  const domain::Partition partition(dataset.height(), dataset.width(), dims_.px,
                                    dims_.py);
  if (resume_from != nullptr &&
      (resume_from->ranks != ranks_ ||
       static_cast<int>(resume_from->rank_outcomes.size()) != ranks_)) {
    throw std::invalid_argument(
        "ParallelTrainer: resume checkpoint has a different rank count");
  }

  ParallelTrainReport report;
  report.ranks = ranks_;
  report.dims = dims_;
  report.mode = mode;
  report.rank_outcomes.resize(static_cast<std::size_t>(ranks_));

  // Per-rank training body; communication-free by construction (Sec. III:
  // "the training data are directly fed into the network from the memory").
  auto train_rank = [&](int rank) -> RankOutcome {
    telemetry::Span span("train.rank", "train");
    RankOutcome outcome;
    outcome.rank = rank;
    outcome.block = partition.block_of_rank(rank);
    const auto task = make_subdomain_task(dataset.frames(), split.train,
                                          outcome.block, config_);
    NetworkTrainer trainer(config_, static_cast<std::uint64_t>(rank));
    if (resume_from != nullptr) {
      import_parameters(
          trainer.model(),
          resume_from->rank_outcomes[static_cast<std::size_t>(rank)].parameters);
    }
    outcome.result = trainer.train(task);
    outcome.parameters = export_parameters(trainer.model());
    return outcome;
  };

  // Intra-rank threading budget. In concurrent mode the R rank threads share
  // the global pool, so the pool gets R * per_rank - R workers (the rank
  // threads themselves count toward the hardware budget); in isolated mode
  // ranks run one at a time, each with the per-rank share it would own in a
  // real deployment. Kernels are bit-deterministic in the worker count, so
  // the two modes still produce identical models.
  const int concurrent_workers =
      util::ThreadPool::resolve_workers(config_.num_threads, ranks_);
  util::ThreadPool::configure_global(mode == ExecutionMode::kIsolated
                                         ? concurrent_workers / ranks_
                                         : concurrent_workers);

  util::WallTimer wall;
  if (mode == ExecutionMode::kIsolated) {
    for (int r = 0; r < ranks_; ++r) {
      // Attribute this rank's spans to its own trace lane even though the
      // ranks run serially on the calling thread.
      telemetry::set_thread_rank(r);
      report.rank_outcomes[static_cast<std::size_t>(r)] = train_rank(r);
    }
    telemetry::set_thread_rank(-1);
  } else {
    mpi::Environment env(ranks_);
    env.run([&](mpi::Communicator& comm) {
      comm.reset_counters();
      // The paper's zero-comm training invariant, enforced two ways: the
      // validator traps any message the moment it is sent (PhaseScope with
      // kForbidden), and the byte counters are re-checked after the fact.
      mpi::PhaseScope phase(comm, "train.zero_comm",
                            mpi::CommPolicy::kForbidden);
      auto outcome = train_rank(comm.rank());
      outcome.train_bytes_sent = comm.bytes_sent();
      outcome.train_bytes_received = comm.bytes_received();
      if (outcome.train_bytes_sent != 0) {
        throw std::logic_error(
            "ParallelTrainer: training phase sent data (scheme violated)");
      }
      report.rank_outcomes[static_cast<std::size_t>(comm.rank())] =
          std::move(outcome);
    });
  }
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace parpde::core
