#include "core/parallel_trainer.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/train_checkpoint.hpp"
#include "minimpi/environment.hpp"
#include "minimpi/fault.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace parpde::core {

double ParallelTrainReport::modeled_parallel_seconds() const {
  double m = 0.0;
  for (const auto& r : rank_outcomes) m = std::max(m, r.result.seconds);
  return m;
}

double ParallelTrainReport::total_work_seconds() const {
  double s = 0.0;
  for (const auto& r : rank_outcomes) s += r.result.seconds;
  return s;
}

double ParallelTrainReport::mean_final_loss() const {
  if (rank_outcomes.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : rank_outcomes) s += r.result.final_loss();
  return s / static_cast<double>(rank_outcomes.size());
}

ParallelTrainer::ParallelTrainer(TrainConfig config, int ranks,
                                 int tasks_per_rank)
    : config_(std::move(config)),
      ranks_(ranks),
      tasks_per_rank_(tasks_per_rank),
      dims_(mpi::dims_create(ranks * tasks_per_rank)) {
  if (ranks <= 0) throw std::invalid_argument("ParallelTrainer: ranks must be > 0");
  if (tasks_per_rank <= 0) {
    throw std::invalid_argument("ParallelTrainer: tasks_per_rank must be > 0");
  }
}

ParallelTrainReport ParallelTrainer::train(
    const data::FrameDataset& dataset, ExecutionMode mode,
    const ParallelTrainReport* resume_from,
    const FaultToleranceOptions* fault_tolerance) const {
  const auto split = dataset.chronological_split(config_.train_fraction);
  // Everything below is task-indexed: `tasks` subdomains tile the grid, and
  // physical rank r hosts tasks {t : t % ranks_ == r}. The classic layout is
  // the tasks_per_rank == 1 special case where task id == rank id.
  const int tasks = ranks_ * tasks_per_rank_;
  const domain::Partition partition(dataset.height(), dataset.width(), dims_.px,
                                    dims_.py);
  if (resume_from != nullptr &&
      (resume_from->ranks != tasks ||
       static_cast<int>(resume_from->rank_outcomes.size()) != tasks)) {
    throw std::invalid_argument(
        "ParallelTrainer: resume checkpoint has a different rank count");
  }

  ParallelTrainReport report;
  report.ranks = tasks;
  report.dims = dims_;
  report.mode = mode;
  report.rank_outcomes.resize(static_cast<std::size_t>(tasks));

  const bool checkpoints_on = fault_tolerance != nullptr &&
                              !fault_tolerance->checkpoint_dir.empty();

  // Per-rank training body; communication-free by construction (Sec. III:
  // "the training data are directly fed into the network from the memory").
  // `resume_checkpoint` restarts from the rank's latest valid mid-training
  // checkpoint — used for a `--resume` restart and for retraining a rank the
  // fault injector killed.
  auto train_rank = [&](int rank, bool resume_checkpoint) -> RankOutcome {
    telemetry::Span span("train.rank", "train");
    RankOutcome outcome;
    outcome.rank = rank;
    outcome.block = partition.block_of_rank(rank);
    const auto task = make_subdomain_task(dataset.frames(), split.train,
                                          outcome.block, config_);
    NetworkTrainer trainer(config_, static_cast<std::uint64_t>(rank));
    if (resume_from != nullptr) {
      import_parameters(
          trainer.model(),
          resume_from->rank_outcomes[static_cast<std::size_t>(rank)].parameters);
    }
    std::optional<TrainerSnapshot> snapshot;
    CheckpointHook hook;
    const CheckpointHook* hook_ptr = nullptr;
    if (checkpoints_on) {
      if (resume_checkpoint) {
        snapshot =
            load_latest_checkpoint(fault_tolerance->checkpoint_dir, rank);
        if (snapshot) {
          util::log_info() << "rank " << rank << ": resuming from epoch "
                           << snapshot->next_epoch;
        }
      }
      if (fault_tolerance->checkpoint_every > 0) {
        hook.every_epochs = fault_tolerance->checkpoint_every;
        hook.save = [&fault_tolerance, rank](const TrainerSnapshot& snap) {
          save_rank_checkpoint(fault_tolerance->checkpoint_dir, rank, snap);
        };
        hook_ptr = &hook;
      }
    }
    outcome.result = trainer.train(task, nullptr,
                                   snapshot ? &*snapshot : nullptr, hook_ptr);
    outcome.parameters = export_parameters(trainer.model());
    return outcome;
  };

  const bool resume_all = fault_tolerance != nullptr && fault_tolerance->resume;

  // Retrains one dead rank by itself (its checkpoint survives the crash;
  // with no checkpoint it restarts from scratch). The fault injector's kill
  // directive fires at most once per installed plan, so the retrain runs to
  // completion.
  auto retrain_rank = [&](int rank, const std::string& error) {
    static telemetry::Counter& retrained =
        telemetry::counter("train.rank_retrained");
    retrained.add(1);
    util::log_warn() << "rank " << rank << " failed mid-training (" << error
                     << "); retraining it alone from its checkpoint";
    telemetry::set_thread_rank(rank);
    report.rank_outcomes[static_cast<std::size_t>(rank)] =
        train_rank(rank, /*resume_checkpoint=*/true);
    telemetry::set_thread_rank(-1);
    report.retrained_ranks.push_back(rank);
  };

  // Intra-rank threading budget. In concurrent mode the R rank threads share
  // the global pool, so the pool gets R * per_rank - R workers (the rank
  // threads themselves count toward the hardware budget); in isolated mode
  // ranks run one at a time, each with the per-rank share it would own in a
  // real deployment. Kernels are bit-deterministic in the worker count, so
  // the two modes still produce identical models.
  const int concurrent_workers =
      util::ThreadPool::resolve_workers(config_.num_threads, ranks_);
  util::ThreadPool::configure_global(mode == ExecutionMode::kIsolated
                                         ? concurrent_workers / ranks_
                                         : concurrent_workers);

  util::WallTimer wall;
  if (mode == ExecutionMode::kIsolated) {
    for (int t = 0; t < tasks; ++t) {
      // Attribute this task's spans to its own trace lane even though the
      // tasks run serially on the calling thread.
      telemetry::set_thread_rank(t);
      try {
        report.rank_outcomes[static_cast<std::size_t>(t)] =
            train_rank(t, resume_all);
      } catch (const mpi::fault::RankFailure& failure) {
        report.failures.push_back(
            {t, failure.epoch(), failure.step(), failure.what()});
        retrain_rank(t, failure.what());
      }
    }
    telemetry::set_thread_rank(-1);
  } else {
    mpi::Environment env(ranks_);
    auto rank_body = [&](mpi::Communicator& comm) {
      comm.reset_counters();
      // The paper's zero-comm training invariant, enforced two ways: the
      // validator traps any message the moment it is sent (PhaseScope with
      // kForbidden), and the byte counters are re-checked after the fact.
      mpi::PhaseScope phase(comm, "train.zero_comm",
                            mpi::CommPolicy::kForbidden);
      // This rank's share of the task grid, trained back to back — still
      // zero-comm, so over-decomposition never adds traffic.
      for (int t = comm.rank(); t < tasks; t += ranks_) {
        const std::uint64_t sent_before = comm.bytes_sent();
        const std::uint64_t recv_before = comm.bytes_received();
        auto outcome = train_rank(t, resume_all);
        outcome.train_bytes_sent = comm.bytes_sent() - sent_before;
        outcome.train_bytes_received = comm.bytes_received() - recv_before;
        if (outcome.train_bytes_sent != 0) {
          throw std::logic_error(
              "ParallelTrainer: training phase sent data (scheme violated)");
        }
        report.rank_outcomes[static_cast<std::size_t>(t)] = std::move(outcome);
      }
    };
    if (fault_tolerance != nullptr) {
      // Fault-tolerant path: a rank the injector kills is reported rather
      // than rethrown; the survivors finish, then every task the dead rank
      // carried retrains (tasks it completed before dying retrain too — the
      // runs are deterministic, so the repeated work is identical, and the
      // accounting stays simple).
      const mpi::RunOutcome run = env.run_collect(rank_body);
      for (const int r : run.failed_ranks()) {
        const auto& status = run.ranks[static_cast<std::size_t>(r)];
        report.failures.push_back({r, status.epoch, status.step, status.error});
        for (int t = r; t < tasks; t += ranks_) {
          retrain_rank(t, status.error);
        }
      }
    } else {
      env.run(rank_body);
    }
  }
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace parpde::core
