#include "core/inference.hpp"

#include <stdexcept>

#include "domain/exchange.hpp"
#include "domain/halo.hpp"
#include "minimpi/collectives.hpp"
#include "minimpi/environment.hpp"
#include "tensor/ops.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace parpde::core {

RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const domain::HaloOptions& halo_options) {
  if (config.border == BorderMode::kValidInner) {
    throw std::invalid_argument(
        "parallel_rollout: valid-inner mode cannot roll out (output loses the "
        "subdomain rim)");
  }
  if (initial.ndim() != 3) {
    throw std::invalid_argument("parallel_rollout: initial frame must be [C,H,W]");
  }
  if (steps <= 0) throw std::invalid_argument("parallel_rollout: steps must be > 0");

  const int ranks = trained.ranks;
  const domain::Partition partition(initial.dim(1), initial.dim(2),
                                    trained.dims.px, trained.dims.py);
  const std::int64_t halo = config.border == BorderMode::kHaloPad
                                ? config.network.receptive_halo()
                                : 0;

  RolloutResult result;
  result.frames.resize(static_cast<std::size_t>(steps));
  std::vector<double> comm_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> compute_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<std::uint64_t> halo_bytes(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> halo_bytes_recv(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> total_sent(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> total_recv(static_cast<std::size_t>(ranks), 0);
  std::vector<domain::BorderHealth> health(static_cast<std::size_t>(ranks));

  mpi::Environment env(ranks);
  env.run([&](mpi::Communicator& comm) {
    const int rank = comm.rank();
    mpi::PhaseScope phase(comm, "rollout");
    mpi::CartComm cart(comm, trained.dims.px, trained.dims.py);

    // Rebuild this rank's trained network.
    util::Rng rng(config.seed);
    auto model = build_model(config.network, config.border, rng);
    import_parameters(
        *model, trained.rank_outcomes[static_cast<std::size_t>(rank)].parameters);

    Tensor interior = domain::extract_interior(
        initial, partition.block(cart.cx(), cart.cy()));

    util::AccumulatingTimer comm_timer;
    util::AccumulatingTimer compute_timer;
    comm.reset_counters();
    std::uint64_t exchange_bytes = 0;
    std::uint64_t exchange_bytes_recv = 0;

    for (int step = 0; step < steps; ++step) {
      telemetry::Span step_span("rollout.step", "rollout");
      // Sec. III: "extra data points must be received from the neighboring
      // processes" — halo exchange in halo-pad mode; zero-pad mode keeps the
      // borders implicit in the conv padding.
      Tensor input = interior;
      if (halo > 0) {
        const std::uint64_t sent_before = comm.bytes_sent();
        const std::uint64_t recv_before = comm.bytes_received();
        input = domain::exchange_halo(
            cart, partition, interior, halo, &comm_timer, halo_options,
            &health[static_cast<std::size_t>(rank)]);
        exchange_bytes += comm.bytes_sent() - sent_before;
        exchange_bytes_recv += comm.bytes_received() - recv_before;
      }
      compute_timer.start();
      {
        telemetry::Span forward_span("rollout.forward", "rollout");
        // The forward pass is pure compute; the halo already arrived above.
        mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                      mpi::CommPolicy::kForbidden);
        input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
        Tensor out = model->forward(input);
        out.reshape({out.dim(1), out.dim(2), out.dim(3)});
        interior = std::move(out);
      }
      compute_timer.stop();

      // Gather the predicted frame for validation/recording (not part of the
      // scheme's communication cost; a production run would keep fields
      // distributed).
      telemetry::Span gather_span("rollout.gather", "rollout");
      Tensor full = domain::gather_field(cart, partition, interior);
      if (rank == 0) {
        result.frames[static_cast<std::size_t>(step)] = std::move(full);
      }
    }
    comm_seconds[static_cast<std::size_t>(rank)] = comm_timer.seconds();
    compute_seconds[static_cast<std::size_t>(rank)] = compute_timer.seconds();
    halo_bytes[static_cast<std::size_t>(rank)] = exchange_bytes;
    halo_bytes_recv[static_cast<std::size_t>(rank)] = exchange_bytes_recv;
    total_sent[static_cast<std::size_t>(rank)] = comm.bytes_sent();
    total_recv[static_cast<std::size_t>(rank)] = comm.bytes_received();
  });

  for (int r = 0; r < ranks; ++r) {
    const domain::BorderHealth& h = health[static_cast<std::size_t>(r)];
    if (h.any()) {
      result.degraded_borders += h.count();
      result.degraded_detail.push_back("rank " + std::to_string(r) + ": " +
                                       h.describe());
    }
    result.comm_seconds =
        std::max(result.comm_seconds, comm_seconds[static_cast<std::size_t>(r)]);
    result.compute_seconds = std::max(
        result.compute_seconds, compute_seconds[static_cast<std::size_t>(r)]);
    result.halo_bytes += halo_bytes[static_cast<std::size_t>(r)];
    result.halo_bytes_received += halo_bytes_recv[static_cast<std::size_t>(r)];
    result.bytes_sent += total_sent[static_cast<std::size_t>(r)];
    result.bytes_received += total_recv[static_cast<std::size_t>(r)];
  }
  return result;
}

SubdomainEnsemble::SubdomainEnsemble(const TrainConfig& config,
                                     const ParallelTrainReport& trained,
                                     std::int64_t grid_h, std::int64_t grid_w)
    : config_(config),
      partition_(grid_h, grid_w, trained.dims.px, trained.dims.py),
      halo_(config.border == BorderMode::kHaloPad
                ? config.network.receptive_halo()
                : 0) {
  models_.reserve(trained.rank_outcomes.size());
  for (const auto& outcome : trained.rank_outcomes) {
    util::Rng rng(config.seed);
    auto model = build_model(config.network, config.border, rng);
    import_parameters(*model, outcome.parameters);
    models_.push_back(std::move(model));
  }
}

Tensor SubdomainEnsemble::predict(const Tensor& frame) const {
  if (frame.ndim() != 3 || frame.dim(1) != partition_.grid_h() ||
      frame.dim(2) != partition_.grid_w()) {
    throw std::invalid_argument("SubdomainEnsemble::predict: bad frame shape");
  }
  Tensor assembled({frame.dim(0), frame.dim(1), frame.dim(2)});
  for (std::size_t r = 0; r < models_.size(); ++r) {
    const auto block = partition_.block_of_rank(static_cast<int>(r));
    Tensor input = domain::extract_with_halo(frame, block, halo_);
    input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
    Tensor out = models_[r]->forward(input);
    out.reshape({out.dim(1), out.dim(2), out.dim(3)});
    domain::insert_interior(assembled, block, out);
  }
  return assembled;
}

std::vector<Tensor> sequential_rollout(NetworkTrainer& trainer,
                                       const Tensor& initial, int steps) {
  if (initial.ndim() != 3) {
    throw std::invalid_argument("sequential_rollout: initial frame must be [C,H,W]");
  }
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(steps));
  Tensor current = initial;
  const std::int64_t halo = trainer.config().border == BorderMode::kHaloPad
                                ? trainer.config().network.receptive_halo()
                                : 0;
  for (int step = 0; step < steps; ++step) {
    Tensor input = current;
    if (halo > 0) {
      // The monolithic model in halo-pad mode expects a zero-extended frame
      // (the physical-boundary treatment used during training).
      input = input.reshaped({1, input.dim(0), input.dim(1), input.dim(2)});
      input = ops::pad_nchw(input, halo);
      input = input.reshaped({input.dim(1), input.dim(2), input.dim(3)});
    }
    Tensor out = trainer.predict(input);
    frames.push_back(out);
    current = out;
  }
  return frames;
}

}  // namespace parpde::core
