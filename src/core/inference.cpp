#include "core/inference.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>

#include "backend/kernel_backend.hpp"
#include "domain/exchange.hpp"
#include "domain/halo.hpp"
#include "elastic/rollout.hpp"
#include "minimpi/collectives.hpp"
#include "minimpi/environment.hpp"
#include "nn/forward_plan.hpp"
#include "tensor/ops.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace parpde::core {

namespace {

// Copies a dense [c, sh, sw] plane block into the (y0, x0) window of a
// [c, h, w] tensor.
void insert_window(Tensor& dst, std::int64_t y0, std::int64_t x0,
                   const float* src, std::int64_t c, std::int64_t sh,
                   std::int64_t sw) {
  const auto h = dst.dim(1), w = dst.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < sh; ++y) {
      float* d = dst.data() + (ic * h + y0 + y) * w + x0;
      std::copy(src, src + sw, d);
      src += sw;
    }
  }
}

// Copies the (y0, x0) window of extent [rows, cols] out of a [c, h, w]
// tensor into a dense staging tensor (resized on first use, reused after).
void extract_window(const Tensor& src, std::int64_t y0, std::int64_t rows,
                    std::int64_t x0, std::int64_t cols, Tensor& out,
                    std::uint64_t* growths) {
  const auto c = src.dim(0), h = src.dim(1), w = src.dim(2);
  if (out.ndim() != 3 || out.dim(0) != c || out.dim(1) != rows ||
      out.dim(2) != cols) {
    out = Tensor({c, rows, cols});
    if (growths != nullptr) ++*growths;
  }
  float* d = out.data();
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < rows; ++y) {
      const float* s = src.data() + (ic * h + y0 + y) * w + x0;
      std::copy(s, s + cols, d);
      d += cols;
    }
  }
}

// Health monitor: counts NaN/Inf floats via the exponent bits (all-ones
// exponent = non-finite). Branch-free, no library calls, no allocation —
// cheap enough to scan every rank's step output unconditionally.
std::uint64_t count_nonfinite(const float* x, std::int64_t n) {
  std::uint64_t bad = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &x[i], sizeof(bits));
    bad += static_cast<std::uint64_t>((bits & 0x7f800000u) == 0x7f800000u);
  }
  return bad;
}

// Module-graph forward on a [C, bh, bw] tile (the plan-incompatible
// fallback): reshapes in place around Sequential::forward, no input copy.
Tensor module_forward(nn::Sequential& model, Tensor& input) {
  input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
  Tensor out = model.forward(input);
  input.reshape({input.dim(1), input.dim(2), input.dim(3)});
  out.reshape({out.dim(1), out.dim(2), out.dim(3)});
  return out;
}

// Per-rank state of the deferred (double-buffered) frame recording: rank 0
// stages a copy of its own interior when a recorded step is produced and
// collects the non-root blocks one recorded step later, so the strip sends
// overlap the next step's compute.
struct DeferredGather {
  struct Round {
    std::size_t frame_index = 0;
    int stage_slot = 0;
  };
  std::deque<Round> pending;
  Tensor stages[2];
  int next_slot = 0;
};

}  // namespace

RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const domain::HaloOptions& halo_options) {
  RolloutOptions options;
  options.halo = halo_options;
  return parallel_rollout(config, trained, initial, steps, options);
}

RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const RolloutOptions& options) {
  if (options.elastic.enabled) {
    // Elastic runtime: tasks decoupled from ranks, lease-based failure
    // detection, live adoption of orphaned subdomains. The default engines
    // below are untouched when the flag is off.
    return elastic::elastic_rollout(config, trained, initial, steps, options);
  }
  if (config.border == BorderMode::kValidInner) {
    throw std::invalid_argument(
        "parallel_rollout: valid-inner mode cannot roll out (output loses the "
        "subdomain rim)");
  }
  if (initial.ndim() != 3) {
    throw std::invalid_argument("parallel_rollout: initial frame must be [C,H,W]");
  }
  if (steps <= 0) throw std::invalid_argument("parallel_rollout: steps must be > 0");

  const int ranks = trained.ranks;
  const domain::Partition partition(initial.dim(1), initial.dim(2),
                                    trained.dims.px, trained.dims.py);
  const std::int64_t halo = config.border == BorderMode::kHaloPad
                                ? config.network.receptive_halo()
                                : 0;
  const bool overlapped = options.engine == RolloutEngine::kOverlapped;
  const backend::KernelBackend* bk =
      options.backend != nullptr ? options.backend : &backend::blocked_f32();
  // Anything but the reference backend must run through the plan — the
  // module graph is the fp32 reference path by definition.
  const bool non_reference = bk != &backend::blocked_f32();

  // A step is recorded every `record_every` steps, plus always the last one.
  auto recorded = [&](int step) {
    if (options.record_every <= 0) return false;
    return (step + 1) % options.record_every == 0 || step + 1 == steps;
  };
  std::vector<int> recorded_steps;
  for (int s = 0; s < steps; ++s) {
    if (recorded(s)) recorded_steps.push_back(s);
  }

  RolloutResult result;
  result.backend = bk->name();
  result.recorded_steps = recorded_steps;
  result.frames.resize(recorded_steps.size());
  result.step_seconds.resize(static_cast<std::size_t>(steps), 0.0);
  std::vector<double> comm_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> compute_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> overlap_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<std::uint64_t> steady_allocs(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> halo_bytes(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> halo_bytes_recv(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> total_sent(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> total_recv(static_cast<std::size_t>(ranks), 0);
  std::vector<domain::BorderHealth> health(static_cast<std::size_t>(ranks));
  std::vector<std::uint64_t> nonfinite(static_cast<std::size_t>(ranks), 0);
  std::vector<int> first_bad_step(static_cast<std::size_t>(ranks), -1);

  // The health monitor forwards the residual-probe switch into the halo
  // exchange and takes the int8 saturation count as a counter delta around
  // the whole run (quantize_u8 accounts per chunk into the global counter).
  domain::HaloOptions halo_options = options.halo;
  halo_options.probe_residuals = options.monitor_health;
  static telemetry::Counter& saturated =
      telemetry::counter("backend.int8.saturated");
  static telemetry::Counter& nonfinite_counter =
      telemetry::counter("health.nonfinite_values");
  const std::uint64_t saturated_before = saturated.value();

  mpi::Environment env(ranks);
  env.run([&](mpi::Communicator& comm) {
    const int rank = comm.rank();
    mpi::PhaseScope phase(comm, "rollout");
    mpi::CartComm cart(comm, trained.dims.px, trained.dims.py);

    // Rebuild this rank's trained network.
    util::Rng rng(config.seed);
    auto model = build_model(config.network, config.border, rng);
    import_parameters(
        *model, trained.rank_outcomes[static_cast<std::size_t>(rank)].parameters);

    const domain::BlockRange block = partition.block(cart.cx(), cart.cy());
    const std::int64_t bh = block.height();
    const std::int64_t bw = block.width();
    Tensor interior = domain::extract_interior(initial, block);
    const std::int64_t c = interior.dim(0);

    // Pre-size everything the steady-state step touches (ISSUE 5 tentpole):
    // the plan's activations + im2col workspaces for the largest geometry it
    // will see (the halo-padded tile), the halo staging, and the assembly
    // buffers. Only the overlapped engine runs the plan — kSerialized is the
    // module-graph reference loop.
    nn::ForwardPlan plan(*model, c, bh + 2 * halo, bw + 2 * halo, bk);
    if (non_reference && !plan.supported()) {
      throw std::invalid_argument(
          std::string("parallel_rollout: the ") + bk->name() +
          " backend requires a plan-compatible model (deconv mode runs fp32 "
          "only)");
    }
    // The serialized fp32 engine stays the module-graph reference loop; any
    // other combination evaluates through the plan (and its backend).
    const bool use_plan = plan.supported() && (overlapped || non_reference);
    // Interior/rim split needs a non-empty halo-independent interior.
    const bool split = use_plan && overlapped && halo > 0 && bh > 2 * halo &&
                       bw > 2 * halo;
    if (use_plan && plan.needs_calibration()) {
      // int8 activation-scale calibration: one fp32 reference pass over the
      // step-0 input at the geometry the plan will see. The interior sits in
      // a zero-extended halo frame (the physical-boundary treatment), so the
      // pass is identical under both engines and any thread count.
      if (halo > 0) {
        Tensor calib({c, bh + 2 * halo, bw + 2 * halo});
        calib.fill(0.0f);
        insert_window(calib, halo, halo, interior.data(), c, bh, bw);
        plan.calibrate(calib.data(), calib.dim(1), calib.dim(2));
      } else {
        plan.calibrate(interior.data(), bh, bw);
      }
    }
    std::optional<domain::HaloExchange> exchange;
    if (halo > 0 && overlapped) {
      exchange.emplace(cart, partition, halo, halo_options,
                       &health[static_cast<std::size_t>(rank)]);
    }
    Tensor padded;                    // [c, bh + 2 halo, bw + 2 halo]
    Tensor next({c, bh, bw});         // assembled step output
    Tensor band_h;                    // horizontal rim staging [c, 3h, bw + 2h]
    Tensor band_v;                    // vertical rim staging [c, bh, 3h]
    std::uint64_t buffer_growths = 0;  // engine-side regrowth events
    DeferredGather gather;

    static telemetry::Histogram& step_latency =
        telemetry::histogram("rollout.step_seconds");
    static telemetry::Gauge& overlap_gauge =
        telemetry::gauge("rollout.overlap_seconds");
    static telemetry::Counter& steady_counter =
        telemetry::counter("inference.steady_state_allocs");

    util::AccumulatingTimer comm_timer;
    util::AccumulatingTimer compute_timer;
    comm.reset_counters();
    std::uint64_t exchange_bytes = 0;
    std::uint64_t exchange_bytes_recv = 0;
    std::uint64_t warm_growths = 0;  // growth baseline after the first step
    double overlap = 0.0;

    // Runs the plan over the [rows x cols] output window at (y0, x0),
    // staging the matching halo-extended input band from `padded` and
    // assembling the result into `next`.
    auto run_rim = [&](std::int64_t y0, std::int64_t rows, std::int64_t x0,
                       std::int64_t cols, Tensor& staging) {
      extract_window(padded, y0, rows + 2 * halo, x0, cols + 2 * halo,
                     staging, &buffer_growths);
      const nn::ForwardPlan::Output out =
          plan.run(staging.data(), rows + 2 * halo, cols + 2 * halo);
      insert_window(next, y0, x0, out.data, out.channels, rows, cols);
    };

    for (int step = 0; step < steps; ++step) {
      telemetry::Span step_span("rollout.step", "rollout");
      util::WallTimer step_timer;

      if (halo > 0 && overlapped) {
        // Sec. III: "extra data points must be received from the neighboring
        // processes" — post this step's border strips immediately, then run
        // the halo-independent compute while they are in flight.
        const std::uint64_t sent_before = comm.bytes_sent();
        const std::uint64_t recv_before = comm.bytes_received();
        exchange->begin(interior, &comm_timer);
        if (split) {
          compute_timer.start();
          util::WallTimer overlap_timer;
          {
            // The halo-independent pass that hides the strip latency; the
            // critical-path analyzer buckets it as interior compute.
            telemetry::Span forward_span("rollout.forward.interior",
                                         "rollout");
            mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                          mpi::CommPolicy::kForbidden);
            const nn::ForwardPlan::Output out =
                plan.run(interior.data(), bh, bw);
            insert_window(next, halo, halo, out.data, out.channels,
                          bh - 2 * halo, bw - 2 * halo);
          }
          overlap += overlap_timer.seconds();
          compute_timer.stop();
        }
        exchange->finish(interior, padded, &comm_timer);
        exchange_bytes += comm.bytes_sent() - sent_before;
        exchange_bytes_recv += comm.bytes_received() - recv_before;
        compute_timer.start();
        {
          telemetry::Span forward_span(
              split ? "rollout.forward.rim" : "rollout.forward", "rollout");
          mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                        mpi::CommPolicy::kForbidden);
          if (split) {
            // Finish the rim: four thin bands of the halo-padded input.
            run_rim(0, halo, 0, bw, band_h);                     // top
            run_rim(bh - halo, halo, 0, bw, band_h);             // bottom
            run_rim(halo, bh - 2 * halo, 0, halo, band_v);       // left
            run_rim(halo, bh - 2 * halo, bw - halo, halo, band_v);  // right
          } else if (use_plan) {
            const nn::ForwardPlan::Output out =
                plan.run(padded.data(), bh + 2 * halo, bw + 2 * halo);
            insert_window(next, 0, 0, out.data, out.channels, bh, bw);
          } else {
            Tensor out = module_forward(*model, padded);
            next = std::move(out);
          }
        }
        compute_timer.stop();
        std::swap(interior, next);
      } else if (halo > 0) {
        // Serialized reference: blocking exchange, then the forward.
        const std::uint64_t sent_before = comm.bytes_sent();
        const std::uint64_t recv_before = comm.bytes_received();
        Tensor input = domain::exchange_halo(
            cart, partition, interior, halo, &comm_timer, halo_options,
            &health[static_cast<std::size_t>(rank)]);
        exchange_bytes += comm.bytes_sent() - sent_before;
        exchange_bytes_recv += comm.bytes_received() - recv_before;
        compute_timer.start();
        {
          telemetry::Span forward_span("rollout.forward", "rollout");
          mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                        mpi::CommPolicy::kForbidden);
          if (use_plan) {
            const nn::ForwardPlan::Output out =
                plan.run(input.data(), bh + 2 * halo, bw + 2 * halo);
            insert_window(next, 0, 0, out.data, out.channels, bh, bw);
            std::swap(interior, next);
          } else {
            interior = module_forward(*model, input);
          }
        }
        compute_timer.stop();
      } else {
        // Zero-pad (or deconv) mode: communication-free step on the bare
        // interior — no input copy (the halo == 0 copy the serialized loop
        // used to pay every step).
        compute_timer.start();
        {
          telemetry::Span forward_span("rollout.forward", "rollout");
          mpi::PhaseScope forward_phase(comm, "rollout.forward",
                                        mpi::CommPolicy::kForbidden);
          if (use_plan) {
            const nn::ForwardPlan::Output out = plan.run(interior.data(), bh, bw);
            insert_window(next, 0, 0, out.data, out.channels, bh, bw);
            std::swap(interior, next);
          } else {
            interior = module_forward(*model, interior);
          }
        }
        compute_timer.stop();
      }

      // Health monitor: scan this step's output for NaN/Inf. `interior`
      // holds the freshly computed step on every engine path here. One pass
      // over the rank's own tile, no allocation — the <2% overhead budget is
      // verified by bench_rollout_latency's health section.
      if (options.monitor_health) {
        const std::uint64_t bad =
            count_nonfinite(interior.data(), interior.size());
        if (bad > 0) {
          nonfinite[static_cast<std::size_t>(rank)] += bad;
          nonfinite_counter.add(bad);
          if (first_bad_step[static_cast<std::size_t>(rank)] < 0) {
            first_bad_step[static_cast<std::size_t>(rank)] = step;
          }
        }
      }

      // Gather the predicted frame for validation/recording (not part of the
      // scheme's communication cost; a production run keeps fields
      // distributed — record_every <= 0 skips this entirely). The overlapped
      // engine defers rank 0's collection by one recorded step so the
      // non-root strip sends overlap the next step's compute.
      if (recorded(step)) {
        telemetry::Span gather_span("rollout.gather", "rollout");
        const std::size_t frame_index = static_cast<std::size_t>(
            std::lower_bound(recorded_steps.begin(), recorded_steps.end(), step) -
            recorded_steps.begin());
        if (!overlapped) {
          Tensor full = domain::gather_field(cart, partition, interior);
          if (rank == 0) {
            result.frames[frame_index] = std::move(full);
          }
        } else {
          domain::gather_field_send(cart, interior);
          if (rank == 0) {
            if (gather.pending.size() == 2) {
              const DeferredGather::Round round = gather.pending.front();
              gather.pending.pop_front();
              domain::gather_field_collect(cart, partition,
                                           gather.stages[round.stage_slot],
                                           result.frames[round.frame_index]);
            }
            gather.stages[gather.next_slot] = interior;
            gather.pending.push_back({frame_index, gather.next_slot});
            gather.next_slot ^= 1;
          }
        }
      }
      if (step == 0) {
        warm_growths = plan.supported() ? plan.growth_events() : 0;
        warm_growths += buffer_growths;
      }
      if (rank == 0) {
        const double seconds = step_timer.seconds();
        result.step_seconds[static_cast<std::size_t>(step)] = seconds;
        step_latency.observe(seconds);
      }
    }
    // Drain the deferred recording rounds.
    while (rank == 0 && !gather.pending.empty()) {
      const DeferredGather::Round round = gather.pending.front();
      gather.pending.pop_front();
      domain::gather_field_collect(cart, partition,
                                   gather.stages[round.stage_slot],
                                   result.frames[round.frame_index]);
    }

    const std::uint64_t total_growths =
        (plan.supported() ? plan.growth_events() : 0) + buffer_growths;
    steady_allocs[static_cast<std::size_t>(rank)] = total_growths - warm_growths;
    steady_counter.add(total_growths - warm_growths);
    overlap_gauge.add(overlap);
    overlap_seconds[static_cast<std::size_t>(rank)] = overlap;
    comm_seconds[static_cast<std::size_t>(rank)] = comm_timer.seconds();
    compute_seconds[static_cast<std::size_t>(rank)] = compute_timer.seconds();
    halo_bytes[static_cast<std::size_t>(rank)] = exchange_bytes;
    halo_bytes_recv[static_cast<std::size_t>(rank)] = exchange_bytes_recv;
    total_sent[static_cast<std::size_t>(rank)] = comm.bytes_sent();
    total_recv[static_cast<std::size_t>(rank)] = comm.bytes_received();
  });

  for (int r = 0; r < ranks; ++r) {
    const domain::BorderHealth& h = health[static_cast<std::size_t>(r)];
    if (h.any()) {
      result.degraded_borders += h.count();
      result.degraded_detail.push_back("rank " + std::to_string(r) + ": " +
                                       h.describe());
    }
    result.health.nonfinite_values += nonfinite[static_cast<std::size_t>(r)];
    const int bad_step = first_bad_step[static_cast<std::size_t>(r)];
    if (bad_step >= 0 && (result.health.first_nonfinite_step < 0 ||
                          bad_step < result.health.first_nonfinite_step)) {
      result.health.first_nonfinite_step = bad_step;
      result.health.first_nonfinite_rank = r;
    }
    result.health.max_interface_residual =
        std::max(result.health.max_interface_residual, h.max_residual());
    result.comm_seconds =
        std::max(result.comm_seconds, comm_seconds[static_cast<std::size_t>(r)]);
    result.compute_seconds = std::max(
        result.compute_seconds, compute_seconds[static_cast<std::size_t>(r)]);
    result.overlap_seconds = std::max(
        result.overlap_seconds, overlap_seconds[static_cast<std::size_t>(r)]);
    result.steady_state_allocs += steady_allocs[static_cast<std::size_t>(r)];
    result.halo_bytes += halo_bytes[static_cast<std::size_t>(r)];
    result.halo_bytes_received += halo_bytes_recv[static_cast<std::size_t>(r)];
    result.bytes_sent += total_sent[static_cast<std::size_t>(r)];
    result.bytes_received += total_recv[static_cast<std::size_t>(r)];
  }
  result.health.quant_saturations = saturated.value() - saturated_before;
  result.health.degraded_borders = result.degraded_borders;
  return result;
}

SubdomainEnsemble::SubdomainEnsemble(const TrainConfig& config,
                                     const ParallelTrainReport& trained,
                                     std::int64_t grid_h, std::int64_t grid_w)
    : config_(config),
      partition_(grid_h, grid_w, trained.dims.px, trained.dims.py),
      halo_(config.border == BorderMode::kHaloPad
                ? config.network.receptive_halo()
                : 0) {
  models_.reserve(trained.rank_outcomes.size());
  plans_.reserve(trained.rank_outcomes.size());
  for (std::size_t r = 0; r < trained.rank_outcomes.size(); ++r) {
    util::Rng rng(config.seed);
    auto model = build_model(config.network, config.border, rng);
    import_parameters(*model, trained.rank_outcomes[r].parameters);
    const auto block = partition_.block_of_rank(static_cast<int>(r));
    auto plan = std::make_unique<nn::ForwardPlan>(
        *model, config.network.channels.front(), block.height() + 2 * halo_,
        block.width() + 2 * halo_);
    if (!plan->supported()) plan.reset();
    models_.push_back(std::move(model));
    plans_.push_back(std::move(plan));
  }
  inputs_.resize(models_.size());
}

SubdomainEnsemble::~SubdomainEnsemble() = default;

Tensor SubdomainEnsemble::predict(const Tensor& frame) const {
  if (frame.ndim() != 3 || frame.dim(1) != partition_.grid_h() ||
      frame.dim(2) != partition_.grid_w()) {
    throw std::invalid_argument("SubdomainEnsemble::predict: bad frame shape");
  }
  Tensor assembled({frame.dim(0), frame.dim(1), frame.dim(2)});
  // Subdomains write disjoint blocks of `assembled` and touch only their own
  // model/plan/staging, so fanning them out is bit-deterministic; the nested
  // kernels inside each forward run inline on the claiming thread.
  util::ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(models_.size()), 1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const auto block = partition_.block_of_rank(static_cast<int>(r));
          const auto i = static_cast<std::size_t>(r);
          domain::extract_with_halo_into(frame, block, halo_, inputs_[i]);
          if (plans_[i] != nullptr) {
            const nn::ForwardPlan::Output out = plans_[i]->run(
                inputs_[i].data(), inputs_[i].dim(1), inputs_[i].dim(2));
            insert_window(assembled, block.h0, block.w0, out.data,
                          out.channels, block.height(), block.width());
          } else {
            Tensor out = module_forward(*models_[i], inputs_[i]);
            domain::insert_interior(assembled, block, out);
          }
        }
      });
  return assembled;
}

std::vector<Tensor> sequential_rollout(NetworkTrainer& trainer,
                                       const Tensor& initial, int steps) {
  if (initial.ndim() != 3) {
    throw std::invalid_argument("sequential_rollout: initial frame must be [C,H,W]");
  }
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(steps));
  Tensor current = initial;
  const std::int64_t halo = trainer.config().border == BorderMode::kHaloPad
                                ? trainer.config().network.receptive_halo()
                                : 0;
  for (int step = 0; step < steps; ++step) {
    if (halo > 0) {
      // The monolithic model in halo-pad mode expects a zero-extended frame
      // (the physical-boundary treatment used during training). Reshape in
      // place around the pad — the old reshaped() round-trips copied the
      // whole frame twice per step.
      current.reshape({1, current.dim(0), current.dim(1), current.dim(2)});
      Tensor padded = ops::pad_nchw(current, halo);
      current.reshape({current.dim(1), current.dim(2), current.dim(3)});
      padded.reshape({padded.dim(1), padded.dim(2), padded.dim(3)});
      current = trainer.predict(padded);
    } else {
      current = trainer.predict(current);
    }
    frames.push_back(current);
  }
  return frames;
}

std::unique_ptr<nn::Sequential> rebuild_model(
    const TrainConfig& config, const std::vector<Tensor>& parameters) {
  // The rng only shapes the throwaway init; import_parameters overwrites
  // every value, so the seed does not influence the rebuilt network.
  util::Rng rng(config.seed);
  auto model = build_model(config.network, config.border, rng);
  import_parameters(*model, parameters);
  return model;
}

}  // namespace parpde::core
