#pragma once

// Data-parallel baseline in the style of Viviani et al. [4], the related-work
// approach the paper argues against (Sec. I): every rank holds a full-domain
// replica of the network, trains on a shard of the training pairs, and the
// weights are averaged across ranks with a global reduction every
// `sync_every` batches. The paper's criticisms — "it alters the learning
// algorithm resulting in decreased learning" and "the global reduction
// operations are potential performance bottlenecks" — are what
// bench_dataparallel_baseline measures against this implementation.

#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace parpde::core {

struct DataParallelReport {
  int ranks = 1;
  int sync_every = 1;
  std::vector<EpochStats> epochs;      // rank-0 view of the shard losses
  std::vector<Tensor> parameters;      // final averaged parameters
  double wall_seconds = 0.0;
  double comm_seconds = 0.0;           // rank-0 time inside allreduce
  std::uint64_t comm_bytes = 0;        // total bytes sent by all ranks
  std::uint64_t comm_bytes_received = 0;  // total bytes received by all ranks
  std::uint64_t sync_rounds = 0;

  [[nodiscard]] double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().loss;
  }
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(TrainConfig config, int ranks, int sync_every = 1);

  [[nodiscard]] DataParallelReport train(const data::FrameDataset& dataset) const;

 private:
  TrainConfig config_;
  int ranks_;
  int sync_every_;
};

}  // namespace parpde::core
