#include "core/config.hpp"

#include <stdexcept>

namespace parpde::core {

std::string border_mode_name(BorderMode mode) {
  switch (mode) {
    case BorderMode::kZeroPad:
      return "zero-pad";
    case BorderMode::kHaloPad:
      return "halo-pad";
    case BorderMode::kValidInner:
      return "valid-inner";
    case BorderMode::kDeconv:
      return "deconv";
  }
  return "?";
}

BorderMode border_mode_from_string(const std::string& name) {
  if (name == "zero-pad" || name == "zero") return BorderMode::kZeroPad;
  if (name == "halo-pad" || name == "halo") return BorderMode::kHaloPad;
  if (name == "valid-inner" || name == "valid") return BorderMode::kValidInner;
  if (name == "deconv" || name == "transpose") return BorderMode::kDeconv;
  throw std::invalid_argument("border_mode_from_string: unknown mode '" + name +
                              "'");
}

}  // namespace parpde::core
