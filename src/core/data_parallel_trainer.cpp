#include "core/data_parallel_trainer.hpp"

#include <stdexcept>

#include "data/batcher.hpp"
#include "minimpi/collectives.hpp"
#include "minimpi/environment.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace parpde::core {

namespace {

// Flattens all parameters into one buffer, allreduce-averages it, and writes
// the averaged values back ("the weights are averaged and constitute a new
// network, which is shared among all individual MPI ranks").
void average_parameters(mpi::Communicator& comm,
                        const std::vector<nn::ParamRef>& params) {
  telemetry::Span span("dp.average_parameters", "comm");
  std::vector<float> flat;
  for (const auto& p : params) {
    flat.insert(flat.end(), p.value->values().begin(), p.value->values().end());
  }
  mpi::allreduce<float>(comm, flat, mpi::ReduceOp::kSum);
  const float inv = 1.0f / static_cast<float>(comm.size());
  std::size_t offset = 0;
  for (const auto& p : params) {
    for (std::int64_t i = 0; i < p.value->size(); ++i) {
      (*p.value)[i] = flat[offset++] * inv;
    }
  }
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(TrainConfig config, int ranks,
                                         int sync_every)
    : config_(std::move(config)), ranks_(ranks), sync_every_(sync_every) {
  if (ranks <= 0) throw std::invalid_argument("DataParallelTrainer: bad ranks");
  if (sync_every <= 0) {
    throw std::invalid_argument("DataParallelTrainer: bad sync_every");
  }
}

DataParallelReport DataParallelTrainer::train(
    const data::FrameDataset& dataset) const {
  const auto split = dataset.chronological_split(config_.train_fraction);
  const domain::Partition partition(dataset.height(), dataset.width(), 1, 1);

  // Shard the training pairs round-robin across ranks.
  std::vector<std::vector<std::int64_t>> shards(static_cast<std::size_t>(ranks_));
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    shards[i % static_cast<std::size_t>(ranks_)].push_back(split.train[i]);
  }
  std::size_t min_shard = shards.front().size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  if (min_shard == 0) {
    throw std::invalid_argument("DataParallelTrainer: more ranks than samples");
  }

  DataParallelReport report;
  report.ranks = ranks_;
  report.sync_every = sync_every_;

  // Rank threads share the global pool under the total-threads cap (see
  // docs/performance.md); deterministic kernels keep replicas in lockstep.
  util::ThreadPool::configure_global(
      util::ThreadPool::resolve_workers(config_.num_threads, ranks_));

  util::WallTimer wall;
  mpi::Environment env(ranks_);
  env.run([&](mpi::Communicator& comm) {
    const int rank = comm.rank();
    mpi::PhaseScope phase(comm, "dp.train");
    comm.reset_counters();
    const auto& shard = shards[static_cast<std::size_t>(rank)];
    const auto task = make_subdomain_task(dataset.frames(), shard,
                                          partition.block(0, 0), config_);
    // All replicas start from identical weights (seed stream 0), as weight
    // averaging presumes.
    NetworkTrainer trainer(config_, /*seed_stream=*/0);
    const auto params = trainer.model().parameters();

    // Lockstep batch count: every rank must join every averaging round.
    data::Batcher batcher(static_cast<std::int64_t>(shard.size()),
                          config_.batch_size,
                          config_.seed ^ static_cast<std::uint64_t>(rank),
                          config_.shuffle);
    const std::int64_t lockstep_batches =
        (static_cast<std::int64_t>(min_shard) + config_.batch_size - 1) /
        config_.batch_size;

    util::AccumulatingTimer comm_timer;
    std::uint64_t rounds = 0;
    std::vector<EpochStats> epochs;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      telemetry::Span epoch_span(
          telemetry::enabled() ? "dp.epoch " + std::to_string(epoch)
                               : std::string(),
          "epoch");
      util::WallTimer epoch_timer;
      const auto batches = batcher.next_epoch();
      double loss_sum = 0.0;
      for (std::int64_t b = 0; b < lockstep_batches; ++b) {
        const auto& batch = batches[static_cast<std::size_t>(b)];
        // Materialize this batch from the stacked shard tensors.
        Tensor in({static_cast<std::int64_t>(batch.size()), task.inputs.dim(1),
                   task.inputs.dim(2), task.inputs.dim(3)});
        Tensor target({static_cast<std::int64_t>(batch.size()),
                       task.targets.dim(1), task.targets.dim(2),
                       task.targets.dim(3)});
        const std::int64_t in_stride =
            task.inputs.dim(1) * task.inputs.dim(2) * task.inputs.dim(3);
        const std::int64_t out_stride =
            task.targets.dim(1) * task.targets.dim(2) * task.targets.dim(3);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::copy(task.inputs.data() + batch[i] * in_stride,
                    task.inputs.data() + (batch[i] + 1) * in_stride,
                    in.data() + static_cast<std::int64_t>(i) * in_stride);
          std::copy(task.targets.data() + batch[i] * out_stride,
                    task.targets.data() + (batch[i] + 1) * out_stride,
                    target.data() + static_cast<std::int64_t>(i) * out_stride);
        }
        {
          // Replica gradient steps are communication-free; only the
          // averaging rounds below may talk.
          mpi::PhaseScope compute_phase(comm, "dp.compute",
                                        mpi::CommPolicy::kForbidden);
          loss_sum += trainer.train_batch(in, target);
        }
        if ((b + 1) % sync_every_ == 0) {
          comm_timer.start();
          average_parameters(comm, params);
          comm_timer.stop();
          ++rounds;
        }
      }
      // Synchronize at epoch end so all replicas agree.
      if (lockstep_batches % sync_every_ != 0) {
        comm_timer.start();
        average_parameters(comm, params);
        comm_timer.stop();
        ++rounds;
      }
      EpochStats stats;
      stats.loss = loss_sum / static_cast<double>(lockstep_batches);
      stats.seconds = epoch_timer.seconds();
      epochs.push_back(stats);
    }

    if (rank == 0) {
      report.epochs = std::move(epochs);
      report.parameters = export_parameters(trainer.model());
      report.comm_seconds = comm_timer.seconds();
      report.sync_rounds = rounds;
    }
    // Total traffic: sum over ranks, accumulated via allreduce on a scalar.
    // Snapshot both sides before the reduction itself adds traffic.
    std::vector<std::uint64_t> bytes = {comm.bytes_sent(),
                                        comm.bytes_received()};
    mpi::allreduce<std::uint64_t>(comm, bytes, mpi::ReduceOp::kSum);
    if (rank == 0) {
      report.comm_bytes = bytes[0];
      report.comm_bytes_received = bytes[1];
    }
  });
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace parpde::core
