#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/crc32.hpp"

namespace parpde::core {

namespace {

constexpr char kMagic[4] = {'P', 'P', 'D', 'E'};
// v2 frames the body with a length + CRC-32 directly after the version word,
// so truncation and corruption are reported instead of parsed; v1 (bare
// body) files remain readable.
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_ensemble: truncated stream");
  return value;
}

}  // namespace

namespace {

void write_body(std::ostream& out, const EnsembleCheckpoint& checkpoint) {
  const auto& report = checkpoint.report;
  const auto& net = checkpoint.network;
  write_pod(out, static_cast<std::uint32_t>(net.channels.size()));
  for (const auto c : net.channels) write_pod(out, c);
  write_pod(out, net.kernel);
  write_pod(out, net.leaky_slope);
  write_pod(out, static_cast<std::uint8_t>(net.final_activation ? 1 : 0));
  write_pod(out, static_cast<std::uint8_t>(checkpoint.border));

  write_pod(out, static_cast<std::int32_t>(report.ranks));
  write_pod(out, static_cast<std::int32_t>(report.dims.px));
  write_pod(out, static_cast<std::int32_t>(report.dims.py));
  for (const auto& outcome : report.rank_outcomes) {
    write_pod(out, outcome.block.h0);
    write_pod(out, outcome.block.h1);
    write_pod(out, outcome.block.w0);
    write_pod(out, outcome.block.w1);
    write_pod(out, static_cast<std::uint32_t>(outcome.parameters.size()));
    for (const auto& t : outcome.parameters) write_tensor(out, t);
  }
}

EnsembleCheckpoint read_body(std::istream& in) {
  EnsembleCheckpoint checkpoint;
  const auto n_channels = read_pod<std::uint32_t>(in);
  if (n_channels < 2 || n_channels > 64) {
    throw std::runtime_error("read_ensemble: implausible channel count");
  }
  checkpoint.network.channels.resize(n_channels);
  for (auto& c : checkpoint.network.channels) c = read_pod<std::int64_t>(in);
  checkpoint.network.kernel = read_pod<std::int64_t>(in);
  checkpoint.network.leaky_slope = read_pod<float>(in);
  checkpoint.network.final_activation = read_pod<std::uint8_t>(in) != 0;
  const auto border = read_pod<std::uint8_t>(in);
  if (border > static_cast<std::uint8_t>(BorderMode::kDeconv)) {
    throw std::runtime_error("read_ensemble: bad border mode");
  }
  checkpoint.border = static_cast<BorderMode>(border);

  auto& report = checkpoint.report;
  report.ranks = read_pod<std::int32_t>(in);
  report.dims.px = read_pod<std::int32_t>(in);
  report.dims.py = read_pod<std::int32_t>(in);
  if (report.ranks <= 0 || report.dims.px * report.dims.py != report.ranks) {
    throw std::runtime_error("read_ensemble: inconsistent topology");
  }
  report.rank_outcomes.resize(static_cast<std::size_t>(report.ranks));
  for (int r = 0; r < report.ranks; ++r) {
    auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
    outcome.rank = r;
    outcome.block.h0 = read_pod<std::int64_t>(in);
    outcome.block.h1 = read_pod<std::int64_t>(in);
    outcome.block.w0 = read_pod<std::int64_t>(in);
    outcome.block.w1 = read_pod<std::int64_t>(in);
    const auto count = read_pod<std::uint32_t>(in);
    if (count > 1024) throw std::runtime_error("read_ensemble: implausible count");
    outcome.parameters.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      outcome.parameters.push_back(read_tensor(in));
    }
  }
  return checkpoint;
}

}  // namespace

void write_ensemble(std::ostream& out, const EnsembleCheckpoint& checkpoint) {
  std::ostringstream body_stream(std::ios::binary);
  write_body(body_stream, checkpoint);
  const std::string body = std::move(body_stream).str();

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(body.size()));
  write_pod(out, util::crc32(body.data(), body.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("write_ensemble: stream failure");
}

EnsembleCheckpoint read_ensemble(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_ensemble: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version == 1) return read_body(in);  // unframed legacy layout
  if (version != kVersion) {
    throw std::runtime_error("read_ensemble: unsupported version " +
                             std::to_string(version));
  }
  const auto body_len = read_pod<std::uint64_t>(in);
  const auto crc = read_pod<std::uint32_t>(in);
  if (body_len > (1ull << 33)) {
    throw std::runtime_error("read_ensemble: implausible body length");
  }
  std::string body(static_cast<std::size_t>(body_len), '\0');
  in.read(body.data(), static_cast<std::streamsize>(body_len));
  if (!in || in.gcount() != static_cast<std::streamsize>(body_len)) {
    throw std::runtime_error(
        "read_ensemble: truncated body — the checkpoint was cut short (torn "
        "write or incomplete copy)");
  }
  if (util::crc32(body.data(), body.size()) != crc) {
    throw std::runtime_error(
        "read_ensemble: CRC mismatch — the checkpoint is corrupt; refusing "
        "to load garbage weights");
  }
  std::istringstream body_in(body, std::ios::binary);
  return read_body(body_in);
}

void save_ensemble(const std::string& path, const EnsembleCheckpoint& checkpoint) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_ensemble: cannot open " + path);
  write_ensemble(out, checkpoint);
}

EnsembleCheckpoint load_ensemble(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_ensemble: cannot open " + path);
  return read_ensemble(in);
}

EnsembleCheckpoint make_checkpoint(const TrainConfig& config,
                                   const ParallelTrainReport& report) {
  EnsembleCheckpoint checkpoint;
  checkpoint.network = config.network;
  checkpoint.border = config.border;
  checkpoint.report = report;
  return checkpoint;
}

}  // namespace parpde::core
