#pragma once

// Parallel autoregressive inference (Sec. III, "Inference"): every rank
// predicts its own subdomain; between time steps the subdomain boundaries are
// exchanged with the four neighbours through point-to-point messages, exactly
// like a domain-decomposed classical solver. The sequential (monolithic)
// rollout is provided for the equivalence tests and accuracy baselines.

#include "core/config.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "domain/exchange.hpp"

namespace parpde::nn {
class ForwardPlan;
class Sequential;
}  // namespace parpde::nn

namespace parpde::backend {
class KernelBackend;
}  // namespace parpde::backend

namespace parpde::core {

// Which rollout loop parallel_rollout runs.
enum class RolloutEngine {
  // Asynchronous pipeline (the default): border strips are posted the moment
  // a step's output exists, the halo-independent interior of the next forward
  // runs while they are in flight, and the rim is finished after the bounded
  // receives land. All per-layer activations, im2col workspaces and halo
  // staging buffers are pre-sized at rollout start (ForwardPlan), so the
  // steady-state step performs zero heap allocations. Bit-identical to
  // kSerialized (tests/test_rollout_overlap.cpp).
  kOverlapped,
  // The straight-line reference loop: blocking halo exchange, then the
  // module-graph forward, then the frame gather — halo latency sits on the
  // critical path. Kept as the baseline for equivalence tests and the
  // bench_rollout_latency speedup measurement.
  kSerialized,
};

// Elastic runtime knobs (src/elastic/): over-decompose the grid into
// M = trained.ranks subdomain tasks hosted on P = M / tasks_per_rank ranks,
// detect rank death through missed heartbeat leases, and have survivors
// adopt the orphaned tasks (deterministic rebalance + rollback to the newest
// common PPES state snapshot), so a mid-rollout kill ends as a bounded blip
// instead of a permanently degraded border. Disabled by default — the
// default engines take the exact same path as before. See
// docs/robustness.md ("Recovery protocol").
struct ElasticOptions {
  bool enabled = false;
  // The trained report must hold tasks_per_rank * P rank outcomes; the
  // rollout runs P physical ranks, each initially owning tasks_per_rank
  // tasks (task t starts on rank t % P).
  int tasks_per_rank = 1;
  // false = detect but do not adopt: the dead rank's tasks stay orphaned and
  // their borders degrade permanently (the pre-elastic behaviour).
  bool recover = true;
  // One heartbeat lease interval; a peer is declared dead after
  // `missed_leases` consecutive intervals without any sign of life while
  // someone is waiting on it. The budget must exceed the worst per-step
  // compute skew between ranks or a slow rank gets falsely evicted.
  std::chrono::milliseconds lease{250};
  int missed_leases = 20;
  // PPES per-task state snapshots every `state_every` steps into
  // `state_dir` (elastic/state_checkpoint.hpp). Empty dir or state_every
  // <= 0 disables snapshots; recovery then rolls every task back to the
  // initial frame and recomputes — still bit-identical, just slower.
  std::string state_dir;
  int state_every = 0;
};

struct RolloutOptions {
  domain::HaloOptions halo;
  ElasticOptions elastic;
  RolloutEngine engine = RolloutEngine::kOverlapped;
  // Gather the full frame on rank 0 every `record_every`-th step (the final
  // step is always recorded so callers get the end state); <= 0 disables
  // recording entirely. With the overlapped engine the gather is deferred and
  // double-buffered: non-root strip sends overlap the next step's compute and
  // rank 0 collects one recorded step behind.
  int record_every = 1;
  // Execution provider for the per-step forward passes (see src/backend/):
  // nullptr = the reference fp32 backend. The int8 backend
  // (backend::quantized_int8()) calibrates activation scales from the initial
  // frame on each rank before the first step and requires a plan-compatible
  // model (not deconv mode). Halo exchange always stages fp32 either way —
  // quantization is internal to the conv kernels, never on the wire.
  const backend::KernelBackend* backend = nullptr;
  // Always-on health monitor (RolloutResult::health): per-step NaN/Inf scan
  // of each rank's output, interface-residual probes at subdomain seams, and
  // int8 saturation accounting. Zero allocations and <2% step overhead
  // (measured in bench_rollout_latency); off only for overhead benchmarking.
  bool monitor_health = true;
};

// Rollout health summary, populated whenever RolloutOptions::monitor_health
// is set (the default). `parpde_cli rollout` prints it under --health-report
// and exits nonzero when non-finite values appeared.
struct HealthReport {
  // Non-finite (NaN/Inf) values seen across all ranks' step outputs.
  std::uint64_t nonfinite_values = 0;
  // First step / rank where a non-finite value appeared (-1 = never).
  int first_nonfinite_step = -1;
  int first_nonfinite_rank = -1;
  // Largest interface residual (mean |received halo line − adjacent interior
  // line|) observed at any subdomain seam — the stitching-error gauge.
  double max_interface_residual = 0.0;
  // Int8 quantizer values that clipped at the uint8 clamp during this rollout
  // (delta of the backend.int8.saturated counter). Persistent saturation
  // means the calibrated activation scale no longer covers the data.
  std::uint64_t quant_saturations = 0;
  // Mirror of RolloutResult::degraded_borders for one-stop health checks.
  int degraded_borders = 0;

  // Elastic recovery summary (all zero unless the elastic engine ran and a
  // rank died): how many recovery rounds completed, how many orphaned tasks
  // the survivors adopted, where/how fast the death was detected, and how
  // long the deterministic rebalance + state rollback took (max over ranks).
  int recoveries = 0;
  int adopted_tasks = 0;
  int failed_ranks = 0;
  int detection_step = -1;
  double detection_seconds = 0.0;
  double rebalance_seconds = 0.0;
  // Version of the task->rank Assignment at the end of the run (0 = the
  // initial map, +1 per rebalance); also the `recover.assignment_epoch`
  // telemetry gauge.
  int assignment_epoch = 0;
  // Borders that transiently degraded during detection and were healthy
  // again after adoption (the degrade -> detect -> adopt -> healthy blip).
  int degraded_during_recovery = 0;

  [[nodiscard]] bool nonfinite() const { return first_nonfinite_step >= 0; }
};

struct RolloutResult {
  // Name of the execution provider the rollout ran on ("fp32", "int8").
  std::string backend;
  // Predicted full-domain frames, one per recorded step (gathered on rank 0;
  // the prediction of step k is the network's estimate of frame t0+k+1).
  // With record_every == 1 (the default) every step is recorded.
  std::vector<Tensor> frames;
  // 0-based step index of each entry of `frames`.
  std::vector<int> recorded_steps;
  // Wall time of each step as seen by rank 0 (drives the bench's p50/p99).
  std::vector<double> step_seconds;
  double comm_seconds = 0.0;     // max over ranks, halo exchange only
  double compute_seconds = 0.0;  // max over ranks, forward passes
  std::uint64_t halo_bytes = 0;  // total halo bytes sent over all ranks
  // Recv side of the halo traffic (balances halo_bytes across ranks; the
  // send-only accounting the original counters forced under-reported the
  // per-rank communication volume by construction).
  std::uint64_t halo_bytes_received = 0;
  std::uint64_t bytes_sent = 0;      // all traffic incl. frame gathers
  std::uint64_t bytes_received = 0;  // all traffic incl. frame gathers
  // Fault-degradation outcome: borders that lost their neighbour mid-rollout
  // and fell back to the zero-padding treatment (docs/robustness.md). Zero /
  // empty on a healthy run.
  int degraded_borders = 0;
  std::vector<std::string> degraded_detail;  // e.g. "rank 2: E,N"
  // Max over ranks of the forward time that ran while that rank's halo strips
  // were in flight (0 for the serialized engine): the hidden-latency window
  // the overlap design section of docs/performance.md measures.
  double overlap_seconds = 0.0;
  // Total buffer regrowths after the first step, summed over ranks (plan
  // activations, im2col workspaces, halo staging). 0 means the steady-state
  // step ran allocation-free; also exported as the
  // `inference.steady_state_allocs` telemetry counter.
  std::uint64_t steady_state_allocs = 0;
  // Health-monitor summary (see HealthReport); all-zero when
  // RolloutOptions::monitor_health was false.
  HealthReport health;
};

// Multi-step rollout with the per-rank models of a ParallelTrainReport,
// starting from global frame `initial` ([C, H, W]). Requires border mode
// kZeroPad (communication-free inference with zero borders) or kHaloPad
// (p2p halo exchange per step); kValidInner cannot roll out because its
// output loses the subdomain rim (the limitation Sec. III points out).
//
// Halo receives are bounded by `halo_options`; a border whose neighbour is
// definitively lost degrades (sticky, per rank) to zero padding and the
// rollout keeps going — it never deadlocks under message loss.
RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const RolloutOptions& options);

// Compatibility overload: overlapped engine, every step recorded.
RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const domain::HaloOptions& halo_options = {});

// Monolithic rollout with a single full-domain network.
std::vector<Tensor> sequential_rollout(NetworkTrainer& trainer,
                                       const Tensor& initial, int steps);

// Rebuilds one standalone network from a config plus exported parameter
// values (the build_model + import_parameters idiom every inference consumer
// kept re-rolling). The serving layer (serve::SurrogateServer), the CLI
// `serve` command and bench_serving all load session models through this.
[[nodiscard]] std::unique_ptr<nn::Sequential> rebuild_model(
    const TrainConfig& config, const std::vector<Tensor>& parameters);

// Serial convenience wrapper around the per-rank models of a trained report:
// rebuilds every subdomain network once and evaluates full-domain one-step
// predictions without spinning up an Environment (validation/metrics path,
// not the production inference path). Subdomains are evaluated in parallel on
// the global ThreadPool (disjoint output blocks — deterministic at any worker
// count) with per-subdomain input/plan buffers reused across calls; a single
// instance is therefore NOT safe to call from several threads at once.
class SubdomainEnsemble {
 public:
  SubdomainEnsemble(const TrainConfig& config, const ParallelTrainReport& trained,
                    std::int64_t grid_h, std::int64_t grid_w);
  ~SubdomainEnsemble();

  // One-step prediction assembled over all subdomains: [C,H,W] -> [C,H,W].
  [[nodiscard]] Tensor predict(const Tensor& frame) const;

  [[nodiscard]] const domain::Partition& partition() const { return partition_; }

 private:
  TrainConfig config_;
  domain::Partition partition_;
  std::int64_t halo_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
  // Per-subdomain pre-sized forward plans (null where the model graph is not
  // plan-compatible, e.g. deconv mode) and input staging, reused across
  // predict() calls.
  std::vector<std::unique_ptr<nn::ForwardPlan>> plans_;
  mutable std::vector<Tensor> inputs_;
};

}  // namespace parpde::core
