#pragma once

// Parallel autoregressive inference (Sec. III, "Inference"): every rank
// predicts its own subdomain; between time steps the subdomain boundaries are
// exchanged with the four neighbours through point-to-point messages, exactly
// like a domain-decomposed classical solver. The sequential (monolithic)
// rollout is provided for the equivalence tests and accuracy baselines.

#include "core/config.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "domain/exchange.hpp"

namespace parpde::core {

struct RolloutResult {
  // Predicted full-domain frames, one per step (gathered on rank 0;
  // prediction k is the network's estimate of frame t0+k+1).
  std::vector<Tensor> frames;
  double comm_seconds = 0.0;     // max over ranks, halo exchange only
  double compute_seconds = 0.0;  // max over ranks, forward passes
  std::uint64_t halo_bytes = 0;  // total halo bytes sent over all ranks
  // Recv side of the halo traffic (balances halo_bytes across ranks; the
  // send-only accounting the original counters forced under-reported the
  // per-rank communication volume by construction).
  std::uint64_t halo_bytes_received = 0;
  std::uint64_t bytes_sent = 0;      // all traffic incl. frame gathers
  std::uint64_t bytes_received = 0;  // all traffic incl. frame gathers
  // Fault-degradation outcome: borders that lost their neighbour mid-rollout
  // and fell back to the zero-padding treatment (docs/robustness.md). Zero /
  // empty on a healthy run.
  int degraded_borders = 0;
  std::vector<std::string> degraded_detail;  // e.g. "rank 2: E,N"
};

// Multi-step rollout with the per-rank models of a ParallelTrainReport,
// starting from global frame `initial` ([C, H, W]). Requires border mode
// kZeroPad (communication-free inference with zero borders) or kHaloPad
// (p2p halo exchange per step); kValidInner cannot roll out because its
// output loses the subdomain rim (the limitation Sec. III points out).
//
// Halo receives are bounded by `halo_options`; a border whose neighbour is
// definitively lost degrades (sticky, per rank) to zero padding and the
// rollout keeps going — it never deadlocks under message loss.
RolloutResult parallel_rollout(const TrainConfig& config,
                               const ParallelTrainReport& trained,
                               const Tensor& initial, int steps,
                               const domain::HaloOptions& halo_options = {});

// Monolithic rollout with a single full-domain network.
std::vector<Tensor> sequential_rollout(NetworkTrainer& trainer,
                                       const Tensor& initial, int steps);

// Serial convenience wrapper around the per-rank models of a trained report:
// rebuilds every subdomain network once and evaluates full-domain one-step
// predictions without spinning up an Environment (validation/metrics path,
// not the production inference path).
class SubdomainEnsemble {
 public:
  SubdomainEnsemble(const TrainConfig& config, const ParallelTrainReport& trained,
                    std::int64_t grid_h, std::int64_t grid_w);

  // One-step prediction assembled over all subdomains: [C,H,W] -> [C,H,W].
  [[nodiscard]] Tensor predict(const Tensor& frame) const;

  [[nodiscard]] const domain::Partition& partition() const { return partition_; }

 private:
  TrainConfig config_;
  domain::Partition partition_;
  std::int64_t halo_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
};

}  // namespace parpde::core
