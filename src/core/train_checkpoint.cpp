#include "core/train_checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "tensor/serialize.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace parpde::core {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'P', 'P', 'T', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated payload");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  if (len > (1u << 20)) throw std::runtime_error("implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("truncated payload");
  return s;
}

void write_tensors(std::ostream& out, const std::vector<Tensor>& tensors) {
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& t : tensors) write_tensor(out, t);
}

std::vector<Tensor> read_tensors(std::istream& in) {
  const auto count = read_pod<std::uint32_t>(in);
  if (count > 4096) throw std::runtime_error("implausible tensor count");
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) tensors.push_back(read_tensor(in));
  return tensors;
}

std::string serialize_payload(int rank, const TrainerSnapshot& snap) {
  std::ostringstream out(std::ios::binary);
  write_pod(out, static_cast<std::int32_t>(rank));
  write_pod(out, static_cast<std::int32_t>(snap.next_epoch));
  write_string(out, snap.batcher_rng);
  write_string(out, snap.optimizer.name);
  write_pod(out, snap.optimizer.step_count);
  write_pod(out, snap.optimizer.learning_rate);
  write_tensors(out, snap.optimizer.slots);
  write_tensors(out, snap.parameters);
  write_pod(out, static_cast<std::uint32_t>(snap.epochs.size()));
  for (const auto& e : snap.epochs) {
    write_pod(out, e.loss);
    write_pod(out, e.val_loss);
    write_pod(out, e.seconds);
  }
  write_pod(out, snap.best_monitored);
  write_pod(out, static_cast<std::int32_t>(snap.epochs_since_best));
  write_pod(out, static_cast<std::int32_t>(snap.best_epoch));
  write_tensors(out, snap.best_params);
  write_pod(out, static_cast<std::int32_t>(snap.schedule_epochs));
  if (!out) throw std::runtime_error("save_rank_checkpoint: stream failure");
  return std::move(out).str();
}

void parse_payload(const std::string& payload, int* rank,
                   TrainerSnapshot* snap) {
  std::istringstream in(payload, std::ios::binary);
  *rank = read_pod<std::int32_t>(in);
  snap->next_epoch = read_pod<std::int32_t>(in);
  snap->batcher_rng = read_string(in);
  snap->optimizer.name = read_string(in);
  snap->optimizer.step_count = read_pod<std::int64_t>(in);
  snap->optimizer.learning_rate = read_pod<double>(in);
  snap->optimizer.slots = read_tensors(in);
  snap->parameters = read_tensors(in);
  const auto n_epochs = read_pod<std::uint32_t>(in);
  if (n_epochs > (1u << 20)) throw std::runtime_error("implausible epoch count");
  snap->epochs.resize(n_epochs);
  for (auto& e : snap->epochs) {
    e.loss = read_pod<double>(in);
    e.val_loss = read_pod<double>(in);
    e.seconds = read_pod<double>(in);
  }
  snap->best_monitored = read_pod<double>(in);
  snap->epochs_since_best = read_pod<std::int32_t>(in);
  snap->best_epoch = read_pod<std::int32_t>(in);
  snap->best_params = read_tensors(in);
  snap->schedule_epochs = read_pod<std::int32_t>(in);
}

std::string checkpoint_name(int rank, int next_epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rank%d_epoch%06d.ckpt", rank, next_epoch);
  return buf;
}

std::string manifest_name(int rank) {
  return "rank" + std::to_string(rank) + ".latest";
}

// Writes `data` to `dir/name` with crash consistency: tmp file, fsync,
// rename into place, fsync the directory so the rename itself is durable.
void atomic_write(const fs::path& dir, const std::string& name,
                  const std::string& data) {
  const fs::path final_path = dir / name;
  const fs::path tmp_path = dir / (name + ".tmp");
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot open " + tmp_path.string() +
                             ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("checkpoint: write to " + tmp_path.string() +
                               " failed: " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("checkpoint: fsync of " + tmp_path.string() +
                             " failed: " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename to " + final_path.string() +
                             " failed: " + std::strerror(errno));
  }
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: persist the rename
    ::close(dir_fd);
  }
}

}  // namespace

std::string save_rank_checkpoint(const std::string& dir, int rank,
                                 const TrainerSnapshot& snapshot) {
  if (rank < 0) {
    throw std::invalid_argument("save_rank_checkpoint: negative rank");
  }
  fs::create_directories(dir);
  const std::string payload = serialize_payload(rank, snapshot);

  std::ostringstream framed(std::ios::binary);
  framed.write(kMagic, sizeof(kMagic));
  write_pod(framed, kVersion);
  write_pod(framed, static_cast<std::uint64_t>(payload.size()));
  write_pod(framed, util::crc32(payload.data(), payload.size()));
  framed.write(payload.data(), static_cast<std::streamsize>(payload.size()));

  const std::string name = checkpoint_name(rank, snapshot.next_epoch);
  atomic_write(dir, name, std::move(framed).str());
  // The manifest points at the newest file; it is advisory (the loader can
  // always fall back to scanning), so writing it after the data is safe.
  atomic_write(dir, manifest_name(rank), name + "\n");

  static telemetry::Counter& writes = telemetry::counter("checkpoint.writes");
  static telemetry::Counter& bytes =
      telemetry::counter("checkpoint.bytes_written");
  writes.add(1);
  bytes.add(payload.size());
  return (fs::path(dir) / name).string();
}

bool read_rank_checkpoint(const std::string& path, int* rank,
                          TrainerSnapshot* out, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = path + ": " + reason;
    static telemetry::Counter& invalid =
        telemetry::counter("checkpoint.invalid_skipped");
    invalid.add(1);
    return false;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not a training checkpoint)");
  }
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in) return fail("truncated header");
  if (version != kVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  if (payload_len > (1ull << 32)) return fail("implausible payload length");
  std::string payload(static_cast<std::size_t>(payload_len), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_len)) {
    return fail("truncated payload (torn write?)");
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    return fail("CRC mismatch (corrupt file)");
  }
  try {
    parse_payload(payload, rank, out);
  } catch (const std::exception& e) {
    return fail(std::string("malformed payload: ") + e.what());
  }
  return true;
}

std::optional<TrainerSnapshot> load_latest_checkpoint(const std::string& dir,
                                                      int rank) {
  const fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return std::nullopt;

  // Candidate files, newest first: the manifest's pick, then every matching
  // checkpoint by descending epoch (covers a stale/missing/corrupt manifest).
  std::vector<std::string> candidates;
  {
    std::ifstream manifest(root / manifest_name(rank));
    std::string name;
    if (manifest && std::getline(manifest, name) && !name.empty() &&
        name.find('/') == std::string::npos) {
      candidates.push_back((root / name).string());
    }
  }
  const std::string prefix = "rank" + std::to_string(rank) + "_epoch";
  std::vector<std::string> scanned;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      scanned.push_back(entry.path().string());
    }
  }
  std::sort(scanned.rbegin(), scanned.rend());  // epoch is zero-padded
  candidates.insert(candidates.end(), scanned.begin(), scanned.end());

  for (const auto& path : candidates) {
    TrainerSnapshot snap;
    int file_rank = -1;
    std::string why;
    if (!read_rank_checkpoint(path, &file_rank, &snap, &why)) {
      util::log_warn() << "checkpoint: skipping invalid file " << why;
      continue;
    }
    if (file_rank != rank) {
      util::log_warn() << "checkpoint: " << path << " belongs to rank "
                       << file_rank << ", expected " << rank << "; skipping";
      continue;
    }
    return snap;
  }
  return std::nullopt;
}

}  // namespace parpde::core
