#pragma once

// Checkpointing of a trained subdomain ensemble: persists the network
// configuration, topology, per-rank blocks and per-rank parameter tensors of
// a ParallelTrainReport, so inference can resume in a later process (or the
// CLI) without retraining.
//
// Layout (little-endian):
//   magic "PPDE" | u32 version | u64 body_len | u32 crc32(body) | body
//   body:
//     u32 n_channels | i64 channels[] | i64 kernel | f32 leaky | u8 final_act
//     u8 border | i32 ranks | i32 px | i32 py
//     per rank: i64 h0 h1 w0 w1 | u32 tensor_count | tensors (tensor format)
// Version 2 added the length + CRC frame so truncated or corrupt files fail
// with a diagnostic; version-1 files (bare body) are still readable.

#include <istream>
#include <ostream>
#include <string>

#include "core/parallel_trainer.hpp"

namespace parpde::core {

struct EnsembleCheckpoint {
  NetworkConfig network;
  BorderMode border = BorderMode::kHaloPad;
  ParallelTrainReport report;
};

void write_ensemble(std::ostream& out, const EnsembleCheckpoint& checkpoint);
EnsembleCheckpoint read_ensemble(std::istream& in);

void save_ensemble(const std::string& path, const EnsembleCheckpoint& checkpoint);
EnsembleCheckpoint load_ensemble(const std::string& path);

// Convenience: bundles the pieces of a training run.
EnsembleCheckpoint make_checkpoint(const TrainConfig& config,
                                   const ParallelTrainReport& report);

}  // namespace parpde::core
