#pragma once

// Minimal leveled logger. Thread-safe line output to stderr; intended for
// coarse progress reporting, not per-iteration tracing.

#include <sstream>
#include <string>

namespace parpde::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Parses "debug" | "info" | "warn" | "error" (case-sensitive). Returns false
// and leaves *out untouched on an unknown name.
bool parse_log_level(const std::string& name, LogLevel* out) noexcept;

// Emits one line "[level] message" atomically.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace parpde::util
