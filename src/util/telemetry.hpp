#pragma once

// Process-wide observability substrate: a thread-safe metrics registry
// (monotonic counters, gauges, fixed-bucket histograms), an RAII scoped-span
// tracer that emits Chrome trace-event JSON (chrome://tracing / Perfetto),
// cross-rank flow events linking each message's send to its receive, and
// small JSON/JSONL writers for the unified run report.
//
// Cost model: everything is off by default. A disabled Span costs one relaxed
// atomic load and a branch; counters are a single relaxed fetch_add and are
// always live (they are the source of the comm/compute accounting even when
// tracing is off). Span streams are tagged pid=rank (set per thread by the
// minimpi Environment via set_thread_rank) and tid=thread, so a multi-rank
// run opens in Perfetto as one process lane per rank.
//
// Clock / epoch semantics: every timestamp is now_us() — microseconds since
// one process-wide steady_clock epoch latched on first use. Because minimpi
// ranks are threads of this process they physically share that epoch, but the
// trace layer does NOT rely on it: mpi::Environment runs an NTP-style min-RTT
// offset handshake against rank 0 at startup (while tracing is enabled) and
// registers each rank's estimated offset here via set_rank_clock_offset.
// write_chrome_trace shifts every event onto rank 0's timeline using those
// offsets, so the merged trace stays causally aligned even if the substrate
// is later backed by per-process clocks. All timing in src/ outside util/
// must flow through now_us()/WallTimer (lint rule `raw-clock`) so this
// alignment covers every recorded duration.
//
// Metric names are dotted paths ("gemm.flops", "comm.bytes_sent",
// "halo.exchange_seconds"); the full catalogue lives in docs/observability.md.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace parpde::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// --- enablement ------------------------------------------------------------

// True while span tracing is active. The single relaxed-atomic branch every
// instrumentation site pays when telemetry is off.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Turns span collection on/off (counters are always live).
void set_enabled(bool on) noexcept;

// Tags the calling thread as minimpi rank `rank` (-1 = not a rank thread;
// such spans land in the shared "pool" process lane). Set by
// mpi::Environment::run for every rank thread.
void set_thread_rank(int rank) noexcept;
[[nodiscard]] int thread_rank() noexcept;

// Microseconds since the process-wide trace epoch. The epoch is a steady
// clock latched on first use; per-rank offsets registered through
// set_rank_clock_offset are applied at write_chrome_trace time, so callers
// always record raw local timestamps (see the epoch notes above).
[[nodiscard]] std::int64_t now_us() noexcept;

// --- metrics ---------------------------------------------------------------

// Monotonic counter (bytes, messages, flops, calls).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (queue depth, worker count).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus one
// overflow bucket. Observation is lock-free (relaxed atomics + CAS for
// sum/min/max); bounds are immutable after construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;  // +inf when empty
  [[nodiscard]] double max() const noexcept;  // -inf when empty
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Default latency bounds (seconds): 1us .. 10s, decade-and-a-third spaced.
[[nodiscard]] std::span<const double> default_seconds_bounds() noexcept;

// Named-metric registry. Lookup takes a mutex; hot paths cache the returned
// reference in a function-local static (references stay valid for the process
// lifetime; reset() zeroes values but never invalidates them).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` is used only on first creation; empty = default_seconds_bounds.
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds = {});

  // One JSON object holding every metric's current value (counters as
  // integers, gauges as doubles, histograms as {count,sum,min,max,buckets}).
  [[nodiscard]] std::string metrics_json() const;

  // Sorted (name, value) snapshot of all counters.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;

  // Zeroes every metric (benchmark / test isolation). Objects stay valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

// Shorthand for Registry::global().counter(name) etc.
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name,
                            std::span<const double> bounds = {}) {
  return Registry::global().histogram(name, bounds);
}

// --- scoped-span tracer ----------------------------------------------------

// RAII span: records a Chrome "complete" event ("ph":"X") covering its
// lifetime. When tracing is disabled construction is a relaxed load + branch
// and nothing is recorded. Spans nest naturally (stack order per thread).
class Span {
 public:
  // `category` must be a string literal (stored by pointer).
  Span(std::string name, const char* category) noexcept
      : active_(enabled()) {
    if (active_) {
      name_ = std::move(name);
      category_ = category;
      start_us_ = now_us();
    }
  }
  Span(const char* name, const char* category) noexcept : active_(enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      start_us_ = now_us();
    }
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early (idempotent).
  void finish() noexcept;

 private:
  bool active_ = false;
  std::int64_t start_us_ = 0;
  const char* category_ = nullptr;
  std::string name_;
};

// Records a span retroactively from explicit timestamps (both in now_us()
// units). Used where the span boundaries are only known after the fact, e.g.
// the halo-stall window of a receive that timed out at least once. No-op
// while tracing is disabled.
void emit_span(const char* name, const char* category, std::int64_t start_us,
               std::int64_t dur_us);

// --- cross-rank flow events ------------------------------------------------

// Process-unique, monotonically increasing flow id (>= 1; 0 means "no flow").
// minimpi stamps one on every message envelope while tracing is enabled so
// the trace can bind each send to its receive.
[[nodiscard]] std::uint64_t next_flow_id() noexcept;

// Records a Chrome flow-start ("ph":"s") / flow-finish ("ph":"f","bp":"e")
// event at now_us() on the calling thread. `name`+`category` must match
// between the two ends of a flow (Chrome binds on id+cat+name); minimpi uses
// the tag-registry owner string as the name. No-ops while tracing is off.
void record_flow_start(const char* name, const char* category,
                       std::uint64_t flow_id);
void record_flow_finish(const char* name, const char* category,
                        std::uint64_t flow_id);

// --- cross-rank clock alignment --------------------------------------------

// Registers rank `rank`'s estimated clock offset relative to rank 0
// (offset_us = rank0_now − rank_now at the same instant). Applied as a
// per-rank timestamp shift when the trace is written and emitted as
// "clock_sync" metadata. Installed by mpi::Environment's startup handshake.
void set_rank_clock_offset(int rank, std::int64_t offset_us);
[[nodiscard]] std::int64_t rank_clock_offset(int rank);
void clear_rank_clock_offsets();

// --- trace buffer management -----------------------------------------------

// Discards all collected trace events (keeps thread buffers registered).
void clear_trace();

// Total events currently buffered across all threads.
[[nodiscard]] std::size_t trace_event_count();

// Events discarded because a thread buffer hit its cap.
[[nodiscard]] std::uint64_t trace_dropped_events();

// Events dropped because recording re-entered itself on one thread (e.g. an
// instrumented subsystem called back into telemetry from inside a record).
[[nodiscard]] std::uint64_t trace_reentrant_drops();

// Writes the collected spans as one Chrome trace JSON object
// ({"traceEvents":[...]}) with per-rank process lanes, per-rank clock offsets
// applied, and flow events binding sends to receives. Returns false if the
// file cannot be opened or a write fails.
bool write_chrome_trace(const std::string& path);

// --- JSON helpers ----------------------------------------------------------

[[nodiscard]] std::string json_escape(const std::string& s);

// Minimal JSON object builder for report records (no nesting beyond raw()).
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, const char* value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, std::int64_t value);
  JsonObject& field(const std::string& key, std::uint64_t value);
  JsonObject& field(const std::string& key, int value);
  JsonObject& field(const std::string& key, bool value);
  // Inserts pre-serialized JSON as the value.
  JsonObject& raw(const std::string& key, const std::string& json);
  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key(const std::string& k);
  std::string body_ = "{";
  bool first_ = true;
};

// Line-oriented JSON (JSONL) writer for per-rank/per-epoch run reports.
// write_line is thread-safe.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  // True while the file opened successfully and no write has failed since.
  [[nodiscard]] bool ok() const noexcept {
    return file_ != nullptr && !error_;
  }
  void write_line(const std::string& json);

  // Flushes and closes the file; returns false if the open, any write, or
  // the final flush failed. Idempotent (repeat calls return the first
  // verdict). The destructor closes without reporting — call close() when
  // the caller must surface write failures (parpde_cli does).
  bool close();

 private:
  std::FILE* file_ = nullptr;
  bool error_ = false;
  bool opened_ = false;
  std::mutex mu_;
};

}  // namespace parpde::telemetry
