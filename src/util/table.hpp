#pragma once

// Aligned console tables and CSV output for the benchmark harnesses. Every
// figure/table reproduction prints its rows through this so the output format
// is uniform across benches.

#include <string>
#include <vector>

namespace parpde::util {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Adds a row; values must match the number of columns.
  void add_row(std::vector<std::string> values);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);
  static std::string fmt_sci(double value, int precision = 3);

  // Renders with aligned columns; `title` printed above if non-empty.
  [[nodiscard]] std::string to_string(const std::string& title = "") const;

  // Comma-separated values (header + rows).
  [[nodiscard]] std::string to_csv() const;

  // Prints to stdout.
  void print(const std::string& title = "") const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parpde::util
