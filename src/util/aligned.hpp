#pragma once

// 64-byte-aligned allocation for kernel workspaces. Every micro-kernel in
// src/tensor and src/backend loads its packed panels with full-width vector
// loads; std::vector's default allocator only guarantees 16 bytes on this
// ABI, which splits those loads across cache lines. AlignedVector pins the
// start of each workspace to a cache-line boundary (which is also the widest
// vector width we dispatch to, 64 bytes for AVX-512).
//
// Alignment of the *start* is a performance property, not a correctness one:
// all kernels use unaligned load instructions, so a mid-buffer window (e.g. a
// direct-B tile) staying unaligned is fine. Debug builds assert the invariant
// at the allocation site (see is_aligned64).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace parpde::util {

inline constexpr std::size_t kKernelAlignment = 64;

[[nodiscard]] inline bool is_aligned64(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (kKernelAlignment - 1)) == 0;
}

// Minimal C++17-style allocator forwarding to the aligned operator new.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    void* p = ::operator new(n * sizeof(T),
                             std::align_val_t{kKernelAlignment});
    assert(is_aligned64(p));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kKernelAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

// Drop-in vector whose data() is 64-byte aligned (workspace buffers only —
// element access semantics are unchanged).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace parpde::util
