#include "util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace parpde::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

thread_local int t_rank = -1;

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// --- trace collector -------------------------------------------------------

struct TraceEvent {
  std::string name;
  const char* category;
  std::int64_t ts_us;
  std::int64_t dur_us;
  int rank;
  int tid;
  char ph;                   // 'X' complete, 's' flow start, 'f' flow finish
  std::uint64_t flow_id;     // nonzero only for flow events
};

// Per-thread event sink. Appends lock the buffer's own mutex (uncontended on
// the fast path); write_chrome_trace locks every buffer, so no event is ever
// read while a live thread appends.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid = 0;
};

// Each thread's events stay capped so a forgotten long trace cannot exhaust
// memory; overflow is counted, not silently dropped.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct TraceCollector {
  std::mutex mu;  // guards `buffers` registration and `clock_offsets`
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> reentrant_drops{0};
  // (rank, offset_us) pairs from the Environment clock handshake; applied as
  // per-rank timestamp shifts when the trace is written.
  std::vector<std::pair<int, std::int64_t>> clock_offsets;

  static TraceCollector& instance() {
    static TraceCollector* c = new TraceCollector;  // never destroyed: thread
    return *c;                                      // buffers outlive main
  }

  ThreadBuffer& local() {
    thread_local ThreadBuffer* buffer = [this] {
      auto owned = std::make_unique<ThreadBuffer>();
      ThreadBuffer* raw = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      raw->tid = static_cast<int>(buffers.size());
      buffers.push_back(std::move(owned));
      return raw;
    }();
    return *buffer;
  }
};

// Re-entrancy guard: recording an event must never recurse into recording
// another (e.g. the comm validator emitting a span from inside a span flush).
// Reentrant attempts are dropped and counted rather than deadlocking on the
// per-thread buffer mutex.
thread_local bool t_in_record = false;

void record_event(std::string name, const char* category, std::int64_t ts_us,
                  std::int64_t dur_us, char ph = 'X',
                  std::uint64_t flow_id = 0) {
  auto& collector = TraceCollector::instance();
  if (t_in_record) {
    collector.reentrant_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t_in_record = true;
  ThreadBuffer& buffer = collector.local();
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    if (buffer.events.size() >= kMaxEventsPerThread) {
      collector.dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      buffer.events.push_back(TraceEvent{std::move(name), category, ts_us,
                                         dur_us, t_rank, buffer.tid, ph,
                                         flow_id});
    }
  }
  t_in_record = false;
}

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_rank(int rank) noexcept { t_rank = rank; }

int thread_rank() noexcept { return t_rank; }

std::int64_t now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

// --- Gauge -----------------------------------------------------------------

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

// --- Histogram -------------------------------------------------------------

namespace {

void atomic_accumulate(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_accumulate(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::span<const double> default_seconds_bounds() noexcept {
  static const double bounds[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                  3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,
                                  10.0};
  return bounds;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry* registry = new Registry;  // never destroyed: hot paths
  return *registry;                          // cache references
}

namespace {

template <typename T, typename Make>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& v,
                  const std::string& name, Make make) {
  for (auto& [n, metric] : v) {
    if (n == name) return *metric;
  }
  v.emplace_back(name, make());
  return *v.back().second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(const std::string& name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(histograms_, name, [&] {
    const auto b = bounds.empty() ? default_seconds_bounds() : bounds;
    return std::make_unique<Histogram>(std::vector<double>(b.begin(), b.end()));
  });
}

std::string Registry::metrics_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonObject obj;
  for (const auto& [name, c] : counters_) obj.field(name, c->value());
  for (const auto& [name, g] : gauges_) obj.field(name, g->value());
  for (const auto& [name, h] : histograms_) {
    JsonObject hist;
    hist.field("count", h->count());
    hist.field("sum", h->sum());
    if (h->count() > 0) {
      hist.field("min", h->min());
      hist.field("max", h->max());
    }
    std::string buckets = "[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) buckets += ',';
      buckets += std::to_string(counts[i]);
    }
    buckets += ']';
    hist.raw("buckets", buckets);
    obj.raw(name, hist.str());
  }
  return obj.str();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// --- spans / trace ---------------------------------------------------------

void Span::finish() noexcept {
  if (!active_) return;
  active_ = false;
  const std::int64_t end_us = now_us();
  record_event(std::move(name_), category_, start_us_,
               std::max<std::int64_t>(0, end_us - start_us_));
}

void emit_span(const char* name, const char* category, std::int64_t start_us,
               std::int64_t dur_us) {
  if (!enabled()) return;
  record_event(name, category, start_us, std::max<std::int64_t>(0, dur_us));
}

// --- flow events -----------------------------------------------------------

std::uint64_t next_flow_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void record_flow_start(const char* name, const char* category,
                       std::uint64_t flow_id) {
  if (!enabled() || flow_id == 0) return;
  record_event(name, category, now_us(), 0, 's', flow_id);
}

void record_flow_finish(const char* name, const char* category,
                        std::uint64_t flow_id) {
  if (!enabled() || flow_id == 0) return;
  record_event(name, category, now_us(), 0, 'f', flow_id);
}

// --- clock alignment -------------------------------------------------------

void set_rank_clock_offset(int rank, std::int64_t offset_us) {
  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> lock(collector.mu);
  for (auto& [r, off] : collector.clock_offsets) {
    if (r == rank) {
      off = offset_us;
      return;
    }
  }
  collector.clock_offsets.emplace_back(rank, offset_us);
}

std::int64_t rank_clock_offset(int rank) {
  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> lock(collector.mu);
  for (const auto& [r, off] : collector.clock_offsets) {
    if (r == rank) return off;
  }
  return 0;
}

void clear_rank_clock_offsets() {
  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> lock(collector.mu);
  collector.clock_offsets.clear();
}

void clear_trace() {
  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> registry_lock(collector.mu);
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
  collector.dropped.store(0, std::memory_order_relaxed);
  collector.reentrant_drops.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> registry_lock(collector.mu);
  std::size_t n = 0;
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

std::uint64_t trace_dropped_events() {
  return TraceCollector::instance().dropped.load(std::memory_order_relaxed);
}

std::uint64_t trace_reentrant_drops() {
  return TraceCollector::instance().reentrant_drops.load(
      std::memory_order_relaxed);
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  auto& collector = TraceCollector::instance();
  std::lock_guard<std::mutex> registry_lock(collector.mu);

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  // Process-name metadata: one lane per rank plus a shared lane for helper
  // threads (rank -1).
  std::vector<int> ranks_seen;
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const auto& e : buffer->events) {
      if (std::find(ranks_seen.begin(), ranks_seen.end(), e.rank) ==
          ranks_seen.end()) {
        ranks_seen.push_back(e.rank);
      }
    }
  }
  std::sort(ranks_seen.begin(), ranks_seen.end());
  const auto offset_of = [&collector](int rank) -> std::int64_t {
    for (const auto& [r, off] : collector.clock_offsets) {
      if (r == rank) return off;
    }
    return 0;
  };
  for (const int rank : ranks_seen) {
    const std::string label =
        rank < 0 ? "shared threads" : "rank " + std::to_string(rank);
    std::fprintf(f,
                 "%s{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",", rank, label.c_str());
    first = false;
    // Record the clock offset applied to this lane so downstream tools
    // (tools/parpde_trace.py) know the timestamps are already rank-aligned.
    std::fprintf(f,
                 ",{\"ph\":\"M\",\"name\":\"clock_sync\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"offset_us\":%lld,\"applied\":true}}",
                 rank, static_cast<long long>(offset_of(rank)));
  }
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const auto& e : buffer->events) {
      const std::int64_t ts = e.ts_us + offset_of(e.rank);
      if (e.ph == 'X') {
        std::fprintf(f,
                     "%s{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\","
                     "\"ts\":%lld,\"dur\":%lld,\"pid\":%d,\"tid\":%d}",
                     first ? "" : ",", json_escape(e.name).c_str(), e.category,
                     static_cast<long long>(ts),
                     static_cast<long long>(e.dur_us), e.rank, e.tid);
      } else {
        // Flow events: "s" opens a flow at the send, "f" with bp:"e" closes
        // it at the receive; Chrome/Perfetto bind the two on id+cat+name.
        std::fprintf(f,
                     "%s{\"ph\":\"%c\",%s\"name\":\"%s\",\"cat\":\"%s\","
                     "\"id\":%llu,\"ts\":%lld,\"pid\":%d,\"tid\":%d}",
                     first ? "" : ",", e.ph,
                     e.ph == 'f' ? "\"bp\":\"e\"," : "",
                     json_escape(e.name).c_str(), e.category,
                     static_cast<unsigned long long>(e.flow_id),
                     static_cast<long long>(ts), e.rank, e.tid);
      }
      first = false;
    }
  }
  std::fputs("]}\n", f);
  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// --- JSON helpers ----------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(const std::string& k) {
  if (!first_) body_ += ',';
  first_ = false;
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::field(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, const char* value) {
  return field(k, std::string(value));
}

JsonObject& JsonObject::field(const std::string& k, double value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  body_ += buf;
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, int value) {
  return field(k, static_cast<std::int64_t>(value));
}

JsonObject& JsonObject::field(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(const std::string& k, const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

JsonlWriter::JsonlWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")), opened_(file_ != nullptr) {}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlWriter::write_line(const std::string& json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (std::fputs(json.c_str(), file_) < 0 || std::fputc('\n', file_) == EOF) {
    error_ = true;
  }
}

bool JsonlWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0 || std::ferror(file_) != 0) error_ = true;
    if (std::fclose(file_) != 0) error_ = true;
    file_ = nullptr;
  }
  return opened_ && !error_;
}

}  // namespace parpde::telemetry
