#pragma once

// Wall-clock timing helpers built on std::chrono::steady_clock.

#include <chrono>

namespace parpde::util {

// Stopwatch measuring elapsed wall time since construction or last reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple start/stop windows (e.g. "time spent in
// communication" summed over all exchanges of a run).
class AccumulatingTimer {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }
  void add(double seconds) { total_ += seconds; }
  void reset() { total_ = 0.0; }
  [[nodiscard]] double seconds() const { return total_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace parpde::util
