#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace parpde::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(values));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(columns_);
  std::size_t total = 2;
  for (const auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace parpde::util
