#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace parpde::util {

namespace {

// Perceptual density ramp, light to dark.
constexpr const char kRamp[] = " .:-=+*#%@";
constexpr int kRampSize = static_cast<int>(sizeof(kRamp)) - 1;

void check_frame(const Tensor& frame, std::int64_t channel) {
  if (frame.ndim() != 3 || channel < 0 || channel >= frame.dim(0)) {
    throw std::invalid_argument("ascii_plot: need [C,H,W] frame and valid channel");
  }
}

// Average-pools the channel to at most (rows x cols) and renders with the
// given range.
std::string render_plane(const Tensor& frame, std::int64_t channel, int rows,
                         int cols, double lo, double hi) {
  const auto h = frame.dim(1), w = frame.dim(2);
  rows = static_cast<int>(std::min<std::int64_t>(rows, h));
  cols = static_cast<int>(std::min<std::int64_t>(cols, w));
  const double span = hi > lo ? hi - lo : 1.0;
  std::ostringstream out;
  for (int r = 0; r < rows; ++r) {
    const std::int64_t y0 = r * h / rows;
    const std::int64_t y1 = std::max<std::int64_t>(y0 + 1, (r + 1) * h / rows);
    for (int c = 0; c < cols; ++c) {
      const std::int64_t x0 = c * w / cols;
      const std::int64_t x1 = std::max<std::int64_t>(x0 + 1, (c + 1) * w / cols);
      double acc = 0.0;
      for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = x0; x < x1; ++x) {
          acc += frame.at(channel, y, x);
        }
      }
      acc /= static_cast<double>((y1 - y0) * (x1 - x0));
      const double t = std::clamp((acc - lo) / span, 0.0, 1.0);
      const int idx = std::min(kRampSize - 1,
                               static_cast<int>(t * kRampSize));
      out << kRamp[idx];
    }
    out << '\n';
  }
  return out.str();
}

void field_range(const Tensor& frame, std::int64_t channel, double& lo,
                 double& hi) {
  const auto plane = frame.dim(1) * frame.dim(2);
  const float* p = frame.data() + channel * plane;
  lo = hi = p[0];
  for (std::int64_t i = 1; i < plane; ++i) {
    lo = std::min<double>(lo, p[i]);
    hi = std::max<double>(hi, p[i]);
  }
}

}  // namespace

std::string render_field(const Tensor& frame, std::int64_t channel,
                         const AsciiPlotOptions& options) {
  check_frame(frame, channel);
  double lo = options.lo, hi = options.hi;
  if (!(lo < hi)) field_range(frame, channel, lo, hi);
  return render_plane(frame, channel, options.max_height, options.max_width, lo,
                      hi);
}

std::string render_comparison(const Tensor& prediction, const Tensor& target,
                              std::int64_t channel, const std::string& label,
                              const AsciiPlotOptions& options) {
  check_frame(prediction, channel);
  check_frame(target, channel);
  if (!prediction.same_shape(target)) {
    throw std::invalid_argument("render_comparison: shape mismatch");
  }
  double lo_t, hi_t, lo_p, hi_p;
  field_range(target, channel, lo_t, hi_t);
  field_range(prediction, channel, lo_p, hi_p);
  const double lo = std::min(lo_t, lo_p);
  const double hi = std::max(hi_t, hi_p);

  AsciiPlotOptions shared = options;
  shared.lo = lo;
  shared.hi = hi;
  const std::string left = render_field(target, channel, shared);
  const std::string right = render_field(prediction, channel, shared);

  // Stitch the two renders side by side; pad to the actual render width.
  const auto cols = static_cast<std::size_t>(
      std::min<std::int64_t>(shared.max_width, target.dim(2)));
  std::ostringstream out;
  out << label << "  [" << lo << ", " << hi << "]\n";
  out << "target" << std::string(cols > 6 ? cols - 6 + 2 : 2, ' ')
      << "| prediction\n";
  std::istringstream ls(left), rs(right);
  std::string ll, rl;
  while (std::getline(ls, ll) && std::getline(rs, rl)) {
    if (ll.size() < cols + 2) ll.resize(cols + 2, ' ');
    out << ll << "| " << rl << '\n';
  }
  return out.str();
}

}  // namespace parpde::util
