#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace parpde::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace parpde::util
