#pragma once

// Streaming statistics (Welford) and simple percentile helpers used by the
// metric collectors and benchmark harnesses.

#include <cstddef>
#include <vector>

namespace parpde::util {

// Single-pass mean/variance/min/max accumulator.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample (q in [0,1]); copies and sorts internally.
double percentile(std::vector<double> values, double q);

}  // namespace parpde::util
