#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace parpde::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Options::lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return lookup(key).value_or(fallback);
}

int Options::get_int(const std::string& key, int fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  return std::stoi(*v);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace parpde::util
