#pragma once

// Terminal rendering of 2-d scalar fields — the text-mode stand-in for the
// paper's Fig. 3 color plots. Maps values to a density ramp, with optional
// shared scaling so a prediction and its target render comparably.

#include <string>

#include "tensor/tensor.hpp"

namespace parpde::util {

struct AsciiPlotOptions {
  int max_width = 64;   // columns in characters (field is downsampled)
  int max_height = 32;  // rows in characters
  // When both are set (lo < hi) the ramp uses this fixed range; otherwise the
  // field's own min/max is used.
  double lo = 0.0;
  double hi = 0.0;
};

// Renders channel `channel` of a [C, H, W] tensor.
std::string render_field(const Tensor& frame, std::int64_t channel,
                         const AsciiPlotOptions& options = {});

// Renders prediction and target side by side with a shared value range,
// annotated with the channel name/min/max.
std::string render_comparison(const Tensor& prediction, const Tensor& target,
                              std::int64_t channel, const std::string& label,
                              const AsciiPlotOptions& options = {});

}  // namespace parpde::util
