#include "util/thread_pool.hpp"

#include "util/telemetry.hpp"
#include "verify/schedule.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace parpde::util {

namespace {

// Set while a thread (worker or caller) is executing a chunk body; nested
// parallel_for calls detect it and run inline instead of deadlocking on the
// shared pool.
thread_local bool t_in_chunk = false;

}  // namespace

struct ThreadPool::Impl {
  struct Job {
    const Body* body = nullptr;
    std::int64_t n = 0;
    std::int64_t chunk = 1;
    std::int64_t next = 0;    // first unclaimed index (guarded by mu)
    std::int64_t active = 0;  // chunks currently executing (guarded by mu)
    std::exception_ptr error;  // first failure, rethrown on the caller
    // parpde-mc job id (0 = no schedule installed): chunk claims are hashed
    // into the schedule trace and may be jittered (verify/schedule.hpp).
    std::uint64_t verify_id = 0;

    [[nodiscard]] bool exhausted() const { return next >= n; }
    [[nodiscard]] bool finished() const { return exhausted() && active == 0; }
  };

  std::mutex mu;
  std::condition_variable work_ready;   // workers wait here
  std::condition_variable job_done;     // callers wait here
  std::deque<Job*> jobs;
  std::vector<std::thread> threads;
  bool stopping = false;

  // Claims one chunk of `job` and runs it outside the lock. The lock must be
  // held on entry and is held again on return.
  void run_chunk(Job& job, std::unique_lock<std::mutex>& lock) {
    const std::int64_t begin = job.next;
    const std::int64_t end = std::min(job.n, begin + job.chunk);
    job.next = end;
    ++job.active;
    lock.unlock();
    if (job.verify_id != 0) verify::hook_pool_chunk(job.verify_id, begin);
    static telemetry::Counter& chunks = telemetry::counter("pool.chunks");
    chunks.add(1);
    telemetry::Span span("pool.chunk", "pool");
    t_in_chunk = true;
    try {
      (*job.body)(begin, end);
    } catch (...) {
      t_in_chunk = false;
      lock.lock();
      if (!job.error) job.error = std::current_exception();
      job.next = job.n;  // cancel remaining chunks
      --job.active;
      if (job.finished()) job_done.notify_all();
      return;
    }
    t_in_chunk = false;
    lock.lock();
    --job.active;
    if (job.finished()) job_done.notify_all();
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      Job* job = nullptr;
      for (Job* candidate : jobs) {
        if (!candidate->exhausted()) {
          job = candidate;
          break;
        }
      }
      if (job != nullptr) {
        run_chunk(*job, lock);
        continue;
      }
      if (stopping) return;
      work_ready.wait(lock);
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(new Impl) { start(workers); }

ThreadPool::~ThreadPool() {
  stop();
  delete impl_;
}

void ThreadPool::start(int workers) {
  worker_count_ = std::max(0, workers);
  impl_->stopping = false;
  impl_->threads.reserve(static_cast<std::size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& t : impl_->threads) t.join();
  impl_->threads.clear();
  worker_count_ = 0;
}

void ThreadPool::resize(int workers) {
  if (workers == worker_count_) return;
  stop();
  start(workers);
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t grain,
                              const Body& body) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  if (worker_count_ == 0 || n <= grain || t_in_chunk) {
    body(0, n);
    return;
  }

  // At least `grain` indices per chunk, at most ~4 chunks per thread so the
  // claim overhead stays negligible while stragglers can still be balanced.
  const std::int64_t max_chunks =
      std::min<std::int64_t>((n + grain - 1) / grain, 4 * degree());
  Impl::Job job;
  job.body = &body;
  job.n = n;
  job.chunk = (n + max_chunks - 1) / max_chunks;
  if (verify::active()) job.verify_id = verify::hook_pool_job_begin();

  static telemetry::Counter& loops = telemetry::counter("pool.parallel_for");
  static telemetry::Gauge& depth = telemetry::gauge("pool.queue_depth");
  loops.add(1);
  telemetry::Span span("pool.parallel_for", "pool");

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->jobs.push_back(&job);
  depth.set(static_cast<double>(impl_->jobs.size()));
  impl_->work_ready.notify_all();
  while (!job.exhausted()) impl_->run_chunk(job, lock);
  while (!job.finished()) impl_->job_done.wait(lock);
  impl_->jobs.erase(std::find(impl_->jobs.begin(), impl_->jobs.end(), &job));
  depth.set(static_cast<double>(impl_->jobs.size()));
  lock.unlock();

  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::configure_global(int workers) { global().resize(workers); }

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::resolve_workers(int threads_per_rank, int ranks) {
  ranks = std::max(1, ranks);
  const int hw = hardware_threads();
  const int cap = std::max(1, hw / ranks);
  int per_rank = threads_per_rank > 0 ? std::min(threads_per_rank, cap) : cap;
  return std::max(0, per_rank * ranks - ranks);
}

}  // namespace parpde::util
