#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace parpde::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

bool parse_log_level(const std::string& name, LogLevel* out) noexcept {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn") {
    *out = LogLevel::kWarn;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace parpde::util
