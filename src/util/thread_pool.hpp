#pragma once

// Fixed-size intra-rank thread pool with a deterministic parallel_for.
//
// The pool parallelizes only over *independent outputs* (row/column blocks of
// a GEMM, samples of a batch, channel planes): no reduction is ever split
// across workers, so results are bit-identical for any worker count — the
// property the parallel trainer's isolated-vs-concurrent equivalence tests
// rely on (see docs/performance.md).
//
// Concurrency model: one process-wide pool shared by every caller, including
// the minimpi rank threads of ExecutionMode::kConcurrent. Multiple threads may
// issue parallel_for calls simultaneously; each caller executes chunks of its
// own loop while workers drain chunks of any pending loop. The worker count is
// therefore a *process* budget: with R rank threads and a total hardware
// budget of T threads, configure T - R workers so the process never
// oversubscribes (ThreadPool::resolve_workers encodes this rule).

#include <cstdint>
#include <type_traits>

namespace parpde::util {

class ThreadPool {
 public:
  // Chunk body: half-open index range [begin, end). A Body is a *non-owning*
  // reference to the caller's callable (two raw pointers, no heap) — safe
  // because parallel_for blocks until every chunk has run, so the referenced
  // callable outlives all invocations. This keeps the steady-state inference
  // loop free of the per-call std::function allocation the previous type
  // paid on every GEMM / conv / activation fan-out.
  class Body {
   public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, Body> &&
                  std::is_invocable_v<const F&, std::int64_t, std::int64_t>>>
    Body(const F& f) noexcept  // NOLINT(google-explicit-constructor)
        : obj_(&f), invoke_([](const void* obj, std::int64_t begin,
                               std::int64_t end) {
            (*static_cast<const F*>(obj))(begin, end);
          }) {}

    void operator()(std::int64_t begin, std::int64_t end) const {
      invoke_(obj_, begin, end);
    }

   private:
    const void* obj_;
    void (*invoke_)(const void*, std::int64_t, std::int64_t);
  };

  // `workers` is the number of helper threads (0 = everything runs inline on
  // the calling thread).
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const noexcept { return worker_count_; }
  // Maximum useful parallelism of a single parallel_for: workers + caller.
  [[nodiscard]] int degree() const noexcept { return worker_count_ + 1; }

  // Runs body over [0, n) in contiguous chunks of at least `grain` indices.
  // Chunks are disjoint, so any body whose iterations write independent
  // outputs produces the same result at every worker count. Ranges smaller
  // than `grain` (or nested calls from inside a chunk) run inline. Exceptions
  // thrown by the body are rethrown on the calling thread.
  void parallel_for(std::int64_t n, std::int64_t grain, const Body& body);

  // Stops and rejoins all workers, then restarts with the new count. Must not
  // be called while any parallel_for is in flight; intended for trainer /
  // benchmark setup code.
  void resize(int workers);

  // The process-wide pool used by the GEMM and convolution kernels. Starts
  // with 0 workers (fully inline) until configured.
  static ThreadPool& global();

  // resize() on the global pool.
  static void configure_global(int workers);

  // std::thread::hardware_concurrency with a floor of 1.
  static int hardware_threads();

  // Worker count for `ranks` concurrent rank threads each asking for
  // `threads_per_rank` intra-rank threads (0 = auto). Caps the total at the
  // hardware concurrency: the rank threads themselves count toward the
  // budget, so the result is total_threads - ranks, floored at 0.
  static int resolve_workers(int threads_per_rank, int ranks);

 private:
  struct Impl;
  Impl* impl_;
  int worker_count_ = 0;

  void start(int workers);
  void stop();
};

}  // namespace parpde::util
