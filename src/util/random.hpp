#pragma once

// Deterministic random number generation. Every stochastic component takes an
// explicit seed so that parallel and sequential runs are reproducible.

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

namespace parpde::util {

// Thin wrapper around a 64-bit Mersenne Twister with convenience fills.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent stream, e.g. one per MPI rank.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    // SplitMix64-style mixing of (seed, stream) into a new seed.
    std::uint64_t z = seed_mix_ + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  void fill_uniform(std::span<float> out, float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    for (float& v : out) v = dist(engine_);
  }

  void fill_normal(std::span<float> out, float mean, float stddev) {
    std::normal_distribution<float> dist(mean, stddev);
    for (float& v : out) v = dist(engine_);
  }

  template <typename T>
  void shuffle(std::span<T> values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  // Checkpointable engine state (the standard's textual mt19937_64 stream
  // format — exact, portable, and stable across runs). restore_state makes
  // the generator continue bit-identically from where serialize_state was
  // taken; the fork() base is deliberately not part of the state (trainers
  // fork before training starts, never across a checkpoint boundary).
  [[nodiscard]] std::string serialize_state() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }
  void restore_state(const std::string& state) {
    std::istringstream in(state);
    in >> engine_;
    if (!in) throw std::runtime_error("Rng::restore_state: malformed state");
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_mix_ = engine_();
};

}  // namespace parpde::util
