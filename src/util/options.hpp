#pragma once

// Tiny command-line option parser for the examples and benchmark harnesses.
// Accepts "--key=value" and "--flag" arguments; unknown positional arguments
// are collected separately.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parpde::util {

class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv);

  // Explicitly sets/overrides an option (used by tests).
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Reads an environment variable as bool ("1", "true", "yes" → true).
bool env_flag(const char* name, bool fallback = false);

// Reads an environment variable as int.
int env_int(const char* name, int fallback);

}  // namespace parpde::util
