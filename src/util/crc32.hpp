#pragma once

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant): the
// integrity check used by the message-corruption detector (minimpi/fault) and
// the length+CRC framing of model and training checkpoints. Table-driven,
// no dependencies; ~0.5 GB/s, fast enough for checkpoint-sized payloads.

#include <cstddef>
#include <cstdint>

namespace parpde::util {

// CRC of one contiguous buffer. `seed` chains multi-buffer computations:
// crc32(b, nb, crc32(a, na)) == crc of a||b.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

// Incremental accumulator for streamed payloads.
class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept {
    value_ = crc32(data, size, value_);
  }
  [[nodiscard]] std::uint32_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace parpde::util
