#include "verify/explore.hpp"

#ifndef PARPDE_VERIFY_OFF

#include <algorithm>
#include <exception>
#include <set>
#include <utility>

namespace parpde::verify {

namespace {

// RAII: whatever happens inside the oracle, the schedule comes back out.
struct Installed {
  explicit Installed(Schedule s) { install(std::move(s)); }
  ~Installed() { uninstall(); }
  Installed(const Installed&) = delete;
  Installed& operator=(const Installed&) = delete;
};

// One shrink trial: does the oracle still diverge under `s`?
bool diverges(const Oracle& oracle, std::uint64_t reference_hash,
              const Schedule& s) {
  Installed guard(s);
  try {
    return oracle() != reference_hash;
  } catch (const std::exception&) {
    return true;
  }
}

}  // namespace

ExploreResult explore(const Oracle& oracle, const ExploreOptions& options) {
  ExploreResult res;
  const int max_runs =
      options.max_runs > 0 ? options.max_runs : 4 * options.target_distinct;

  // Reference run: schedule installed but inert (p=0, no yields), so the
  // trace signature machinery observes the baseline interleaving too.
  Schedule ref;
  ref.seed = options.base_seed;
  ref.perturb_pct = 0;
  ref.yields = false;
  std::set<std::uint64_t> signatures;
  {
    Installed guard(ref);
    try {
      res.reference_hash = oracle();
    } catch (const std::exception& e) {
      res.failed = true;
      res.failure = std::string("reference run failed: ") + e.what();
      res.failing_schedule = ref;
      return res;
    }
    const RunReport rep = report();
    signatures.insert(rep.trace_hash);
    res.order_sensitive += rep.order_sensitive;
  }
  res.runs = 1;
  res.distinct = static_cast<int>(signatures.size());

  for (int i = 1; res.runs < max_runs && res.distinct < options.target_distinct;
       ++i) {
    Schedule s;
    s.seed = options.base_seed + static_cast<std::uint64_t>(i);
    s.perturb_pct = options.perturb_pct;
    s.yields = options.yields;
    Installed guard(s);
    std::uint64_t hash = 0;
    try {
      hash = oracle();
    } catch (const std::exception& e) {
      res.failed = true;
      res.failure = e.what();
      res.failing_schedule = s;
      ++res.runs;
      return res;
    }
    const RunReport rep = report();
    ++res.runs;
    signatures.insert(rep.trace_hash);
    res.distinct = static_cast<int>(signatures.size());
    res.order_sensitive += rep.order_sensitive;
    res.perturbed += rep.perturbed;
    if (hash != res.reference_hash) {
      res.failed = true;
      res.failure = "output diverged from reference (bit-identity violated)";
      res.failing_schedule = s;
      return res;
    }
  }
  return res;
}

ShrinkResult shrink(const Oracle& oracle, std::uint64_t reference_hash,
                    const Schedule& failing, int max_trials) {
  ShrinkResult out;
  out.schedule = failing;

  // Re-run the failing schedule to (a) confirm it replays and (b) collect
  // the delivery keys whose perturbation actually reordered something.
  std::vector<std::uint64_t> keys;
  {
    Installed guard(failing);
    bool reproduced = false;
    try {
      reproduced = oracle() != reference_hash;
    } catch (const std::exception&) {
      reproduced = true;
    }
    keys = report().fired_keys;
    ++out.trials;
    if (!reproduced) return out;  // flaky beyond our schedule control
  }
  out.reproduced = true;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Pin the fired keys as an explicit replay set; drop yield jitter if the
  // divergence survives without it (it should: only deliveries mutate state).
  Schedule base = failing;
  base.yields = false;
  base.only = keys;
  ++out.trials;
  if (!diverges(oracle, reference_hash, base)) {
    base.yields = failing.yields;
    ++out.trials;
    if (!diverges(oracle, reference_hash, base)) {
      return out;  // not expressible as a pure delivery replay; keep original
    }
  }
  out.schedule = base;

  auto trial = [&](const std::vector<std::uint64_t>& subset) {
    Schedule t = base;
    t.only = subset;
    ++out.trials;
    return diverges(oracle, reference_hash, t);
  };

  // Fast path: a single culprit key is the common case for an order bug.
  std::vector<std::uint64_t> cur = base.only;
  for (const std::uint64_t k : cur) {
    if (out.trials >= max_trials) break;
    if (trial({k})) {
      out.schedule.only = {k};
      return out;
    }
  }

  // ddmin: split into n chunks, keep any failing chunk or failing complement.
  std::size_t n = 2;
  while (cur.size() >= 2 && n <= cur.size() && out.trials < max_trials) {
    const std::size_t chunk = (cur.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < cur.size() && out.trials < max_trials;
         start += chunk) {
      const std::size_t stop = std::min(cur.size(), start + chunk);
      std::vector<std::uint64_t> subset(cur.begin() + start,
                                        cur.begin() + stop);
      if (trial(subset)) {
        cur = std::move(subset);
        n = 2;
        reduced = true;
        break;
      }
      std::vector<std::uint64_t> complement;
      complement.reserve(cur.size() - subset.size());
      complement.insert(complement.end(), cur.begin(), cur.begin() + start);
      complement.insert(complement.end(), cur.begin() + stop, cur.end());
      if (!complement.empty() && trial(complement)) {
        cur = std::move(complement);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= cur.size()) break;
      n = std::min(cur.size(), n * 2);
    }
  }
  out.schedule.only = cur;
  return out;
}

}  // namespace parpde::verify

#endif  // PARPDE_VERIFY_OFF
