#pragma once

// parpde-mc exploration driver: runs an invariant oracle under many seeded
// schedules, prunes equivalent interleavings by their happens-before trace
// signature (DPOR-lite), and on failure shrinks to a minimal replayable
// PARPDE_SCHEDULE spec (ddmin over the fired delivery-perturbation keys).
//
// An Oracle runs one complete scenario (a rollout, a training epoch, a
// checkpoint/kill/resume cycle) under whatever schedule is currently
// installed and returns a hash of every output that must be bit-identical
// across schedules. It throws on any protocol failure — deadlock (the
// validator watchdog converts hangs into validate::DeadlockError), mailbox
// leak, corrupt result. Oracles must be rerunnable: explore() and shrink()
// call them dozens to hundreds of times.
//
// Not compiled under -DPARPDE_VERIFY=OFF (the whole verify subsystem is
// absent from that build).

#include <cstdint>
#include <functional>
#include <string>

#include "verify/schedule.hpp"

namespace parpde::verify {

using Oracle = std::function<std::uint64_t()>;

struct ExploreOptions {
  std::uint64_t base_seed = 1;
  int target_distinct = 50;  // stop once this many distinct traces were seen
  int max_runs = 0;          // hard run cap; 0 = 4 * target_distinct
  int perturb_pct = 60;
  bool yields = true;
};

struct ExploreResult {
  int runs = 0;              // oracle executions (including the reference)
  int distinct = 0;          // vector-clock-distinct schedules observed
  std::uint64_t reference_hash = 0;
  std::uint64_t order_sensitive = 0;  // summed across runs
  std::uint64_t perturbed = 0;        // delivery reorderings applied, summed
  bool failed = false;
  std::string failure;       // what() / mismatch description
  Schedule failing_schedule;  // meaningful iff failed
};

// Runs the oracle once unperturbed (seed=base_seed, p=0, no yields) to
// establish the reference output hash, then under seeded perturbation
// schedules until target_distinct distinct trace signatures were explored or
// max_runs is exhausted. Stops at the first divergence: an oracle exception
// or an output hash differing from the reference.
ExploreResult explore(const Oracle& oracle, const ExploreOptions& options);

struct ShrinkResult {
  Schedule schedule;   // minimal reproducing spec (replay via `only=` keys)
  int trials = 0;      // oracle executions spent shrinking
  bool reproduced = false;  // false: the failure did not replay at all
};

// Minimizes a failing schedule: re-runs it to collect the delivery keys that
// actually fired, pins them as an `only=` replay set, and ddmin-reduces that
// set to a minimal subset that still makes the oracle diverge from
// `reference_hash`. Yield jitter is dropped first — a reproduction that
// survives on delivery reordering alone is the strongest possible replay.
ShrinkResult shrink(const Oracle& oracle, std::uint64_t reference_hash,
                    const Schedule& failing, int max_trials = 64);

}  // namespace parpde::verify
