#pragma once

// Vector clocks for the parpde-mc happens-before auditor (docs/
// static-analysis.md, "schedule-space model checking"). One component per
// rank; an event on rank r ticks component r, and receiving a message joins
// the sender's clock at send time. Two events are concurrent iff neither
// clock dominates the other — the condition under which their relative order
// is a genuine scheduling degree of freedom rather than a consequence of the
// program.
//
// Clocks grow on demand (ensure) so the scheduler can stamp events before it
// knows the final rank count, and comparisons treat missing components as 0.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parpde::verify {

// a[i] <= b[i] for every component (missing components read as 0).
inline bool clock_leq(const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint32_t bi = i < b.size() ? b[i] : 0;
    if (a[i] > bi) return false;
  }
  return true;
}

// Neither clock dominates the other: the stamped events are concurrent.
inline bool clocks_concurrent(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  return !clock_leq(a, b) && !clock_leq(b, a);
}

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t ranks) : c_(ranks, 0) {}

  void ensure(std::size_t ranks) {
    if (c_.size() < ranks) c_.resize(ranks, 0);
  }

  // Local event on rank `r`.
  void tick(std::size_t r) {
    ensure(r + 1);
    ++c_[r];
  }

  // Receive edge: component-wise max with the sender's clock.
  void join(const std::vector<std::uint32_t>& other) {
    ensure(other.size());
    for (std::size_t i = 0; i < other.size(); ++i) {
      c_[i] = std::max(c_[i], other[i]);
    }
  }
  void join(const VectorClock& other) { join(other.c_); }

  [[nodiscard]] std::uint32_t at(std::size_t r) const {
    return r < c_.size() ? c_[r] : 0;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& components() const {
    return c_;
  }

  // this happened-before (or equals) other.
  [[nodiscard]] bool leq(const VectorClock& other) const {
    return clock_leq(c_, other.c_);
  }
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return clocks_concurrent(c_, other.c_);
  }
  [[nodiscard]] bool happens_before(const VectorClock& other) const {
    return leq(other) && !other.leq(*this);
  }

  [[nodiscard]] std::string describe() const {
    std::string s = "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i != 0) s += ",";
      s += std::to_string(c_[i]);
    }
    return s + "]";
  }

 private:
  std::vector<std::uint32_t> c_;
};

}  // namespace parpde::verify
