#pragma once

// parpde-mc: the deterministic schedule controller (docs/static-analysis.md,
// "schedule-space model checking").
//
// The minimpi transport calls the hook_* functions below at every scheduling
// decision point: message insertion into a mailbox (delivery order), receive
// matching (wakeup order / any-source choice), barrier arrival and release,
// and thread-pool chunk claiming. With a Schedule installed, each decision is
// a pure function of a SplitMix64 seed and a *stable key* derived from what
// the event is — (destination, source, tag, per-channel sequence number) for
// deliveries — never from wall-clock arrival order. That makes every explored
// schedule replayable: the same PARPDE_SCHEDULE spec fires the same
// perturbations no matter how the OS interleaves the threads.
//
// The only delivery perturbation is *front-running*: a selected message is
// inserted at the earliest legal queue slot (just after the last queued
// message of its own (source, tag) channel) instead of at the back. This
// preserves the non-overtaking guarantee the halo protocol relies on, and it
// cannot introduce deadlock or starvation — the set of queued messages is
// unchanged, only their relative order across channels, so any receive that
// could complete still completes.
//
// Alongside the perturbations the controller maintains per-rank vector
// clocks (send/recv/barrier edges) and uses them for DPOR-lite pruning — the
// trace signature hashes the observed happens-before-relevant orders
// (per-mailbox delivery order, per-rank receive sequence, barrier arrival
// order, pool chunk claims), so two interleavings that only differ in ways no
// rank can observe collapse to one signature — and to flag *order-sensitive
// receives*: an any-source match whose candidate messages are pairwise
// concurrent, i.e. a value that genuinely depends on which rank's message
// drains first.
//
// With -DPARPDE_VERIFY=OFF every hook below compiles to a constexpr no-op
// (the call sites fold away entirely); with the default ON build but no
// schedule installed, each hook costs one relaxed atomic load — the same
// pattern (and cost) as fault::enabled() on the send path.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace parpde::verify {

// A queued message eligible for a receive match, as seen by the audit hook.
struct MatchCandidate {
  int source = 0;
  const std::vector<std::uint32_t>* clock = nullptr;  // sender clock at send
};

#ifdef PARPDE_VERIFY_OFF

// Verification compiled out: the hooks are constexpr no-ops so every call
// site (and the branch guarding it) is dead code to the optimizer.
inline constexpr bool active() noexcept { return false; }
inline constexpr void hook_run_begin(int /*ranks*/) noexcept {}
inline constexpr void hook_thread_rank(int /*rank*/) noexcept {}
inline constexpr std::size_t hook_delivery_slot(
    int /*dest*/, int /*source*/, int /*tag*/, std::size_t /*lo*/,
    std::size_t hi, std::vector<std::uint32_t>* /*clock_out*/) noexcept {
  return hi;
}
inline constexpr void hook_match(int /*owner*/, int /*source_sel*/,
                                 int /*tag*/,
                                 const MatchCandidate* /*candidates*/,
                                 std::size_t /*count*/,
                                 std::size_t /*chosen*/) noexcept {}
inline constexpr void hook_recv_wait(int /*owner*/, int /*source*/,
                                     int /*tag*/) noexcept {}
inline constexpr void hook_barrier_arrive(int /*rank*/,
                                          std::uint64_t /*generation*/,
                                          int /*arrival_index*/,
                                          int /*size*/) noexcept {}
inline constexpr void hook_barrier_exit(int /*rank*/,
                                        std::uint64_t /*generation*/) noexcept {
}
inline constexpr std::uint64_t hook_pool_job_begin() noexcept { return 0; }
inline constexpr void hook_pool_chunk(std::uint64_t /*job_id*/,
                                      std::int64_t /*begin*/) noexcept {}

#else  // PARPDE_VERIFY_OFF

// A schedule specification, round-trippable through the PARPDE_SCHEDULE
// environment variable. Grammar:
//
//   seed=<u64>[;p=<0..100>][;yields=0|1][;only=<hex key>,<hex key>,...]
//
//   seed    SplitMix64 seed; all perturbation draws derive from it.
//   p       percent of delivery events to front-run (default 50).
//   yields  also jitter recv wakeups / barrier releases / pool claims with
//           seeded sched_yields (default 1). Yields widen the explored OS
//           interleavings but are not needed to replay a delivery reordering.
//   only    replay mode: perturb exactly these delivery keys (ignore p).
//           This is what the shrinker emits — a minimal reproducing spec.
struct Schedule {
  std::uint64_t seed = 1;
  int perturb_pct = 50;
  bool yields = true;
  std::vector<std::uint64_t> only;

  // Canonical spec string (parse(spec()) round-trips).
  [[nodiscard]] std::string spec() const;
  // Throws std::invalid_argument with the offending token on a bad spec.
  static Schedule parse(const std::string& spec);
};

// Everything the controller observed during the last (or current) installed
// schedule. Counters are cumulative since install().
struct RunReport {
  std::uint64_t trace_hash = 0;  // happens-before trace signature (DPOR-lite)
  std::uint64_t events = 0;      // deliveries + matches + barrier arrivals
  std::uint64_t deliveries = 0;
  std::uint64_t perturbed = 0;        // deliveries actually front-run
  std::uint64_t choice_matches = 0;   // matches with >1 eligible source
  std::uint64_t order_sensitive = 0;  // ...whose candidates were concurrent
  std::vector<std::uint64_t> fired_keys;  // perturbation keys that reordered
  // Every delivery decision, keyed by the stable delivery key. Pure function
  // of (seed, key), so two runs of the same spec agree exactly.
  std::vector<std::pair<std::uint64_t, bool>> decisions;  // sorted by key
};

// Install/remove the process-wide schedule controller. install() resets all
// counters, sequence numbers and clocks, so runs are comparable; uninstall()
// deactivates the hooks but keeps the state readable via report().
void install(Schedule schedule);
void uninstall();
// Installs from PARPDE_SCHEDULE if set and nothing is installed; returns
// whether a schedule is now active. Called once per process from
// hook_run_begin so any binary can be replayed via the environment.
bool install_from_env();
[[nodiscard]] RunReport report();
[[nodiscard]] Schedule current_schedule();

// True while a schedule is installed (one relaxed atomic load).
[[nodiscard]] bool active() noexcept;

// --- interception hooks (minimpi / thread_pool call sites) -----------------
// All hooks are safe to call whether or not a schedule is installed, from any
// thread, including threads that never registered a rank.

// An Environment::run is starting with `ranks` ranks: size the clock vectors.
void hook_run_begin(int ranks);
// The calling thread executes rank `rank` (mirrors telemetry thread ranks).
void hook_thread_rank(int rank);

// A message (source, tag) is being inserted into rank `dest`'s mailbox.
// `lo` is the earliest legal slot (non-overtaking floor), `hi` the back of
// the queue. Returns the slot to insert at; stamps the sender's vector clock
// into *clock_out (left untouched when inactive).
std::size_t hook_delivery_slot(int dest, int source, int tag, std::size_t lo,
                               std::size_t hi,
                               std::vector<std::uint32_t>* clock_out);

// Rank `owner` matched a receive for (source_sel, tag) and chose
// candidates[chosen]. Joins the sender's clock into the receiver's and
// audits any-source choices for order sensitivity.
void hook_match(int owner, int source_sel, int tag,
                const MatchCandidate* candidates, std::size_t count,
                std::size_t chosen);

// Rank `owner` is about to block for (source, tag): seeded wakeup jitter.
void hook_recv_wait(int owner, int source, int tag);

// Barrier edges: arrival joins the rank's clock into the generation
// accumulator; exit joins the accumulator back (all-to-all ordering).
void hook_barrier_arrive(int rank, std::uint64_t generation, int arrival_index,
                         int size);
void hook_barrier_exit(int rank, std::uint64_t generation);

// A parallel_for job is starting; returns a job id for chunk hooks (0 when
// inactive). Chunk claims are hashed into the trace and jittered under
// `yields` — chunk completion order is the third perturbation axis.
std::uint64_t hook_pool_job_begin();
void hook_pool_chunk(std::uint64_t job_id, std::int64_t begin);

#endif  // PARPDE_VERIFY_OFF

}  // namespace parpde::verify
