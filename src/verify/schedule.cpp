#include "verify/schedule.hpp"

#ifndef PARPDE_VERIFY_OFF

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "verify/vector_clock.hpp"

namespace parpde::verify {

namespace {

// SplitMix64 finalizer (same constants as util::Rng's stream fork): the
// decision function is mix(seed ^ key), so decisions are pure in the key.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t key4(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c) {
  return mix(mix(mix(mix(kind) ^ a) ^ b) ^ c);
}

// Event-kind salts so a delivery key can never collide with a barrier key.
constexpr std::uint64_t kKindDelivery = 0xD0;
constexpr std::uint64_t kKindMatch = 0xC0;
constexpr std::uint64_t kKindWait = 0xA0;
constexpr std::uint64_t kKindBarrier = 0xB0;
constexpr std::uint64_t kKindPool = 0xF0;
constexpr std::uint64_t kKindMailboxChain = 0x10;
constexpr std::uint64_t kKindRecvChain = 0x20;

// Sources are >= 0 at the hook sites (kProcNull sends are dropped upstream);
// the +2 keeps kAnySource (-1) distinct anyway.
std::uint64_t src_u(int source) {
  return static_cast<std::uint64_t>(source + 2);
}

// The rank the calling thread executes, -1 off-rank (mirrors telemetry's
// thread rank but kept separate so verify has no util dependency).
thread_local int t_rank = -1;

struct BarrierGen {
  VectorClock clock;
  int exits = 0;
  int size = 0;
};

class Scheduler {
 public:
  void install(Schedule s) {
    std::lock_guard<std::mutex> lock(mu_);
    sched_ = std::move(s);
    only_.clear();
    for (std::uint64_t k : sched_.only) only_.insert(k);
    // Reset all per-run state so reports from different schedules compare.
    clocks_.assign(clocks_.size(), VectorClock{});
    recv_chain_.assign(recv_chain_.size(), 0);
    channel_seq_.clear();
    wait_seq_.clear();
    decisions_.clear();
    fired_.clear();
    push_chain_.clear();
    pool_claims_.clear();
    barrier_gens_.clear();
    barrier_chain_ = 0;
    pool_accum_ = 0;
    pool_jobs_ = 0;
    events_ = deliveries_ = perturbed_ = choice_ = order_sensitive_ = 0;
  }

  void begin_run(int ranks) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto n = static_cast<std::size_t>(ranks);
    if (clocks_.size() < n) clocks_.resize(n);
    if (recv_chain_.size() < n) recv_chain_.resize(n, 0);
  }

  std::size_t delivery_slot(int dest, int source, int tag, std::size_t lo,
                            std::size_t hi,
                            std::vector<std::uint32_t>* clock_out) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t channel =
        key4(kKindDelivery, static_cast<std::uint64_t>(dest), src_u(source),
             static_cast<std::uint64_t>(tag));
    const std::uint64_t seq = channel_seq_[channel]++;
    const std::uint64_t key = mix(channel ^ mix(seq));
    const bool perturb = draw(key);
    decisions_[key] = perturb;
    ++events_;
    ++deliveries_;
    std::size_t pos = hi;
    if (perturb && lo < hi) {
      pos = lo;  // front-run to the earliest legal slot
      ++perturbed_;
      fired_.push_back(key);
    }
    // Trace: per-mailbox delivery chain, ordered by actual queue position so
    // interleavings that reorder visible deliveries hash differently.
    std::uint64_t& chain = push_chain_[dest];
    chain = mix(chain ^ key ^ mix(static_cast<std::uint64_t>(pos)));
    // Send is an event on the sender's clock; the stamped copy rides the
    // message so the receive edge can join it.
    const int r = t_rank;
    if (r >= 0) {
      auto rr = static_cast<std::size_t>(r);
      if (clocks_.size() <= rr) clocks_.resize(rr + 1);
      clocks_[rr].tick(rr);
      if (clock_out != nullptr) *clock_out = clocks_[rr].components();
    }
    return pos;
  }

  void match(int owner, int source_sel, int tag,
             const MatchCandidate* candidates, std::size_t count,
             std::size_t chosen) {
    std::lock_guard<std::mutex> lock(mu_);
    ++events_;
    if (chosen >= count || candidates == nullptr) return;
    const MatchCandidate& pick = candidates[chosen];
    // Per-rank receive sequence: which source fed each receive, in order.
    auto rr = static_cast<std::size_t>(owner);
    if (recv_chain_.size() <= rr) recv_chain_.resize(rr + 1, 0);
    recv_chain_[rr] =
        mix(recv_chain_[rr] ^ key4(kKindMatch, static_cast<std::uint64_t>(owner),
                                   src_u(pick.source),
                                   static_cast<std::uint64_t>(tag)));
    // Any-source audit: more than one eligible sender means the program
    // accepted a scheduling choice; if the candidates are concurrent (no
    // happens-before edge orders them) the chosen value is order-sensitive.
    if (source_sel < 0 && count > 1) {
      bool multi_source = false;
      bool concurrent = false;
      for (std::size_t i = 0; i < count; ++i) {
        if (i == chosen) continue;
        if (candidates[i].source != pick.source) multi_source = true;
        if (pick.clock != nullptr && candidates[i].clock != nullptr &&
            clocks_concurrent(*pick.clock, *candidates[i].clock)) {
          concurrent = true;
        }
      }
      if (multi_source) ++choice_;
      if (multi_source && concurrent) ++order_sensitive_;
    }
    // Receive edge: join the sender's stamped clock, then tick.
    if (clocks_.size() <= rr) clocks_.resize(rr + 1);
    if (pick.clock != nullptr) clocks_[rr].join(*pick.clock);
    clocks_[rr].tick(rr);
  }

  bool wait_jitter(int owner, int source, int tag) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sched_.yields) return false;
    const std::uint64_t channel =
        key4(kKindWait, static_cast<std::uint64_t>(owner), src_u(source),
             static_cast<std::uint64_t>(tag));
    const std::uint64_t seq = wait_seq_[channel]++;
    return yield_draw(mix(channel ^ mix(seq)));
  }

  void barrier_arrive(int rank, std::uint64_t generation, int arrival_index,
                      int size) {
    std::lock_guard<std::mutex> lock(mu_);
    ++events_;
    barrier_chain_ = mix(barrier_chain_ ^
                         key4(kKindBarrier, static_cast<std::uint64_t>(rank),
                              generation,
                              static_cast<std::uint64_t>(arrival_index)));
    auto rr = static_cast<std::size_t>(rank);
    if (clocks_.size() <= rr) clocks_.resize(rr + 1);
    clocks_[rr].tick(rr);
    BarrierGen& gen = barrier_gens_[generation];
    gen.size = size;
    gen.clock.join(clocks_[rr]);
  }

  bool barrier_exit(int rank, std::uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = barrier_gens_.find(generation);
    if (it != barrier_gens_.end()) {
      auto rr = static_cast<std::size_t>(rank);
      if (clocks_.size() <= rr) clocks_.resize(rr + 1);
      clocks_[rr].join(it->second.clock);
      if (++it->second.exits >= it->second.size) barrier_gens_.erase(it);
    }
    if (!sched_.yields) return false;
    return yield_draw(key4(kKindBarrier + 1,
                           static_cast<std::uint64_t>(rank), generation, 0));
  }

  std::uint64_t pool_job_begin() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++pool_jobs_;
  }

  bool pool_chunk(std::uint64_t job_id, std::int64_t begin) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t claim = pool_claims_[job_id]++;
    // Commutative across jobs (job ids are arrival-ordered and therefore
    // racy), ordered within a job by claim index.
    pool_accum_ +=
        key4(kKindPool, claim, static_cast<std::uint64_t>(begin), 0);
    if (!sched_.yields) return false;
    return yield_draw(key4(kKindPool + 1, claim,
                           static_cast<std::uint64_t>(begin), 0));
  }

  RunReport snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    RunReport rep;
    rep.events = events_;
    rep.deliveries = deliveries_;
    rep.perturbed = perturbed_;
    rep.choice_matches = choice_;
    rep.order_sensitive = order_sensitive_;
    rep.fired_keys = fired_;
    // Ordered map view so two runs of the same spec produce identical logs.
    std::map<std::uint64_t, bool> ordered(decisions_.begin(), decisions_.end());
    rep.decisions.assign(ordered.begin(), ordered.end());
    // Trace signature: commutative combination of the per-entity chains, so
    // the hash is independent of which rank's events were *recorded* first
    // but sensitive to every order some rank could observe.
    std::uint64_t sum = barrier_chain_ + pool_accum_;
    for (const auto& [dest, chain] : push_chain_) {
      sum += mix(key4(kKindMailboxChain,
                      static_cast<std::uint64_t>(dest), 0, 0) ^
                 chain);
    }
    for (std::size_t r = 0; r < recv_chain_.size(); ++r) {
      sum += mix(key4(kKindRecvChain, r, 0, 0) ^ recv_chain_[r]);
    }
    rep.trace_hash = mix(sum ^ events_);
    return rep;
  }

  Schedule schedule() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sched_;
  }

 private:
  // Perturbation decision for a delivery key: replay set if present,
  // otherwise a seeded percentage draw.
  bool draw(std::uint64_t key) const {
    if (!only_.empty()) return only_.count(key) != 0;
    if (sched_.perturb_pct <= 0) return false;
    return mix(sched_.seed ^ key) % 100 <
           static_cast<std::uint64_t>(sched_.perturb_pct);
  }
  // Yield jitter fires at a fixed 25% of eligible points.
  bool yield_draw(std::uint64_t key) const {
    if (!only_.empty()) return false;  // replay mode: deliveries only
    return mix(sched_.seed ^ mix(key)) % 4 == 0;
  }

  mutable std::mutex mu_;
  Schedule sched_;
  std::unordered_set<std::uint64_t> only_;
  std::vector<VectorClock> clocks_;           // per rank
  std::vector<std::uint64_t> recv_chain_;     // per rank
  std::unordered_map<std::uint64_t, std::uint64_t> channel_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> wait_seq_;
  std::unordered_map<std::uint64_t, bool> decisions_;
  std::vector<std::uint64_t> fired_;
  std::unordered_map<int, std::uint64_t> push_chain_;  // per mailbox
  std::unordered_map<std::uint64_t, std::uint64_t> pool_claims_;
  std::unordered_map<std::uint64_t, BarrierGen> barrier_gens_;
  std::uint64_t barrier_chain_ = 0;
  std::uint64_t pool_accum_ = 0;
  std::uint64_t pool_jobs_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t perturbed_ = 0;
  std::uint64_t choice_ = 0;
  std::uint64_t order_sensitive_ = 0;
};

std::atomic<bool> g_active{false};

Scheduler& scheduler() {
  static Scheduler s;
  return s;
}

}  // namespace

bool active() noexcept { return g_active.load(std::memory_order_relaxed); }

void install(Schedule schedule) {
  scheduler().install(std::move(schedule));
  g_active.store(true, std::memory_order_release);
}

void uninstall() { g_active.store(false, std::memory_order_release); }

bool install_from_env() {
  if (active()) return true;
  const char* spec = std::getenv("PARPDE_SCHEDULE");
  if (spec == nullptr || *spec == '\0') return false;
  install(Schedule::parse(spec));
  return true;
}

RunReport report() { return scheduler().snapshot(); }

Schedule current_schedule() { return scheduler().schedule(); }

void hook_run_begin(int ranks) {
  // First-run env pickup: lets any binary be replayed via PARPDE_SCHEDULE
  // without code changes (mirrors fault::install_from_env).
  static const bool env_checked = [] {
    install_from_env();
    return true;
  }();
  (void)env_checked;
  if (active()) scheduler().begin_run(ranks);
}

void hook_thread_rank(int rank) { t_rank = rank; }

std::size_t hook_delivery_slot(int dest, int source, int tag, std::size_t lo,
                               std::size_t hi,
                               std::vector<std::uint32_t>* clock_out) {
  if (!active()) return hi;
  return scheduler().delivery_slot(dest, source, tag, lo, hi, clock_out);
}

void hook_match(int owner, int source_sel, int tag,
                const MatchCandidate* candidates, std::size_t count,
                std::size_t chosen) {
  if (!active()) return;
  scheduler().match(owner, source_sel, tag, candidates, count, chosen);
}

void hook_recv_wait(int owner, int source, int tag) {
  if (!active()) return;
  if (scheduler().wait_jitter(owner, source, tag)) std::this_thread::yield();
}

void hook_barrier_arrive(int rank, std::uint64_t generation, int arrival_index,
                         int size) {
  if (!active()) return;
  scheduler().barrier_arrive(rank, generation, arrival_index, size);
}

void hook_barrier_exit(int rank, std::uint64_t generation) {
  if (!active()) return;
  if (scheduler().barrier_exit(rank, generation)) std::this_thread::yield();
}

std::uint64_t hook_pool_job_begin() {
  if (!active()) return 0;
  return scheduler().pool_job_begin();
}

void hook_pool_chunk(std::uint64_t job_id, std::int64_t begin) {
  if (!active() || job_id == 0) return;
  if (scheduler().pool_chunk(job_id, begin)) std::this_thread::yield();
}

// --- Schedule spec ---------------------------------------------------------

std::string Schedule::spec() const {
  std::string s = "seed=" + std::to_string(seed);
  s += ";p=" + std::to_string(perturb_pct);
  s += ";yields=";
  s += yields ? "1" : "0";
  if (!only.empty()) {
    s += ";only=";
    for (std::size_t i = 0; i < only.size(); ++i) {
      if (i != 0) s += ",";
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(only[i]));
      s += buf;
    }
  }
  return s;
}

namespace {

std::uint64_t parse_u64(const std::string& tok, int base, const char* what) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(tok, &used, base);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != tok.size() || tok.empty()) {
    throw std::invalid_argument(std::string("PARPDE_SCHEDULE: bad ") + what +
                                " value '" + tok + "'");
  }
  return value;
}

}  // namespace

Schedule Schedule::parse(const std::string& spec) {
  Schedule s;
  bool have_seed = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = spec.find(';', pos);
    const std::string field =
        spec.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? spec.size() + 1 : end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("PARPDE_SCHEDULE: field '" + field +
                                  "' is not key=value");
    }
    const std::string k = field.substr(0, eq);
    const std::string v = field.substr(eq + 1);
    if (k == "seed") {
      s.seed = parse_u64(v, 10, "seed");
      have_seed = true;
    } else if (k == "p") {
      const std::uint64_t p = parse_u64(v, 10, "p");
      if (p > 100) {
        throw std::invalid_argument("PARPDE_SCHEDULE: p must be 0..100");
      }
      s.perturb_pct = static_cast<int>(p);
    } else if (k == "yields") {
      if (v != "0" && v != "1") {
        throw std::invalid_argument("PARPDE_SCHEDULE: yields must be 0 or 1");
      }
      s.yields = v == "1";
    } else if (k == "only") {
      std::size_t p2 = 0;
      while (p2 <= v.size()) {
        const std::size_t c = v.find(',', p2);
        const std::string tok =
            v.substr(p2, c == std::string::npos ? c : c - p2);
        p2 = c == std::string::npos ? v.size() + 1 : c + 1;
        if (!tok.empty()) s.only.push_back(parse_u64(tok, 16, "only key"));
      }
    } else {
      throw std::invalid_argument("PARPDE_SCHEDULE: unknown field '" + k +
                                  "'");
    }
  }
  if (!have_seed) {
    throw std::invalid_argument("PARPDE_SCHEDULE: missing seed=");
  }
  return s;
}

}  // namespace parpde::verify

#endif  // PARPDE_VERIFY_OFF
