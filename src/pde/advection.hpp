#pragma once

// Second PDE substrate: 2-d scalar advection-diffusion,
//   dq/dt + a . grad(q) = nu * lap(q),
// on the unit-style square with homogeneous Neumann boundaries and a Gaussian
// initial blob. Exists to back the paper's generality claim ("the proposed
// method ... can be generalized to be utilized for other fields as well"):
// the same decomposition/training/inference pipeline runs unchanged on these
// single-channel frames (see examples/generalization_advection).

#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::pde {

struct AdvectionConfig {
  int n = 64;                // grid points per direction
  double domain_half = 1.0;  // domain [-L, L]^2
  double ax = 0.5;           // advection velocity
  double ay = 0.25;
  double nu = 2e-3;          // diffusivity
  double cfl = 0.3;
  double blob_amplitude = 1.0;
  double blob_sigma = 0.15;  // Gaussian standard deviation
  double blob_x = -0.4;      // initial center (advects across the domain)
  double blob_y = -0.2;

  [[nodiscard]] double dx() const { return 2.0 * domain_half / n; }
  // Stable explicit step: min of the advective and diffusive limits.
  [[nodiscard]] double dt() const;
};

// Solver state: q on the grid plus one ghost layer (Neumann).
class AdvectionSolver {
 public:
  explicit AdvectionSolver(const AdvectionConfig& config);

  // Gaussian blob initial condition.
  void initialize();

  // One RK2 (Heun) step of size dt; central differences + diffusion.
  void step(double dt);

  // Interior as a [1, n, n] float tensor.
  [[nodiscard]] Tensor frame() const;

  // Total amount of q (conserved up to boundary outflow and roundoff).
  [[nodiscard]] double total_mass() const;

  [[nodiscard]] const AdvectionConfig& config() const { return config_; }

 private:
  void apply_boundary(std::vector<double>& q) const;
  void rhs(const std::vector<double>& q, std::vector<double>& out) const;

  double& at(std::vector<double>& q, int i, int j) const {
    return q[static_cast<std::size_t>((j + 1) * (config_.n + 2) + (i + 1))];
  }
  double at(const std::vector<double>& q, int i, int j) const {
    return q[static_cast<std::size_t>((j + 1) * (config_.n + 2) + (i + 1))];
  }

  AdvectionConfig config_;
  std::vector<double> q_;
  mutable std::vector<double> k1_, k2_, tmp_;
};

struct AdvectionSimulation {
  AdvectionConfig config;
  double frame_dt = 0.0;
  std::vector<Tensor> frames;  // each [1, n, n]
};

// Runs the solver and records `num_frames` frames (`steps_per_frame` solver
// steps apart; frame 0 is the initial condition).
AdvectionSimulation simulate_advection(const AdvectionConfig& config,
                                       int num_frames, int steps_per_frame = 1);

}  // namespace parpde::pde
