#include "pde/advection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace parpde::pde {

double AdvectionConfig::dt() const {
  const double adv = std::abs(ax) + std::abs(ay);
  const double dt_adv = adv > 0.0 ? cfl * dx() / adv : 1e30;
  const double dt_diff = nu > 0.0 ? 0.2 * dx() * dx() / nu : 1e30;
  return std::min(dt_adv, dt_diff);
}

AdvectionSolver::AdvectionSolver(const AdvectionConfig& config)
    : config_(config) {
  if (config.n <= 2) throw std::invalid_argument("AdvectionSolver: grid too small");
  const auto cells = static_cast<std::size_t>((config.n + 2) * (config.n + 2));
  q_.assign(cells, 0.0);
  k1_.assign(cells, 0.0);
  k2_.assign(cells, 0.0);
  tmp_.assign(cells, 0.0);
}

void AdvectionSolver::initialize() {
  const double s2 = 2.0 * config_.blob_sigma * config_.blob_sigma;
  for (int j = 0; j < config_.n; ++j) {
    const double y = -config_.domain_half + (j + 0.5) * config_.dx() -
                     config_.blob_y;
    for (int i = 0; i < config_.n; ++i) {
      const double x = -config_.domain_half + (i + 0.5) * config_.dx() -
                       config_.blob_x;
      at(q_, i, j) = config_.blob_amplitude * std::exp(-(x * x + y * y) / s2);
    }
  }
  apply_boundary(q_);
}

void AdvectionSolver::apply_boundary(std::vector<double>& q) const {
  const int n = config_.n;
  for (int i = 0; i < n; ++i) {
    at(q, i, -1) = at(q, i, 0);
    at(q, i, n) = at(q, i, n - 1);
  }
  for (int j = -1; j <= n; ++j) {
    at(q, -1, j) = at(q, 0, j);
    at(q, n, j) = at(q, n - 1, j);
  }
}

void AdvectionSolver::rhs(const std::vector<double>& q,
                          std::vector<double>& out) const {
  const int n = config_.n;
  const double inv2dx = 1.0 / (2.0 * config_.dx());
  const double invdx2 = 1.0 / (config_.dx() * config_.dx());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double qx = (at(q, i + 1, j) - at(q, i - 1, j)) * inv2dx;
      const double qy = (at(q, i, j + 1) - at(q, i, j - 1)) * inv2dx;
      const double lap = (at(q, i + 1, j) + at(q, i - 1, j) + at(q, i, j + 1) +
                          at(q, i, j - 1) - 4.0 * at(q, i, j)) *
                         invdx2;
      at(out, i, j) = -(config_.ax * qx + config_.ay * qy) + config_.nu * lap;
    }
  }
}

void AdvectionSolver::step(double dt) {
  // Heun (RK2): stable with the diffusive term damping the central-advection
  // odd-even mode.
  apply_boundary(q_);
  rhs(q_, k1_);
  const int n = config_.n;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      at(tmp_, i, j) = at(q_, i, j) + dt * at(k1_, i, j);
    }
  }
  apply_boundary(tmp_);
  rhs(tmp_, k2_);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      at(q_, i, j) += dt / 2.0 * (at(k1_, i, j) + at(k2_, i, j));
    }
  }
  apply_boundary(q_);
}

Tensor AdvectionSolver::frame() const {
  const int n = config_.n;
  Tensor t({1, n, n});
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      t.at(0, j, i) = static_cast<float>(at(q_, i, j));
    }
  }
  return t;
}

double AdvectionSolver::total_mass() const {
  const int n = config_.n;
  double mass = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) mass += at(q_, i, j);
  }
  return mass * config_.dx() * config_.dx();
}

AdvectionSimulation simulate_advection(const AdvectionConfig& config,
                                       int num_frames, int steps_per_frame) {
  if (num_frames < 2 || steps_per_frame < 1) {
    throw std::invalid_argument("simulate_advection: bad frame options");
  }
  AdvectionSimulation result;
  result.config = config;
  result.frame_dt = config.dt() * steps_per_frame;
  AdvectionSolver solver(config);
  solver.initialize();
  result.frames.push_back(solver.frame());
  for (int f = 1; f < num_frames; ++f) {
    for (int s = 0; s < steps_per_frame; ++s) solver.step(config.dt());
    result.frames.push_back(solver.frame());
  }
  return result;
}

}  // namespace parpde::pde
