#pragma once

// SurrogateServer — long-lived multi-session inference service over the
// trained (or synthetic) Table-I surrogate, the serving layer the ROADMAP's
// "heavy traffic" north star asks for. The shape follows the onnxruntime
// session/runner split: one long-lived engine (the pre-sized ForwardPlan and
// its backend PlanContext), per-request state kept tiny (a stack-allocated
// intrusive queue node), and a pooled scheduler thread in between.
//
// Request flow: a client calls step(id), which enqueues a node on the bounded
// admission queue and blocks. When the queue is full the call returns a typed
// Reject::kQueueFull immediately — backpressure, never an unbounded block.
// The scheduler thread pops up to max_batch requests (waiting at most
// coalesce_window_ms for the batch to fill), stacks the sessions' frames into
// one [B, C, H, W] staging buffer and advances all of them with a single
// ForwardPlan::run_batched call — one wide im2col + GEMM per layer instead of
// B narrow ones. With coalesce = false the scheduler dispatches one request
// at a time through the solo ForwardPlan::run path (the serial baseline
// bench_serving compares against).
//
// Determinism contract (docs/serving.md): a session's trajectory is
// bit-identical whether it ran solo or coalesced into any batch, on both the
// fp32 and int8 backends — the blocked GEMM's per-element k-reduction order
// is independent of the matrix width, the int8 accumulation is exact, and
// every epilogue is elementwise. tests/test_serve.cpp proves this end to end
// at random batch compositions.
//
// Steady state performs zero heap allocations per request on every path the
// scheduler or step() touches (lint rule `serve-steady-alloc` plus the
// counting-allocator check in tests/test_serve.cpp). All buffers are sized at
// construction; sessions are slots in a pre-reserved table.
//
// Threading: step() may be called from any number of client threads; a single
// session must not have two steps in flight at once (enforced —
// std::logic_error). Frames are handed between client and scheduler through
// the server mutex, so the TSan leg of tools/check.sh runs test_serve.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "nn/forward_plan.hpp"
#include "nn/sequential.hpp"
#include "util/aligned.hpp"

namespace parpde::serve {

struct ServerOptions {
  // Execution provider for all sessions (nullptr = reference fp32).
  const backend::KernelBackend* backend = nullptr;
  // Widest batch one dispatch may coalesce; also pre-sizes the plan.
  std::int64_t max_batch = 8;
  // Admission-queue bound: step() returns Reject::kQueueFull beyond it.
  std::int64_t queue_depth = 64;
  // Session-table capacity (slots are pre-reserved at construction).
  std::int64_t max_sessions = 64;
  // How long the scheduler waits for a batch to fill once work is pending.
  // 0 = dispatch whatever is queued immediately.
  double coalesce_window_ms = 0.2;
  // false = serial dispatch: one request per dispatch via the solo plan
  // path. The bench's baseline; coalescing is the whole point otherwise.
  bool coalesce = true;
};

// Typed admission verdicts — the server never blocks a request forever.
enum class Reject {
  kNone,        // executed
  kQueueFull,   // bounded admission queue at capacity (backpressure)
  kDeadline,    // still queued when the request's deadline passed
  kShutdown,    // server stopping; request was not executed
  kBadSession,  // unknown or closed session id
};
[[nodiscard]] const char* reject_name(Reject r) noexcept;

struct StepResult {
  Reject reject = Reject::kNone;
  std::int64_t step = 0;           // session step count after this request
  double latency_seconds = 0.0;    // enqueue-to-completion wall time
  [[nodiscard]] bool ok() const noexcept { return reject == Reject::kNone; }
};

// Snapshot for benches/CLI; the telemetry registry carries the same figures
// as serve.* metrics (docs/observability.md).
struct ServerStats {
  std::uint64_t requests = 0;  // step() calls admitted or rejected
  std::uint64_t rejected = 0;  // non-kNone outcomes
  std::uint64_t batches = 0;   // dispatches that executed >= 1 request
  // occupancy[b] = dispatches that executed exactly b requests (index 0
  // counts dispatches whose every request was deadline-rejected).
  std::vector<std::uint64_t> occupancy;
};

class SurrogateServer {
 public:
  // The model must be a plan-supported Sequential with zero spatial shrink
  // ("same"-padded, BorderMode::kZeroPad): sessions are autoregressive on a
  // fixed [channels, height, width] geometry. The model must outlive the
  // server. Throws std::invalid_argument otherwise.
  SurrogateServer(nn::Sequential& model, std::int64_t channels,
                  std::int64_t height, std::int64_t width,
                  const ServerOptions& options = {});
  ~SurrogateServer();

  SurrogateServer(const SurrogateServer&) = delete;
  SurrogateServer& operator=(const SurrogateServer&) = delete;

  // --- calibration (int8 backend; see ForwardPlan) --------------------------
  [[nodiscard]] bool needs_calibration() const;
  // One fp32 reference pass over a representative frame [channels, h, w].
  void calibrate(const float* frame);
  void set_calibration(std::vector<float> ranges);
  [[nodiscard]] const std::vector<float>& calibration() const noexcept {
    return plan_.calibration();
  }

  // --- sessions -------------------------------------------------------------
  // Copies the initial condition [channels, height, width] into a fresh
  // session slot; returns its id, or -1 when max_sessions are already open.
  [[nodiscard]] std::int64_t open_session(const float* initial);
  // Frees the slot for reuse. The session must have no step in flight.
  void close_session(std::int64_t id);

  // Advances the session one autoregressive step (blocking). deadline_ms > 0
  // rejects the request with Reject::kDeadline if it is still queued when
  // that much time has passed since enqueue. At most one step per session
  // may be in flight (std::logic_error otherwise).
  StepResult step(std::int64_t id, double deadline_ms = 0.0);

  // The session's current frame [channels, height, width]; valid until the
  // session's next step() (the caller must not read concurrently with one).
  [[nodiscard]] const float* frame(std::int64_t id) const;
  [[nodiscard]] std::int64_t session_steps(std::int64_t id) const;

  // --- introspection --------------------------------------------------------
  [[nodiscard]] std::int64_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::int64_t height() const noexcept { return height_; }
  [[nodiscard]] std::int64_t width() const noexcept { return width_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] ServerStats stats() const;
  // Plan + backend workspace regrowths (0 in a pre-sized steady state).
  [[nodiscard]] std::uint64_t growth_events() const noexcept {
    return plan_.growth_events();
  }

  // Stops the scheduler: pending and future requests get Reject::kShutdown.
  // Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Session {
    util::AlignedVector<float> frame;  // [channels, height, width]
    std::int64_t steps = 0;
    bool open = false;
    bool busy = false;  // a step() is in flight
  };

  // One queued step request. Lives on the calling thread's stack for the
  // duration of step() — enqueueing is pointer-linking, never an allocation.
  struct Request {
    std::int64_t session = -1;
    std::int64_t deadline_us = 0;  // absolute telemetry::now_us(); 0 = none
    Reject reject = Reject::kNone;
    bool done = false;
    Request* next = nullptr;
  };

  void scheduler_loop();
  // Pops `count` requests from batch_[0..count); deadline-filters, applies
  // the serve.dispatch fault hook, and runs the survivors as one batch.
  void execute_batch(std::int64_t count);

  ServerOptions options_;
  std::int64_t channels_ = 0;
  std::int64_t height_ = 0;
  std::int64_t width_ = 0;
  nn::ForwardPlan plan_;

  mutable std::mutex mutex_;
  std::condition_variable sched_cv_;  // scheduler wakeups (work / stop)
  std::condition_variable done_cv_;   // client wakeups (request completed)
  Request* head_ = nullptr;  // intrusive FIFO admission queue
  Request* tail_ = nullptr;
  std::int64_t queue_len_ = 0;
  bool stop_ = false;

  std::vector<Session> sessions_;        // pre-reserved, never reallocates
  std::vector<Request*> batch_;          // scheduler scratch [max_batch]
  std::vector<Request*> live_;           // deadline survivors [max_batch]
  util::AlignedVector<float> staging_;   // [max_batch, channels, h, w]
  std::vector<std::uint64_t> occupancy_; // [max_batch + 1]
  std::uint64_t requests_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;

  std::thread scheduler_;
};

}  // namespace parpde::serve
