#include "serve/surrogate_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "minimpi/fault.hpp"
#include "minimpi/tags.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace parpde::serve {

namespace {

// serve.batch_occupancy buckets: occupancy is a small integer, so the bounds
// are fixed counts rather than the default latency decades.
constexpr double kOccupancyBounds[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};

}  // namespace

const char* reject_name(Reject r) noexcept {
  switch (r) {
    case Reject::kNone:
      return "none";
    case Reject::kQueueFull:
      return "queue_full";
    case Reject::kDeadline:
      return "deadline";
    case Reject::kShutdown:
      return "shutdown";
    case Reject::kBadSession:
      return "bad_session";
  }
  return "unknown";
}

// serve-lint: setup-begin (construction pre-sizes every steady-state buffer)
SurrogateServer::SurrogateServer(nn::Sequential& model, std::int64_t channels,
                                 std::int64_t height, std::int64_t width,
                                 const ServerOptions& options)
    : options_(options),
      channels_(channels),
      height_(height),
      width_(width),
      plan_(model, channels, height, width, options.backend,
            options.max_batch) {
  if (options_.max_batch <= 0 || options_.queue_depth <= 0 ||
      options_.max_sessions <= 0) {
    throw std::invalid_argument(
        "SurrogateServer: max_batch, queue_depth and max_sessions must be "
        "positive");
  }
  if (!plan_.supported()) {
    throw std::invalid_argument(
        "SurrogateServer: model contains layers ForwardPlan cannot replay");
  }
  if (plan_.shrink() != 0) {
    throw std::invalid_argument(
        "SurrogateServer: sessions are autoregressive on a fixed geometry — "
        "the model must be \"same\"-padded (zero spatial shrink)");
  }
  if (plan_.out_channels() != channels_) {
    throw std::invalid_argument(
        "SurrogateServer: model output channels must match input channels "
        "for autoregressive stepping");
  }
  sessions_.resize(static_cast<std::size_t>(options_.max_sessions));
  batch_.resize(static_cast<std::size_t>(options_.max_batch), nullptr);
  live_.resize(static_cast<std::size_t>(options_.max_batch), nullptr);
  staging_.resize(static_cast<std::size_t>(options_.max_batch * channels_ *
                                           height_ * width_));
  occupancy_.assign(static_cast<std::size_t>(options_.max_batch) + 1, 0);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SurrogateServer::~SurrogateServer() { shutdown(); }

bool SurrogateServer::needs_calibration() const {
  return plan_.needs_calibration();
}

void SurrogateServer::calibrate(const float* frame) {
  plan_.calibrate(frame, height_, width_);
}

void SurrogateServer::set_calibration(std::vector<float> ranges) {
  plan_.set_calibration(std::move(ranges));
}

std::int64_t SurrogateServer::open_session(const float* initial) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (stop_) return -1;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    if (s.open) continue;
    s.frame.resize(static_cast<std::size_t>(channels_ * height_ * width_));
    std::memcpy(s.frame.data(), initial,
                static_cast<std::size_t>(channels_ * height_ * width_) *
                    sizeof(float));
    s.steps = 0;
    s.open = true;
    s.busy = false;
    return static_cast<std::int64_t>(i);
  }
  return -1;
}

void SurrogateServer::close_session(std::int64_t id) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (id < 0 || id >= static_cast<std::int64_t>(sessions_.size()) ||
      !sessions_[static_cast<std::size_t>(id)].open) {
    throw std::invalid_argument("SurrogateServer::close_session: bad id");
  }
  if (sessions_[static_cast<std::size_t>(id)].busy) {
    throw std::logic_error(
        "SurrogateServer::close_session: a step is still in flight");
  }
  sessions_[static_cast<std::size_t>(id)].open = false;
}

ServerStats SurrogateServer::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  ServerStats out;
  out.requests = requests_;
  out.rejected = rejected_;
  out.batches = batches_;
  out.occupancy = occupancy_;
  return out;
}
// serve-lint: setup-end

StepResult SurrogateServer::step(std::int64_t id, double deadline_ms) {
  static telemetry::Counter& requests_c = telemetry::counter("serve.requests");
  static telemetry::Counter& rejected_c = telemetry::counter("serve.rejected");
  static telemetry::Gauge& depth_g = telemetry::gauge("serve.queue_depth");
  static telemetry::Histogram& latency_h =
      telemetry::histogram("serve.request_seconds");
  requests_c.add();
  util::WallTimer timer;
  // The request node lives on this stack frame: enqueueing links a pointer,
  // so admission itself is allocation-free (lint rule `serve-steady-alloc`).
  Request req;
  req.session = id;
  if (deadline_ms > 0.0) {
    req.deadline_us = telemetry::now_us() +
                      static_cast<std::int64_t>(deadline_ms * 1000.0);
  }
  StepResult result;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    ++requests_;
    Session* session = nullptr;
    if (id >= 0 && id < static_cast<std::int64_t>(sessions_.size()) &&
        sessions_[static_cast<std::size_t>(id)].open) {
      session = &sessions_[static_cast<std::size_t>(id)];
    }
    if (stop_) {
      result.reject = Reject::kShutdown;
    } else if (session == nullptr) {
      result.reject = Reject::kBadSession;
    } else if (session->busy) {
      throw std::logic_error(
          "SurrogateServer::step: one step per session may be in flight");
    } else if (queue_len_ >= options_.queue_depth) {
      // Bounded admission: typed backpressure instead of blocking forever.
      result.reject = Reject::kQueueFull;
    } else {
      session->busy = true;
      req.next = nullptr;
      if (tail_ != nullptr) {
        tail_->next = &req;
      } else {
        head_ = &req;
      }
      tail_ = &req;
      ++queue_len_;
      depth_g.set(static_cast<double>(queue_len_));
      sched_cv_.notify_one();
      done_cv_.wait(lk, [&req] { return req.done; });
      session->busy = false;
      result.reject = req.reject;
      result.step = session->steps;
    }
    if (result.reject != Reject::kNone) ++rejected_;
  }
  result.latency_seconds = timer.seconds();
  latency_h.observe(result.latency_seconds);
  if (result.reject != Reject::kNone) rejected_c.add();
  return result;
}

const float* SurrogateServer::frame(std::int64_t id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  if (id < 0 || id >= static_cast<std::int64_t>(sessions_.size()) ||
      !sessions_[static_cast<std::size_t>(id)].open) {
    throw std::invalid_argument("SurrogateServer::frame: bad id");
  }
  return sessions_[static_cast<std::size_t>(id)].frame.data();
}

std::int64_t SurrogateServer::session_steps(std::int64_t id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  if (id < 0 || id >= static_cast<std::int64_t>(sessions_.size()) ||
      !sessions_[static_cast<std::size_t>(id)].open) {
    throw std::invalid_argument("SurrogateServer::session_steps: bad id");
  }
  return sessions_[static_cast<std::size_t>(id)].steps;
}

void SurrogateServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stop_ && !scheduler_.joinable()) return;
    stop_ = true;
  }
  sched_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

void SurrogateServer::scheduler_loop() {
  static telemetry::Gauge& depth_g = telemetry::gauge("serve.queue_depth");
  static telemetry::Histogram& coalesce_h =
      telemetry::histogram("serve.coalesce_seconds");
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    sched_cv_.wait(lk, [this] { return stop_ || head_ != nullptr; });
    if (stop_) break;
    const std::int64_t want = options_.coalesce ? options_.max_batch : 1;
    if (options_.coalesce && options_.coalesce_window_ms > 0.0 &&
        queue_len_ < want) {
      // Hold the dispatch briefly so concurrent sessions can join the batch;
      // the window is the knob trading per-request latency for occupancy.
      util::WallTimer window;
      sched_cv_.wait_for(
          lk,
          std::chrono::duration<double, std::milli>(
              options_.coalesce_window_ms),
          [this, want] { return stop_ || queue_len_ >= want; });
      coalesce_h.observe(window.seconds());
      if (stop_) break;
    }
    std::int64_t count = 0;
    while (count < want && head_ != nullptr) {
      Request* r = head_;
      head_ = r->next;
      if (head_ == nullptr) tail_ = nullptr;
      --queue_len_;
      batch_[static_cast<std::size_t>(count++)] = r;
    }
    depth_g.set(static_cast<double>(queue_len_));
    lk.unlock();
    execute_batch(count);
    lk.lock();
    for (std::int64_t i = 0; i < count; ++i) {
      batch_[static_cast<std::size_t>(i)]->done = true;
    }
    done_cv_.notify_all();
  }
  // Shutdown drain: every still-queued request completes with kShutdown so
  // no client blocks past the server's lifetime.
  while (head_ != nullptr) {
    Request* r = head_;
    head_ = r->next;
    r->reject = Reject::kShutdown;
    r->done = true;
  }
  tail_ = nullptr;
  queue_len_ = 0;
  depth_g.set(0.0);
  done_cv_.notify_all();
}

void SurrogateServer::execute_batch(std::int64_t count) {
  static telemetry::Counter& batches_c = telemetry::counter("serve.batches");
  static telemetry::Histogram& occupancy_h = telemetry::histogram(
      "serve.batch_occupancy", std::span<const double>(kOccupancyBounds));
  // Fault hook: PARPDE_FAULT / fault::install delay rules on the
  // serve.dispatch tag slow the dispatch here, deterministically, before the
  // deadline filter — how tests starve queued requests past their deadline.
  // There is no message traffic; only the delay side effect applies.
  if (mpi::fault::enabled()) {
    (void)mpi::fault::on_send(0, 0, mpi::tags::kServe.base);
  }
  const std::int64_t now_us = telemetry::now_us();
  std::int64_t live = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    Request* r = batch_[static_cast<std::size_t>(i)];
    if (r->deadline_us != 0 && now_us > r->deadline_us) {
      r->reject = Reject::kDeadline;
      continue;
    }
    live_[static_cast<std::size_t>(live++)] = r;
  }
  {
    // Batch bookkeeping shares the server mutex with stats().
    std::lock_guard<std::mutex> lk(mutex_);
    ++occupancy_[static_cast<std::size_t>(live)];
    if (live > 0) ++batches_;
  }
  if (live == 0) return;
  batches_c.add();
  occupancy_h.observe(static_cast<double>(live));
  telemetry::Span span("serve.dispatch", "serve");
  const std::int64_t frame_floats = channels_ * height_ * width_;
  if (options_.coalesce) {
    // Gather the sessions' frames into one [B, C, H, W] stack, advance the
    // whole batch through a single wide plan pass, scatter the results back.
    for (std::int64_t i = 0; i < live; ++i) {
      const Session& s = sessions_[static_cast<std::size_t>(
          live_[static_cast<std::size_t>(i)]->session)];
      std::memcpy(staging_.data() + i * frame_floats, s.frame.data(),
                  static_cast<std::size_t>(frame_floats) * sizeof(float));
    }
    const nn::ForwardPlan::Output out =
        plan_.run_batched(staging_.data(), live, height_, width_);
    for (std::int64_t i = 0; i < live; ++i) {
      Session& s = sessions_[static_cast<std::size_t>(
          live_[static_cast<std::size_t>(i)]->session)];
      std::memcpy(s.frame.data(), out.data + i * frame_floats,
                  static_cast<std::size_t>(frame_floats) * sizeof(float));
      ++s.steps;
    }
  } else {
    // Serial dispatch baseline: the solo plan path, one session at a time.
    for (std::int64_t i = 0; i < live; ++i) {
      Session& s = sessions_[static_cast<std::size_t>(
          live_[static_cast<std::size_t>(i)]->session)];
      const nn::ForwardPlan::Output out =
          plan_.run(s.frame.data(), height_, width_);
      std::memcpy(s.frame.data(), out.data,
                  static_cast<std::size_t>(frame_floats) * sizeof(float));
      ++s.steps;
    }
  }
}

}  // namespace parpde::serve
