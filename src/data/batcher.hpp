#pragma once

// Mini-batch index scheduling: shuffles sample indices each epoch and cuts
// them into batches. Deterministic given the seed, so sequential and parallel
// trainers see identical batch schedules when configured identically.

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace parpde::data {

class Batcher {
 public:
  Batcher(std::int64_t num_samples, std::int64_t batch_size, std::uint64_t seed,
          bool shuffle = true);

  // Batches for the next epoch (advances the internal RNG when shuffling).
  [[nodiscard]] std::vector<std::vector<std::int64_t>> next_epoch();

  [[nodiscard]] std::int64_t num_samples() const { return num_samples_; }
  [[nodiscard]] std::int64_t batch_size() const { return batch_size_; }
  [[nodiscard]] std::int64_t batches_per_epoch() const {
    return (num_samples_ + batch_size_ - 1) / batch_size_;
  }

  // Shuffle-RNG state for crash-consistent checkpoints: restoring it replays
  // the exact batch schedule an uninterrupted run would have produced.
  [[nodiscard]] std::string rng_state() const { return rng_.serialize_state(); }
  void restore_rng(const std::string& state) { rng_.restore_state(state); }

 private:
  std::int64_t num_samples_;
  std::int64_t batch_size_;
  bool shuffle_;
  util::Rng rng_;
};

}  // namespace parpde::data
