#include "data/batcher.hpp"

#include <numeric>
#include <stdexcept>

namespace parpde::data {

Batcher::Batcher(std::int64_t num_samples, std::int64_t batch_size,
                 std::uint64_t seed, bool shuffle)
    : num_samples_(num_samples),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  if (num_samples <= 0) throw std::invalid_argument("Batcher: no samples");
  if (batch_size <= 0) throw std::invalid_argument("Batcher: bad batch size");
}

std::vector<std::vector<std::int64_t>> Batcher::next_epoch() {
  std::vector<std::int64_t> order(static_cast<std::size_t>(num_samples_));
  std::iota(order.begin(), order.end(), 0);
  if (shuffle_) rng_.shuffle(std::span<std::int64_t>(order));
  std::vector<std::vector<std::int64_t>> batches;
  batches.reserve(static_cast<std::size_t>(batches_per_epoch()));
  for (std::int64_t start = 0; start < num_samples_; start += batch_size_) {
    const auto end = std::min(start + batch_size_, num_samples_);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace parpde::data
