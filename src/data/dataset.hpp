#pragma once

// Frame-sequence dataset. The learning task of the paper is one-step
// prediction: frame t is the input, frame t+1 the target (Sec. IV-B). The
// dataset owns the recorded frames and exposes chronological train/validation
// splits over the pair indices ("we use the first 1000 time steps for the
// training and the remaining ones for the validation").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::data {

struct Split {
  std::vector<std::int64_t> train;  // pair indices: pair i = (frame i, frame i+1)
  std::vector<std::int64_t> val;
};

class FrameDataset {
 public:
  explicit FrameDataset(std::vector<Tensor> frames);

  [[nodiscard]] std::int64_t num_frames() const {
    return static_cast<std::int64_t>(frames_.size());
  }
  [[nodiscard]] std::int64_t num_pairs() const { return num_frames() - 1; }

  [[nodiscard]] const Tensor& frame(std::int64_t i) const {
    return frames_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const std::vector<Tensor>& frames() const { return frames_; }

  [[nodiscard]] std::int64_t channels() const { return frames_.front().dim(0); }
  [[nodiscard]] std::int64_t height() const { return frames_.front().dim(1); }
  [[nodiscard]] std::int64_t width() const { return frames_.front().dim(2); }

  // First `train_fraction` of the pairs train, the rest validate.
  [[nodiscard]] Split chronological_split(double train_fraction) const;

 private:
  std::vector<Tensor> frames_;  // each [C, H, W]
};

// Frame-sequence files ("PPFR" container wrapping the tensor format), used by
// the CLI to pass datasets between the simulate/train/eval stages.
void save_frames(const std::string& path, std::span<const Tensor> frames);
std::vector<Tensor> load_frames(const std::string& path);

}  // namespace parpde::data
