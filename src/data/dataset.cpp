#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace parpde::data {

FrameDataset::FrameDataset(std::vector<Tensor> frames)
    : frames_(std::move(frames)) {
  if (frames_.size() < 2) {
    throw std::invalid_argument("FrameDataset: need at least 2 frames");
  }
  const auto& first = frames_.front();
  if (first.ndim() != 3) {
    throw std::invalid_argument("FrameDataset: frames must be [C,H,W]");
  }
  for (const auto& f : frames_) {
    if (!f.same_shape(first)) {
      throw std::invalid_argument("FrameDataset: inconsistent frame shapes");
    }
  }
}

Split FrameDataset::chronological_split(double train_fraction) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("chronological_split: fraction must be in (0,1)");
  }
  const std::int64_t pairs = num_pairs();
  auto n_train = static_cast<std::int64_t>(train_fraction * static_cast<double>(pairs));
  n_train = std::clamp<std::int64_t>(n_train, 1, pairs - 1);
  Split split;
  split.train.reserve(static_cast<std::size_t>(n_train));
  split.val.reserve(static_cast<std::size_t>(pairs - n_train));
  for (std::int64_t i = 0; i < pairs; ++i) {
    (i < n_train ? split.train : split.val).push_back(i);
  }
  return split;
}

namespace {
constexpr char kFrameMagic[4] = {'P', 'P', 'F', 'R'};
constexpr std::uint32_t kFrameVersion = 1;
}  // namespace

void save_frames(const std::string& path, std::span<const Tensor> frames) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_frames: cannot open " + path);
  out.write(kFrameMagic, sizeof(kFrameMagic));
  out.write(reinterpret_cast<const char*>(&kFrameVersion), sizeof(kFrameVersion));
  const auto count = static_cast<std::uint32_t>(frames.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& f : frames) write_tensor(out, f);
  if (!out) throw std::runtime_error("save_frames: stream failure");
}

std::vector<Tensor> load_frames(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_frames: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw std::runtime_error("load_frames: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kFrameVersion) {
    throw std::runtime_error("load_frames: unsupported version");
  }
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count > (1u << 20)) {
    throw std::runtime_error("load_frames: implausible frame count");
  }
  std::vector<Tensor> frames;
  frames.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) frames.push_back(read_tensor(in));
  return frames;
}

}  // namespace parpde::data
