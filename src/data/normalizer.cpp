#include "data/normalizer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace parpde::data {

ChannelNormalizer ChannelNormalizer::fit(std::span<const Tensor> frames,
                                         double min_std) {
  if (frames.empty()) throw std::invalid_argument("ChannelNormalizer: no frames");
  const auto c = frames.front().dim(0);
  std::vector<util::RunningStat> stats(static_cast<std::size_t>(c));
  for (const auto& f : frames) {
    if (f.ndim() != 3 || f.dim(0) != c) {
      throw std::invalid_argument("ChannelNormalizer: inconsistent frames");
    }
    const auto plane = f.dim(1) * f.dim(2);
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float* p = f.data() + ic * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        stats[static_cast<std::size_t>(ic)].add(p[i]);
      }
    }
  }
  ChannelNormalizer norm;
  norm.mean_.resize(static_cast<std::size_t>(c));
  norm.std_.resize(static_cast<std::size_t>(c));
  for (std::int64_t ic = 0; ic < c; ++ic) {
    norm.mean_[static_cast<std::size_t>(ic)] = stats[static_cast<std::size_t>(ic)].mean();
    norm.std_[static_cast<std::size_t>(ic)] =
        std::max(stats[static_cast<std::size_t>(ic)].stddev(), min_std);
  }
  return norm;
}

ChannelNormalizer ChannelNormalizer::identity(std::int64_t channels) {
  ChannelNormalizer norm;
  norm.mean_.assign(static_cast<std::size_t>(channels), 0.0);
  norm.std_.assign(static_cast<std::size_t>(channels), 1.0);
  return norm;
}

Tensor ChannelNormalizer::transform(const Tensor& x, bool inverse) const {
  const bool batched = x.ndim() == 4;
  if (!batched && x.ndim() != 3) {
    throw std::invalid_argument("ChannelNormalizer: expected [C,H,W] or [N,C,H,W]");
  }
  const auto c = batched ? x.dim(1) : x.dim(0);
  if (c != channels()) {
    throw std::invalid_argument("ChannelNormalizer: channel count mismatch");
  }
  const auto n = batched ? x.dim(0) : 1;
  const auto plane = batched ? x.dim(2) * x.dim(3) : x.dim(1) * x.dim(2);
  Tensor out = x;
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const auto m = static_cast<float>(mean_[static_cast<std::size_t>(ic)]);
      const auto s = static_cast<float>(std_[static_cast<std::size_t>(ic)]);
      float* p = out.data() + (in * c + ic) * plane;
      if (inverse) {
        for (std::int64_t i = 0; i < plane; ++i) p[i] = p[i] * s + m;
      } else {
        for (std::int64_t i = 0; i < plane; ++i) p[i] = (p[i] - m) / s;
      }
    }
  }
  return out;
}

Tensor ChannelNormalizer::apply(const Tensor& x) const {
  return transform(x, /*inverse=*/false);
}

Tensor ChannelNormalizer::invert(const Tensor& x) const {
  return transform(x, /*inverse=*/true);
}

}  // namespace parpde::data
