#pragma once

// Per-channel affine normalization x -> (x - mean) / std. The paper trains on
// raw values and handles the magnitude imbalance through the MAPE loss; the
// normalizer exists for the loss ablation (MSE needs balanced channels to be
// competitive) and for numerically robust experimentation.

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace parpde::data {

class ChannelNormalizer {
 public:
  ChannelNormalizer() = default;

  // Fits per-channel mean/std over a set of [C, H, W] frames.
  static ChannelNormalizer fit(std::span<const Tensor> frames,
                               double min_std = 1e-8);

  // Identity transform for `channels` channels.
  static ChannelNormalizer identity(std::int64_t channels);

  // Applies/unapplies per-channel affine maps; accepts [C,H,W] or [N,C,H,W].
  [[nodiscard]] Tensor apply(const Tensor& x) const;
  [[nodiscard]] Tensor invert(const Tensor& x) const;

  [[nodiscard]] std::int64_t channels() const {
    return static_cast<std::int64_t>(mean_.size());
  }
  [[nodiscard]] double mean(std::int64_t c) const {
    return mean_.at(static_cast<std::size_t>(c));
  }
  [[nodiscard]] double stddev(std::int64_t c) const {
    return std_.at(static_cast<std::size_t>(c));
  }

 private:
  Tensor transform(const Tensor& x, bool inverse) const;

  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace parpde::data
