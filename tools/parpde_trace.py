#!/usr/bin/env python3
"""parpde-trace: merge and analyze parpde Chrome trace-event files.

The C++ side (--trace=FILE on parpde_cli, telemetry::write_chrome_trace)
emits one Chrome trace-event JSON per process: complete spans (ph "X") on
one pid lane per rank, flow events (ph "s"/"f") tying every halo/collective
send to its receive across ranks, and per-lane clock_sync metadata recording
the NTP-style offset that was already applied to align each rank's
timestamps to rank 0's clock. This tool turns those files into numbers:

  merge    Concatenates per-process trace shards into one aligned timeline
           (threads-as-ranks runs already produce a single merged file; this
           exists for multi-process launches). Shards whose clock_sync
           metadata says the offset was NOT applied are shifted here.

  analyze  Critical-path attribution: for every "rollout.step" slice on
           every rank lane, buckets the step's wall time into
             interior   "rollout.forward.interior" / "rollout.forward"
             rim        "rollout.forward.rim"
             halo_send  "halo.begin" (packing + buffered sends)
             recv_wait  "halo.finish" minus the nested "halo.stall"
             stall      "halo.stall" (timed-out receive attempts on a
                        degrading border)
             gather     "rollout.gather"
             other      residual glue (health scan, bookkeeping)
           so the seven buckets sum to the measured step time exactly.
           Validates that every flow start has exactly one finish, measures
           per-flow wire time (receive ts minus send ts, clamped at 0 since
           clock offsets carry +-RTT/2 noise), and writes the aggregate
           (p50/p99 step latency, attribution shares, flow accounting) as
           BENCH_trace.json. --check makes it exit 1 when flows are
           unmatched or the residual exceeds --tolerance of total step time.

Usage:
  tools/parpde_trace.py merge -o merged.json shard0.json [shard1.json ...]
  tools/parpde_trace.py analyze trace.json [-o BENCH_trace.json]
                        [--steps-out steps.jsonl] [--check] [--tolerance X]
  tools/parpde_trace.py --self-test

See docs/observability.md for the span/flow catalogue and a worked example.
"""

from __future__ import annotations

import argparse
import json
import sys

# Span names -> attribution bucket. Anything else inside a step (nested
# conv/gemm spans, say) is covered by its parent bucket or by "other".
_INTERIOR = ("rollout.forward.interior", "rollout.forward")
_RIM = "rollout.forward.rim"
_HALO_SEND = "halo.begin"
_HALO_FINISH = "halo.finish"
_HALO_STALL = "halo.stall"
_GATHER = "rollout.gather"
_STEP = "rollout.step"

BUCKETS = (
    "interior",
    "rim",
    "halo_send",
    "recv_wait",
    "stall",
    "gather",
    "other",
)


def load_trace(path: str) -> list:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
    else:
        events = doc  # bare-array form is also legal Chrome trace JSON
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return events


def clock_offsets(events: list) -> dict:
    """pid -> (offset_us, applied) from the clock_sync metadata records."""
    offsets = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "clock_sync":
            args = e.get("args", {})
            offsets[e.get("pid", 0)] = (
                int(args.get("offset_us", 0)),
                bool(args.get("applied", False)),
            )
    return offsets


# --- merge -------------------------------------------------------------------


def merge(paths: list, out_path: str, renumber: bool = False) -> dict:
    """Concatenates trace shards into one timeline. Shards whose clock_sync
    says applied:false get their offset applied here (and the metadata
    rewritten), so the merged file is always on rank 0's clock. --renumber
    spreads each shard's pids into its own block of 1000 to keep lanes from
    colliding when two shards both contain a rank 0."""
    merged = []
    for index, path in enumerate(paths):
        events = load_trace(path)
        offsets = clock_offsets(events)
        for e in events:
            e = dict(e)
            pid = e.get("pid", 0)
            offset, applied = offsets.get(pid, (0, True))
            if not applied and "ts" in e and e.get("ph") != "M":
                e["ts"] = int(e["ts"]) + offset
            if e.get("ph") == "M" and e.get("name") == "clock_sync":
                e["args"] = dict(e.get("args", {}))
                e["args"]["applied"] = True
            if renumber:
                e["pid"] = index * 1000 + pid
            merged.append(e)
    doc = {"displayTimeUnit": "ms", "traceEvents": merged}
    if out_path:
        with open(out_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, separators=(",", ":"))
    return doc


# --- analyze -----------------------------------------------------------------


def percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return float(sorted_values[rank])


def attribute_step(step: dict, children: list) -> dict:
    """Buckets one rollout.step's duration. `children` are the X spans on
    the same pid fully contained in the step's [ts, ts+dur] interval."""
    sums = {b: 0 for b in BUCKETS}
    finish = 0
    for c in children:
        name = c["name"]
        dur = int(c.get("dur", 0))
        if name in _INTERIOR:
            sums["interior"] += dur
        elif name == _RIM:
            sums["rim"] += dur
        elif name == _HALO_SEND:
            sums["halo_send"] += dur
        elif name == _HALO_FINISH:
            finish += dur
        elif name == _HALO_STALL:
            sums["stall"] += dur
        elif name == _GATHER:
            sums["gather"] += dur
    # The stall spans are nested inside halo.finish: what remains of finish
    # after subtracting them is genuine waiting on healthy receives.
    sums["recv_wait"] = max(0, finish - sums["stall"])
    accounted = (
        sums["interior"]
        + sums["rim"]
        + sums["halo_send"]
        + finish
        + sums["gather"]
    )
    dur = int(step.get("dur", 0))
    sums["other"] = dur - accounted  # residual; may dip below 0 on rounding
    sums["step_us"] = dur
    return sums


def analyze_events(events: list, tolerance: float = 0.05) -> dict:
    spans_by_pid: dict = {}
    flows: dict = {}
    flow_names: dict = {}
    for e in events:
        ph = e.get("ph")
        if ph == "X":
            spans_by_pid.setdefault(e.get("pid", 0), []).append(e)
        elif ph in ("s", "f"):
            key = (e.get("cat", ""), int(e.get("id", 0)))
            rec = flows.setdefault(key, {"s": [], "f": []})
            rec[ph].append(e)
            flow_names[key] = e.get("name", "")

    # Critical-path attribution per rollout.step slice, per rank lane.
    steps = []
    for pid, spans in sorted(spans_by_pid.items()):
        spans.sort(key=lambda s: (int(s.get("ts", 0)), -int(s.get("dur", 0))))
        step_spans = [s for s in spans if s.get("name") == _STEP]
        for index, step in enumerate(step_spans):
            t0 = int(step.get("ts", 0))
            t1 = t0 + int(step.get("dur", 0))
            children = [
                s
                for s in spans
                if s is not step
                and int(s.get("ts", 0)) >= t0
                and int(s.get("ts", 0)) + int(s.get("dur", 0)) <= t1
                and s.get("name") != _STEP
            ]
            record = attribute_step(step, children)
            record["rank"] = pid
            record["step"] = index
            steps.append(record)

    # Flow accounting: every start must have exactly one finish; wire time is
    # receive minus send, clamped at zero (offsets carry +-RTT/2 noise).
    started = finished = matched = unmatched = duplicated = 0
    wire_us = []
    by_name: dict = {}
    for key, rec in flows.items():
        name = flow_names[key]
        stat = by_name.setdefault(
            name, {"started": 0, "finished": 0, "matched": 0, "unmatched": 0}
        )
        started += len(rec["s"])
        finished += len(rec["f"])
        stat["started"] += len(rec["s"])
        stat["finished"] += len(rec["f"])
        if len(rec["s"]) == 1 and len(rec["f"]) == 1:
            matched += 1
            stat["matched"] += 1
            wire_us.append(
                max(0, int(rec["f"][0]["ts"]) - int(rec["s"][0]["ts"]))
            )
        elif len(rec["s"]) > 1 or len(rec["f"]) > 1:
            duplicated += 1
        else:
            unmatched += 1
            stat["unmatched"] += 1

    durations = sorted(s["step_us"] for s in steps)
    total_step = sum(durations)
    attribution = {b: sum(s[b] for s in steps) for b in BUCKETS}
    attribution_pct = {
        b: (100.0 * attribution[b] / total_step if total_step else 0.0)
        for b in BUCKETS
    }
    unattributed_pct = (
        100.0 * abs(attribution["other"]) / total_step if total_step else 0.0
    )
    wire_us.sort()

    failures = []
    if not steps:
        failures.append("no rollout.step slices in the trace")
    if unmatched:
        failures.append(f"{unmatched} flow(s) without a matching receive")
    if duplicated:
        failures.append(f"{duplicated} flow id(s) with duplicate endpoints")
    if unattributed_pct > 100.0 * tolerance:
        failures.append(
            f"unattributed residual {unattributed_pct:.2f}% of step time "
            f"exceeds {100.0 * tolerance:.1f}%"
        )

    return {
        "bench": "trace",
        "ranks": len(spans_by_pid),
        "steps": len(steps),
        "step_us": {
            "p50": percentile(durations, 0.50),
            "p99": percentile(durations, 0.99),
            "mean": (total_step / len(durations)) if durations else 0.0,
            "max": float(durations[-1]) if durations else 0.0,
            "total": total_step,
        },
        "attribution_us": attribution,
        "attribution_pct": attribution_pct,
        "unattributed_pct": unattributed_pct,
        "comm_wire_us": {
            "flows": len(wire_us),
            "total": sum(wire_us),
            "mean": (sum(wire_us) / len(wire_us)) if wire_us else 0.0,
            "p99": percentile(wire_us, 0.99),
        },
        "flows": {
            "started": started,
            "finished": finished,
            "matched": matched,
            "unmatched": unmatched,
            "duplicated": duplicated,
            "by_name": by_name,
        },
        "check": {"passed": not failures, "failures": failures},
        "per_step": steps,
    }


def cmd_analyze(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    report = analyze_events(events, tolerance=args.tolerance)
    report["source"] = args.trace
    report["clock_offsets_us"] = {
        str(pid): off for pid, (off, _) in sorted(clock_offsets(events).items())
    }
    per_step = report.pop("per_step")
    if args.steps_out:
        with open(args.steps_out, "w", encoding="utf-8") as f:
            for record in per_step:
                f.write(json.dumps(record, separators=(",", ":")) + "\n")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")

    s = report["step_us"]
    print(
        f"{report['ranks']} rank lane(s), {report['steps']} step slice(s): "
        f"p50 {s['p50']:.0f} us, p99 {s['p99']:.0f} us"
    )
    for bucket in BUCKETS:
        print(
            f"  {bucket:<10} {report['attribution_us'][bucket]:>10d} us "
            f"({report['attribution_pct'][bucket]:5.1f}%)"
        )
    fl = report["flows"]
    print(
        f"flows: {fl['started']} started, {fl['matched']} matched, "
        f"{fl['unmatched']} unmatched | wire p99 "
        f"{report['comm_wire_us']['p99']:.0f} us"
    )
    if args.check and not report["check"]["passed"]:
        for failure in report["check"]["failures"]:
            print(f"check FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    doc = merge(args.shards, args.out, renumber=args.renumber)
    print(
        f"merged {len(args.shards)} shard(s), "
        f"{len(doc['traceEvents'])} events -> {args.out}"
    )
    return 0


# --- self-test ---------------------------------------------------------------


def _span(pid, name, ts, dur, cat="rollout"):
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": pid,
    }


def _flow(ph, pid, flow_id, ts, name="domain.halo"):
    return {
        "ph": ph,
        "name": name,
        "cat": "flow",
        "id": flow_id,
        "ts": ts,
        "pid": pid,
        "tid": pid,
    }


def _synthetic_rank(pid, base):
    """One rollout step with a known layout: 10 us halo_send, 50 us
    interior, 20 us finish containing a 5 us stall, 10 us rim, 8 us gather,
    2 us residual glue -> 100 us step."""
    return [
        _span(pid, _STEP, base, 100),
        _span(pid, _HALO_SEND, base, 10, cat="comm"),
        _span(pid, "rollout.forward.interior", base + 10, 50),
        _span(pid, _HALO_FINISH, base + 60, 20, cat="comm"),
        _span(pid, _HALO_STALL, base + 65, 5, cat="comm"),
        _span(pid, _RIM, base + 80, 10),
        _span(pid, _GATHER, base + 90, 8),
    ]


def self_test() -> int:
    events = _synthetic_rank(0, 1000) + _synthetic_rank(1, 1001)
    events += [
        _flow("s", 0, 7, 1005),
        _flow("f", 1, 7, 1008),  # wire 3 us
        _flow("s", 1, 8, 1005),
        _flow("f", 0, 8, 1006),  # wire 1 us
    ]
    report = analyze_events(events)
    expected = {
        "interior": 100,
        "rim": 20,
        "halo_send": 20,
        "recv_wait": 30,
        "stall": 10,
        "gather": 16,
        "other": 4,
    }
    failures = []
    if report["steps"] != 2 or report["ranks"] != 2:
        failures.append(f"expected 2 steps / 2 ranks, got {report['steps']}"
                        f" / {report['ranks']}")
    for bucket, want in expected.items():
        got = report["attribution_us"][bucket]
        if got != want:
            failures.append(f"bucket {bucket}: expected {want}, got {got}")
    if sum(report["attribution_us"][b] for b in BUCKETS) != 200:
        failures.append("attribution does not sum to total step time")
    if report["comm_wire_us"]["total"] != 4:
        failures.append(
            f"wire total: expected 4, got {report['comm_wire_us']['total']}"
        )
    if report["flows"]["matched"] != 2 or report["flows"]["unmatched"] != 0:
        failures.append(f"flow accounting wrong: {report['flows']}")
    if not report["check"]["passed"]:
        failures.append(f"clean trace failed check: {report['check']}")

    # An orphaned send (message dropped by fault injection, say) must fail
    # --check and be counted as unmatched.
    bad = events + [_flow("s", 0, 9, 1050)]
    bad_report = analyze_events(bad)
    if bad_report["flows"]["unmatched"] != 1:
        failures.append("orphaned flow not counted as unmatched")
    if bad_report["check"]["passed"]:
        failures.append("orphaned flow passed --check")

    # A trace whose steps are mostly unattributed time must fail the
    # tolerance gate.
    sparse = [_span(0, _STEP, 0, 1000), _span(0, _HALO_SEND, 0, 10, "comm")]
    sparse_report = analyze_events(sparse, tolerance=0.05)
    if sparse_report["check"]["passed"]:
        failures.append("99% unattributed step passed the 5% tolerance gate")

    if failures:
        print("parpde_trace self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("parpde_trace self-test passed")
    return 0


# --- driver ------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the analyzer against a synthetic trace",
    )
    sub = parser.add_subparsers(dest="command")

    p_merge = sub.add_parser("merge", help="merge per-process trace shards")
    p_merge.add_argument("shards", nargs="+", help="input trace JSON files")
    p_merge.add_argument("-o", "--out", required=True, help="merged output")
    p_merge.add_argument(
        "--renumber",
        action="store_true",
        help="give each shard its own pid block of 1000 (rank collisions)",
    )

    p_analyze = sub.add_parser(
        "analyze", help="critical-path attribution + flow validation"
    )
    p_analyze.add_argument("trace", help="trace JSON (from --trace or merge)")
    p_analyze.add_argument(
        "-o", "--out", default="BENCH_trace.json", help="aggregate JSON output"
    )
    p_analyze.add_argument(
        "--steps-out", default="", help="per-step attribution JSONL output"
    )
    p_analyze.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max unattributed fraction of step time for --check (0.05 = 5%%)",
    )
    p_analyze.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on unmatched flows or excessive unattributed time",
    )

    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.command == "merge":
        return cmd_merge(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
