// parpde-mc: schedule-space model checker for the minimpi runtime
// (docs/static-analysis.md, "schedule-space model checking").
//
// Runs invariant oracles — a 2x2 overlapped rollout, a ParallelTrainer epoch,
// and a checkpoint/kill/resume cycle — under hundreds of seeded delivery/
// wakeup/chunk-order schedules (src/verify/), asserting that every explored
// interleaving produces bit-identical outputs, deadlocks nowhere (the
// validator watchdog turns hangs into errors) and leaks no mailbox messages.
// On divergence the failing schedule is shrunk to a minimal PARPDE_SCHEDULE
// replay spec, printed, and optionally written to --fail-spec-out.
//
//   parpde_mc --oracle=rollout|trainer|checkpoint|recovery|all [--distinct=N]
//             [--runs=N] [--seed=S] [--fail-spec-out=PATH]
//   parpde_mc --self-test          seed a known order bug; require catch+shrink
//   parpde_mc --oracle=X --replay=SPEC   re-run one schedule spec
//
// Exit codes: 0 all schedules agree, 1 divergence (or self-test miss),
// 2 usage error.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "domain/partition.hpp"
#include "euler/simulate.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/collectives.hpp"
#include "minimpi/environment.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/validate.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "verify/explore.hpp"

namespace parpde {
namespace {

using core::ExecutionMode;
using core::ParallelTrainReport;
using core::TrainConfig;

// --- output hashing ----------------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 0xCBF29CE484222325ULL;

std::uint64_t hash_tensor(const Tensor& t, std::uint64_t h) {
  return fnv1a(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float), h);
}

std::uint64_t hash_report(const ParallelTrainReport& report) {
  std::uint64_t h = kFnvSeed;
  for (const auto& outcome : report.rank_outcomes) {
    for (const Tensor& p : outcome.parameters) h = hash_tensor(p, h);
  }
  for (const int r : report.retrained_ranks) h = fnv1a(&r, sizeof(r), h);
  return h;
}

// --- oracle fixtures ---------------------------------------------------------

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.network.channels = {4, 6, 4};
  cfg.network.kernel = 3;
  cfg.epochs = 1;
  cfg.batch_size = 4;
  cfg.learning_rate = 2e-3;
  cfg.loss = "mse";
  cfg.border = core::BorderMode::kHaloPad;
  return cfg;
}

data::FrameDataset tiny_dataset() {
  euler::EulerConfig ec;
  ec.n = 16;
  euler::SimulateOptions opts;
  opts.num_frames = 13;
  auto sim = euler::simulate(ec, opts);
  return data::FrameDataset(std::move(sim.frames));
}

// 2x2 overlapped rollout over shared untrained weights (the rollout's
// bit-identity does not depend on where the weights came from, and skipping
// training keeps each explored schedule cheap).
verify::Oracle make_rollout_oracle() {
  const TrainConfig cfg = tiny_config();
  constexpr std::int64_t kGrid = 16;
  core::NetworkTrainer reference(cfg, 0);
  const auto params = core::export_parameters(reference.model());
  ParallelTrainReport report;
  report.ranks = 4;
  report.dims = mpi::dims_create(4);
  const domain::Partition part(kGrid, kGrid, report.dims.px, report.dims.py);
  report.rank_outcomes.resize(4);
  for (int r = 0; r < 4; ++r) {
    auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
    outcome.rank = r;
    outcome.block = part.block_of_rank(r);
    outcome.parameters = params;
  }
  Tensor initial({4, kGrid, kGrid});
  util::Rng rng(42);
  rng.fill_uniform(initial.values(), 0.5f, 1.5f);

  return [cfg, report = std::move(report), initial = std::move(initial)] {
    core::RolloutOptions options;
    options.engine = core::RolloutEngine::kOverlapped;
    const auto result = core::parallel_rollout(cfg, report, initial,
                                               /*steps=*/3, options);
    if (result.degraded_borders != 0) {
      throw std::runtime_error("rollout degraded a border with no faults");
    }
    std::uint64_t h = kFnvSeed;
    for (const Tensor& frame : result.frames) h = hash_tensor(frame, h);
    for (const int s : result.recorded_steps) h = fnv1a(&s, sizeof(s), h);
    return h;
  };
}

// One communication-free training epoch across 4 concurrent rank threads.
verify::Oracle make_trainer_oracle() {
  auto ds = std::make_shared<data::FrameDataset>(tiny_dataset());
  const TrainConfig cfg = tiny_config();
  return [ds, cfg] {
    const core::ParallelTrainer trainer(cfg, 4);
    return hash_report(trainer.train(*ds, ExecutionMode::kConcurrent));
  };
}

// Checkpoint-every-epoch training where rank 1 is killed at the epoch-1
// boundary and retrained from its crash-consistent checkpoint, followed by a
// short overlapped rollout of the recovered models. The recovery protocol and
// inference over the recovered weights must both be schedule-independent.
verify::Oracle make_checkpoint_oracle() {
  euler::EulerConfig ec;
  ec.n = 16;
  euler::SimulateOptions sopts;
  sopts.num_frames = 13;
  auto sim = euler::simulate(ec, sopts);
  auto initial = std::make_shared<Tensor>(sim.frames.front());
  auto ds = std::make_shared<data::FrameDataset>(
      data::FrameDataset(std::move(sim.frames)));
  TrainConfig cfg = tiny_config();
  cfg.epochs = 2;
  const auto base =
      std::filesystem::temp_directory_path() / "parpde_mc_ckpt";
  auto counter = std::make_shared<int>(0);
  return [ds, cfg, base, counter, initial] {
    const auto dir = base / std::to_string((*counter)++);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    core::FaultToleranceOptions ft;
    ft.checkpoint_dir = dir.string();
    ft.checkpoint_every = 1;
    mpi::fault::KillSpec kill;
    kill.rank = 1;
    kill.at_epoch = 1;
    mpi::fault::install(mpi::fault::FaultPlan(7).set_kill(kill));
    ParallelTrainReport report;
    try {
      const core::ParallelTrainer trainer(cfg, 4);
      report = trainer.train(*ds, ExecutionMode::kConcurrent, nullptr, &ft);
    } catch (...) {
      mpi::fault::uninstall();
      std::filesystem::remove_all(dir);
      throw;
    }
    mpi::fault::uninstall();
    std::filesystem::remove_all(dir);
    if (report.retrained_ranks != std::vector<int>{1}) {
      throw std::runtime_error("checkpoint oracle: rank 1 was not retrained");
    }
    std::uint64_t h = hash_report(report);
    core::RolloutOptions options;
    options.engine = core::RolloutEngine::kOverlapped;
    const auto rollout =
        core::parallel_rollout(cfg, report, *initial, /*steps=*/2, options);
    if (rollout.degraded_borders != 0) {
      throw std::runtime_error("checkpoint oracle: post-resume rollout "
                               "degraded a border with no faults");
    }
    for (const Tensor& frame : rollout.frames) h = hash_tensor(frame, h);
    return h;
  };
}

// Elastic kill -> adopt -> resume cycle: rank 1 dies at a step boundary
// mid-rollout, the survivors detect it via the heartbeat lease, rebalance and
// recompute the orphaned task from the initial frame (no PPES snapshots, so
// the oracle touches no filesystem state). Detection order, adoption and the
// recomputed frames must all be schedule-independent: every interleaving has
// to converge on the same assignment epoch and bit-identical outputs.
verify::Oracle make_recovery_oracle() {
  const TrainConfig cfg = tiny_config();
  constexpr std::int64_t kGrid = 16;
  core::NetworkTrainer reference(cfg, 0);
  const auto params = core::export_parameters(reference.model());
  ParallelTrainReport report;
  report.ranks = 4;
  report.dims = mpi::dims_create(4);
  const domain::Partition part(kGrid, kGrid, report.dims.px, report.dims.py);
  report.rank_outcomes.resize(4);
  for (int r = 0; r < 4; ++r) {
    auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
    outcome.rank = r;
    outcome.block = part.block_of_rank(r);
    outcome.parameters = params;
  }
  Tensor initial({4, kGrid, kGrid});
  util::Rng rng(42);
  rng.fill_uniform(initial.values(), 0.5f, 1.5f);

  return [cfg, report = std::move(report), initial = std::move(initial)] {
    mpi::fault::KillSpec kill;
    kill.rank = 1;
    kill.at_step = 1;
    mpi::fault::install(mpi::fault::FaultPlan(7).set_kill(kill));
    core::RolloutResult result;
    try {
      core::RolloutOptions options;
      options.elastic.enabled = true;
      options.elastic.lease = std::chrono::milliseconds(25);
      options.elastic.missed_leases = 6;
      result = core::parallel_rollout(cfg, report, initial, /*steps=*/3,
                                      options);
    } catch (...) {
      mpi::fault::uninstall();
      throw;
    }
    mpi::fault::uninstall();
    if (result.health.recoveries != 1 || result.health.adopted_tasks < 1) {
      throw std::runtime_error("recovery oracle: the killed rank was not "
                               "adopted");
    }
    if (result.degraded_borders != 0) {
      throw std::runtime_error("recovery oracle: a border stayed degraded "
                               "after adoption");
    }
    std::uint64_t h = kFnvSeed;
    for (const Tensor& frame : result.frames) h = hash_tensor(frame, h);
    h = fnv1a(&result.health.assignment_epoch,
              sizeof(result.health.assignment_epoch), h);
    h = fnv1a(&result.health.adopted_tasks, sizeof(result.health.adopted_tasks),
              h);
    return h;
  };
}

// --- seeded order bug (self-test) -------------------------------------------
// Two neighbour ranks send rim bands that OVERLAP on four cells, and the
// receiver applies them in ARRIVAL order with a non-associative blend — the
// class of bug parpde-mc exists to catch (the real rim-band apply uses
// disjoint windows and fixed sources for exactly this reason). Rank 2 delays
// its send so the unperturbed arrival order is stable; a schedule that
// front-runs rank 2's delivery flips the apply order and changes the corner
// cells.
std::uint64_t buggy_rim_oracle() {
  constexpr int kRimTag = 9000;  // user tag space (outside the registry)
  constexpr int kBand = 8;
  constexpr int kOverlapOffset = 4;  // rank 2's band starts 4 cells in
  std::vector<float> tile(16, 1.0f);
  mpi::Environment env(3);
  env.run([&](mpi::Communicator& comm) {
    if (comm.rank() == 1 || comm.rank() == 2) {
      if (comm.rank() == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      std::vector<float> band(kBand);
      for (int i = 0; i < kBand; ++i) {
        band[static_cast<std::size_t>(i)] =
            comm.rank() == 1 ? 0.25f * static_cast<float>(i + 1)
                             : -0.5f * static_cast<float>(i + 1);
      }
      comm.send<float>(0, kRimTag, band);
    }
    // Both bands are queued at rank 0 before any receive runs.
    mpi::barrier(comm);
    if (comm.rank() == 0) {
      for (int k = 0; k < 2; ++k) {
        int src = 0;
        const auto band = comm.recv<float>(mpi::kAnySource, kRimTag, &src);
        const int off = src == 1 ? 0 : kOverlapOffset;
        for (int i = 0; i < kBand; ++i) {
          auto& cell = tile[static_cast<std::size_t>(off + i)];
          cell = cell * 0.5f + band[static_cast<std::size_t>(i)];
        }
      }
    }
  });
  return fnv1a(tile.data(), tile.size() * sizeof(float), kFnvSeed);
}

// --- driver ------------------------------------------------------------------

struct OracleDef {
  const char* name;
  int target_distinct;
  std::function<verify::Oracle()> make;
};

// Per-oracle schedule-space size differs by construction: the rollout and the
// post-resume rollout inside the checkpoint cycle carry live halo traffic
// whose delivery order the scheduler permutes freely, while a concurrent-mode
// training epoch is communication-free (the paper's central claim) so its
// schedule space collapses to a single equivalence class — parpde-mc verifying
// distinct=1 for the trainer oracle is that claim, checked.
const OracleDef kOracles[] = {
    {"rollout", 160, make_rollout_oracle},
    {"trainer", 50, make_trainer_oracle},
    {"checkpoint", 60, make_checkpoint_oracle},
    {"recovery", 40, make_recovery_oracle},
};

void write_fail_spec(const std::string& path, const std::string& oracle,
                     const verify::Schedule& schedule) {
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "oracle=%s\nPARPDE_SCHEDULE=%s\n", oracle.c_str(),
                 schedule.spec().c_str());
    std::fclose(f);
  }
}

int run_oracle(const OracleDef& def, std::uint64_t seed, int distinct_override,
               int runs_override, int min_distinct,
               const std::string& fail_spec_out) {
  const verify::Oracle oracle = def.make();
  verify::ExploreOptions opt;
  opt.base_seed = seed;
  opt.target_distinct =
      distinct_override > 0 ? distinct_override : def.target_distinct;
  opt.max_runs = runs_override;
  const auto res = verify::explore(oracle, opt);
  std::printf(
      "[parpde-mc] oracle=%s runs=%d distinct=%d perturbed=%llu "
      "order_sensitive=%llu%s\n",
      def.name, res.runs, res.distinct,
      static_cast<unsigned long long>(res.perturbed),
      static_cast<unsigned long long>(res.order_sensitive),
      res.failed ? " FAILED" : "");
  if (!res.failed) {
    if (res.distinct < min_distinct) {
      std::printf("[parpde-mc] UNDER-EXPLORED: %d distinct schedules < "
                  "required %d (raise --runs or check the hooks)\n",
                  res.distinct, min_distinct);
      return 1;
    }
    return 0;
  }
  std::printf("[parpde-mc] failure: %s\n", res.failure.c_str());
  std::printf("[parpde-mc] failing schedule: %s\n",
              res.failing_schedule.spec().c_str());
  const auto shrunk =
      verify::shrink(oracle, res.reference_hash, res.failing_schedule);
  std::printf("[parpde-mc] shrunk (%s, %d trials): PARPDE_SCHEDULE=\"%s\"\n",
              shrunk.reproduced ? "reproduced" : "did NOT replay",
              shrunk.trials, shrunk.schedule.spec().c_str());
  std::printf("[parpde-mc] replay: PARPDE_SCHEDULE=\"%s\" parpde_mc "
              "--oracle=%s --replay\n",
              shrunk.schedule.spec().c_str(), def.name);
  write_fail_spec(fail_spec_out, def.name, shrunk.schedule);
  return 1;
}

int run_replay(const OracleDef& def, const std::string& spec) {
  const verify::Oracle oracle = def.make();
  // Reference hash from an inert schedule, then the replayed spec.
  verify::install([] {
    verify::Schedule ref;
    ref.perturb_pct = 0;
    ref.yields = false;
    return ref;
  }());
  const std::uint64_t reference = oracle();
  verify::uninstall();
  verify::install(verify::Schedule::parse(spec));
  std::uint64_t replayed = 0;
  std::string error;
  try {
    replayed = oracle();
  } catch (const std::exception& e) {
    error = e.what();
  }
  const auto rep = verify::report();
  verify::uninstall();
  if (!error.empty()) {
    std::printf("[parpde-mc] replay FAILED (error): %s\n", error.c_str());
    return 1;
  }
  std::printf("[parpde-mc] replay %s: perturbed=%llu order_sensitive=%llu\n",
              replayed == reference ? "matched the reference"
                                    : "DIVERGED from the reference",
              static_cast<unsigned long long>(rep.perturbed),
              static_cast<unsigned long long>(rep.order_sensitive));
  return replayed == reference ? 0 : 1;
}

int run_self_test(const std::string& fail_spec_out) {
  verify::ExploreOptions opt;
  opt.base_seed = 42;
  opt.target_distinct = 1000;  // explore until the bug fires or runs cap out
  opt.max_runs = 64;
  opt.perturb_pct = 60;
  opt.yields = false;
  const auto res = verify::explore(buggy_rim_oracle, opt);
  if (!res.failed) {
    std::printf("[parpde-mc] SELF-TEST FAILED: the seeded rim-band order bug "
                "was not detected in %d runs\n",
                res.runs);
    return 1;
  }
  const auto shrunk =
      verify::shrink(buggy_rim_oracle, res.reference_hash,
                     res.failing_schedule);
  if (!shrunk.reproduced || shrunk.schedule.only.size() != 1) {
    std::printf("[parpde-mc] SELF-TEST FAILED: shrink did not reduce to one "
                "delivery key (reproduced=%d, keys=%zu)\n",
                shrunk.reproduced ? 1 : 0, shrunk.schedule.only.size());
    return 1;
  }
  // The minimal spec must replay deterministically, and the flipped receive
  // must be flagged as order-sensitive (concurrent any-source candidates).
  for (int i = 0; i < 3; ++i) {
    verify::install(shrunk.schedule);
    const std::uint64_t h = buggy_rim_oracle();
    const auto rep = verify::report();
    verify::uninstall();
    if (h == res.reference_hash) {
      std::printf("[parpde-mc] SELF-TEST FAILED: shrunk spec did not replay "
                  "on attempt %d\n", i);
      return 1;
    }
    if (rep.order_sensitive == 0) {
      std::printf("[parpde-mc] SELF-TEST FAILED: flipped any-source receive "
                  "was not flagged order-sensitive\n");
      return 1;
    }
  }
  write_fail_spec(fail_spec_out, "self-test", shrunk.schedule);
  std::printf("[parpde-mc] self-test OK: bug caught after %d runs, shrunk in "
              "%d trials to PARPDE_SCHEDULE=\"%s\"\n",
              res.runs, shrunk.trials, shrunk.schedule.spec().c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: parpde_mc --oracle=rollout|trainer|checkpoint|recovery"
               "|all "
               "[--distinct=N] [--min-distinct=N] [--runs=N] [--seed=S] "
               "[--replay=SPEC] [--fail-spec-out=PATH] | --self-test\n");
  return 2;
}

}  // namespace
}  // namespace parpde

int main(int argc, char** argv) {
  using namespace parpde;
  std::string oracle_name;
  std::string replay_spec;
  std::string fail_spec_out;
  std::uint64_t seed = 1;
  int distinct = 0;
  int min_distinct = 0;
  int runs = 0;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--oracle=")) {
      oracle_name = v;
    } else if (const char* v = value("--replay=")) {
      replay_spec = v;
    } else if (const char* v = value("--fail-spec-out=")) {
      fail_spec_out = v;
    } else if (const char* v = value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--distinct=")) {
      distinct = std::atoi(v);
    } else if (const char* v = value("--min-distinct=")) {
      min_distinct = std::atoi(v);
    } else if (const char* v = value("--runs=")) {
      runs = std::atoi(v);
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      return usage();
    }
  }

  // Deadlock-freedom and mailbox-leak-freedom oracles: the validator watchdog
  // turns any schedule-induced hang into validate::DeadlockError, and the
  // finalize check turns an undelivered message into validate::LeakError.
  mpi::validate::set_enabled(true);
  mpi::validate::set_timeout_ms(20000);
  // Two pool workers so chunk-claim order is a real scheduling axis even on a
  // single-core host (parallel_for must stay bit-deterministic regardless).
  util::ThreadPool::configure_global(2);

  if (self_test) return run_self_test(fail_spec_out);
  if (oracle_name.empty()) return usage();

  if (!replay_spec.empty()) {
    for (const auto& def : kOracles) {
      if (oracle_name == def.name) return run_replay(def, replay_spec);
    }
    return usage();
  }

  int rc = 0;
  bool matched = false;
  for (const auto& def : kOracles) {
    if (oracle_name != "all" && oracle_name != def.name) continue;
    matched = true;
    rc |= run_oracle(def, seed, distinct, runs, min_distinct, fail_spec_out);
  }
  return matched ? rc : usage();
}
