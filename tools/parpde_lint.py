#!/usr/bin/env python3
"""parpde-verify: repo-specific communication-correctness and hygiene lint.

A fast, AST-free static pass over src/ that enforces invariants the compiler
cannot (see docs/static-analysis.md for the rule catalogue and how to add a
rule):

  literal-tag      MPI tags must come from the central registry
                   (src/minimpi/tags.hpp); no integer-literal tag arguments
                   in point-to-point calls and no kTag* constants defined
                   outside the registry.
  nondeterminism   kernel/trainer paths that must stay bit-deterministic may
                   not call rand()/srand()/time() or iterate unordered
                   containers.
  span-temporary   telemetry::Span must be a named RAII local; a discarded
                   temporary is destroyed immediately and measures nothing.
  zero-comm        training-phase files (the paper's communication-free
                   training claim) may not contain send/recv/collective
                   calls; pure-compute layers may not include minimpi at all.
  include-hygiene  headers start with #pragma once; no relative-parent or
                   <bits/...> includes; a .cpp's first include is its own
                   header.
  backend-bypass   compute call sites must go through the KernelBackend
                   interface (src/backend/): direct free-function calls to
                   the gemm/conv kernels outside the backend layer (and the
                   kernel implementation files themselves) silently pin the
                   caller to fp32 and skip the backend's telemetry/quantized
                   dispatch.
  unbounded-halo-recv
                   inference-phase files may not block forever on halo
                   traffic: every receive on a halo tag must be the bounded
                   recv_for/recv_bytes_for so a lost neighbour degrades the
                   border instead of hanging the rollout. Blocking receives
                   on the registry's rendezvous tags (field gather/scatter)
                   are allowlisted.
  raw-clock        src/ outside util/ may not call std::chrono clocks
                   directly: all timing must flow through
                   telemetry::now_us()/util::WallTimer so cross-rank trace
                   timestamps share one epoch and stay clock-offset
                   correctable (docs/observability.md).
  raw-rank-block   elastic-runtime files (src/elastic/) may not index
                   partition blocks by the hosting rank: ownership is
                   versioned and migrates on rebalance, so geometry must be
                   derived from the *task* id via the Assignment map —
                   block_of_rank(comm.rank()) silently re-freezes the
                   pre-elastic task==rank identity and breaks adoption.
  serve-steady-alloc
                   the serving layer (src/serve/) promises zero heap
                   allocations per request: allocation primitives (new,
                   make_unique/shared, resize/reserve/push_back/...,
                   std::to_string) are banned outside regions bracketed by
                   `// serve-lint: setup-begin` / `setup-end` comments
                   (construction, calibration, session open).
  lock-held-comm   no blocking send/recv/recv_for/collective while a
                   lock_guard/unique_lock/scoped_lock is live in an enclosing
                   scope: a peer blocked on the same mutex can never complete
                   the matching operation, so one adversarial schedule turns
                   the call into a deadlock (parpde-mc explores exactly those
                   schedules; this rule catches the pattern statically).

Usage:
  tools/parpde_lint.py [--root DIR]   lint the tree (exit 1 on violations)
  tools/parpde_lint.py --self-test    seed one violation per rule in a temp
                                      tree and assert each is caught
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# --- source sanitizing -------------------------------------------------------

_COMMENT_OR_STRING = re.compile(
    r"""
      //[^\n]*            # line comment
    | /\*.*?\*/           # block comment
    | "(?:\\.|[^"\\\n])*" # string literal
    | '(?:\\.|[^'\\\n])*' # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


_COMMENT_ONLY = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def _blank(m: re.Match) -> str:
    return "".join(c if c == "\n" else " " for c in m.group(0))


def sanitize(text: str) -> str:
    """Replaces comments and string/char literals with spaces, preserving
    offsets and line structure so regex hits map back to real code."""
    return _COMMENT_OR_STRING.sub(_blank, text)


def sanitize_comments(text: str) -> str:
    """Blanks comments but keeps string literals — include directives carry
    their path as a string literal, so include rules scan this view."""
    return _COMMENT_ONLY.sub(_blank, text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class Violation:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- rule: literal-tag -------------------------------------------------------

_COMM_CALL = re.compile(
    r"\.\s*(send_value|send_bytes|isend|send|irecv|recv_value|recv_bytes"
    r"|recv|probe)\s*(?:<[^<>()]*>)?\s*\("
)
_INT_LITERAL = re.compile(r"[+-]?\d+")
_TAG_CONSTANT = re.compile(r"\bkTag\w*\s*=\s*(?:\(?\s*)?[+-]?\d")

TAG_REGISTRY = os.path.join("src", "minimpi", "tags.hpp")


def split_args(code: str, open_paren: int, max_args: int = 4):
    """Splits the argument list starting at code[open_paren] == '(' into
    top-level arguments. Returns a list of (text, offset) pairs."""
    args = []
    depth = 0
    start = open_paren + 1
    i = open_paren
    while i < len(code):
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append((code[start:i], start))
                return args
        elif c == "," and depth == 1:
            args.append((code[start:i], start))
            start = i + 1
            if len(args) >= max_args:
                return args
        i += 1
    return args


def rule_literal_tag(rel: str, code: str, out: list):
    if rel == TAG_REGISTRY.replace(os.sep, "/"):
        return
    for m in _COMM_CALL.finditer(code):
        open_paren = m.end() - 1
        args = split_args(code, open_paren)
        if len(args) < 2:
            continue
        tag_text, tag_offset = args[1]
        if _INT_LITERAL.fullmatch(tag_text.strip()):
            out.append(
                Violation(
                    "literal-tag",
                    rel,
                    line_of(code, tag_offset),
                    f"integer-literal tag {tag_text.strip()} in "
                    f".{m.group(1)}() — use a named range from "
                    "minimpi/tags.hpp",
                )
            )
    for m in _TAG_CONSTANT.finditer(code):
        out.append(
            Violation(
                "literal-tag",
                rel,
                line_of(code, m.start()),
                "tag constant defined outside the central registry "
                "minimpi/tags.hpp",
            )
        )


# --- rule: nondeterminism ----------------------------------------------------

DETERMINISTIC_DIRS = (
    "src/tensor/",
    "src/backend/",
    "src/nn/",
    "src/core/",
    "src/domain/",
    "src/euler/",
    "src/data/",
)

_NONDET_PATTERNS = (
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\b(?:std::)?time\s*\("), "time()"),
    (
        re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b"),
        "unordered container (iteration order is nondeterministic)",
    ),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
)


def rule_nondeterminism(rel: str, code: str, out: list):
    if not rel.startswith(DETERMINISTIC_DIRS):
        return
    for pattern, what in _NONDET_PATTERNS:
        for m in pattern.finditer(code):
            out.append(
                Violation(
                    "nondeterminism",
                    rel,
                    line_of(code, m.start()),
                    f"{what} in a bit-deterministic path — kernels and "
                    "trainers must produce identical results at any "
                    "rank/thread count",
                )
            )


# --- rule: span-temporary ----------------------------------------------------

_SPAN_TEMPORARY = re.compile(r"\btelemetry::Span\s*\(")


def rule_span_temporary(rel: str, code: str, out: list):
    if rel.startswith("src/util/telemetry."):
        return
    for m in _SPAN_TEMPORARY.finditer(code):
        out.append(
            Violation(
                "span-temporary",
                rel,
                line_of(code, m.start()),
                "telemetry::Span temporary is destroyed immediately and "
                "records a zero-length span — bind it to a named local",
            )
        )


# --- rule: zero-comm ---------------------------------------------------------

# Files implementing the paper's communication-free training phase: any
# send/recv here would silently break the headline zero-comm claim.
TRAINING_PHASE_FILES = (
    "src/core/trainer.cpp",
    "src/core/trainer.hpp",
    "src/core/parallel_trainer.cpp",
    "src/core/parallel_trainer.hpp",
)
# Pure-compute layers: may not even include the message-passing substrate.
COMPUTE_ONLY_DIRS = ("src/nn/", "src/tensor/", "src/backend/", "src/data/")

_COMM_USE = re.compile(
    r"(\.\s*(?:send_value|send_bytes|isend|send|irecv|recv_value|recv_bytes"
    r"|recv)\s*[<(])|(\b(?:allreduce|allgather|bcast|reduce|sendrecv)\s*<)"
)
_MINIMPI_INCLUDE = re.compile(r'#\s*include\s+"minimpi/')


def rule_zero_comm(rel: str, code: str, code_includes: str, out: list):
    compute_only = rel.startswith(COMPUTE_ONLY_DIRS)
    if rel in TRAINING_PHASE_FILES or compute_only:
        for m in _COMM_USE.finditer(code):
            out.append(
                Violation(
                    "zero-comm",
                    rel,
                    line_of(code, m.start()),
                    "message-passing call in a training-phase/compute file — "
                    "the paper's scheme trains without communication "
                    "(ROADMAP north-star invariant)",
                )
            )
    if compute_only:
        for m in _MINIMPI_INCLUDE.finditer(code_includes):
            out.append(
                Violation(
                    "zero-comm",
                    rel,
                    line_of(code, m.start()),
                    "minimpi include in a pure-compute layer",
                )
            )


# --- rule: unbounded-halo-recv -----------------------------------------------

# Files on the inference-time communication path. A lost neighbour must
# degrade the border (docs/robustness.md), so these files may only use the
# bounded receives on halo traffic.
INFERENCE_PHASE_FILES = (
    "src/domain/exchange.cpp",
    "src/core/inference.cpp",
)
# Registry tags whose owner implements a rendezvous with a live root (full
# field gather/scatter); blocking on them is the intended protocol.
ALLOWED_BLOCKING_TAGS = ("kFieldGather", "kFieldScatter")

# Matches the unbounded receive family only: the bounded recv_for /
# recv_bytes_for calls fail the `\s*(?:<...>)?\s*\(` tail after the name.
_UNBOUNDED_RECV = re.compile(
    r"\.\s*(recv_value|recv_bytes|recv|irecv)\s*(?:<[^<>()]*>)?\s*\("
)


def rule_unbounded_halo_recv(rel: str, code: str, out: list):
    if rel not in INFERENCE_PHASE_FILES:
        return
    for m in _UNBOUNDED_RECV.finditer(code):
        args = split_args(code, m.end() - 1)
        if len(args) >= 2 and any(
            tag in args[1][0] for tag in ALLOWED_BLOCKING_TAGS
        ):
            continue
        out.append(
            Violation(
                "unbounded-halo-recv",
                rel,
                line_of(code, m.start()),
                f"unbounded .{m.group(1)}() in an inference-phase file — a "
                "dead neighbour would hang the rollout forever; use "
                "recv_for/recv_bytes_for with a timeout and degrade the "
                "border (docs/robustness.md)",
            )
        )


# --- rule: raw-clock ---------------------------------------------------------

# Timestamps must share the telemetry epoch (telemetry::now_us(), offset by
# the clock-sync handshake at trace-write time). A raw steady_clock::now()
# outside util/ produces spans/timers that cannot be aligned across ranks.
RAW_CLOCK_EXEMPT_PREFIX = "src/util/"

_RAW_CLOCK = re.compile(
    r"\b(steady_clock|high_resolution_clock|system_clock)\s*::\s*now\s*\("
)


def rule_raw_clock(rel: str, code: str, out: list):
    if not rel.startswith("src/") or rel.startswith(RAW_CLOCK_EXEMPT_PREFIX):
        return
    for m in _RAW_CLOCK.finditer(code):
        out.append(
            Violation(
                "raw-clock",
                rel,
                line_of(code, m.start()),
                f"direct {m.group(1)}::now() outside src/util/ — use "
                "telemetry::now_us() or util::WallTimer so timestamps stay "
                "on the rank-aligned trace epoch (docs/observability.md)",
            )
        )


# --- rule: backend-bypass ----------------------------------------------------

# Files allowed to name the raw kernels: the backend layer itself plus the
# kernel implementation/declaration files it wraps.
BACKEND_EXEMPT_PREFIXES = (
    "src/backend/",
    "src/tensor/gemm.",
    "src/tensor/im2col.",
    "src/nn/conv_ops.",
)

# Free-function (or namespace-qualified) calls only: the lookbehind rejects
# `.gemm(` / `->gemm(` member calls, which are exactly the KernelBackend
# interface invocations the rule wants call sites to use.
_BACKEND_KERNEL_CALL = re.compile(
    r"(?<![\w.>])"
    r"(gemm|gemm_acc|gemm_at|gemm_bt_acc|conv2d_forward|conv2d_forward_batched"
    r"|conv2d_backward_data|conv2d_backward_weights|conv2d_backward_batched)"
    r"\s*\("
)


def rule_backend_bypass(rel: str, code: str, out: list):
    if not rel.startswith("src/") or rel.startswith(BACKEND_EXEMPT_PREFIXES):
        return
    for m in _BACKEND_KERNEL_CALL.finditer(code):
        out.append(
            Violation(
                "backend-bypass",
                rel,
                line_of(code, m.start()),
                f"direct {m.group(1)}() call bypasses the KernelBackend "
                "dispatch — route it through backend::blocked_f32() / the "
                "plan's backend so int8 and telemetry keep working",
            )
        )


# --- rule: raw-rank-block ----------------------------------------------------

# The elastic runtime decouples subdomain tasks from ranks (the tentpole of
# the self-healing design): every partition lookup must be keyed by a task id
# or task coordinates from the Assignment map. A `block_of_rank(rank)` /
# `block_of_rank(comm.rank())` in src/elastic/ quietly reintroduces the
# implicit (cx, cy) == rank identity and produces wrong geometry the moment
# one task migrates.
ELASTIC_PHASE_PREFIX = "src/elastic/"

_BLOCK_OF_RANK = re.compile(r"\bblock_of_rank\s*\(")
_RANK_VALUE = re.compile(r"\.\s*rank\s*\(|\brank\b")


def rule_raw_rank_block(rel: str, code: str, out: list):
    if not rel.startswith(ELASTIC_PHASE_PREFIX):
        return
    for m in _BLOCK_OF_RANK.finditer(code):
        args = split_args(code, m.end() - 1)
        if not args or not _RANK_VALUE.search(args[0][0]):
            continue
        out.append(
            Violation(
                "raw-rank-block",
                rel,
                line_of(code, m.start()),
                "partition block indexed by the hosting rank in elastic "
                "code — ownership migrates on rebalance; derive geometry "
                "from the task id via the Assignment map "
                "(elastic/assignment.hpp)",
            )
        )


# --- rule: lock-held-comm ----------------------------------------------------

# The transport layer itself (mailbox/collectives implement the blocking
# operations under their own mutexes) and util/ (no communicator access) own
# their locking discipline; everywhere else, holding a lock across a blocking
# communication is a deadlock waiting for the right schedule.
LOCK_COMM_EXEMPT_PREFIXES = ("src/minimpi/", "src/util/", "src/verify/")

_LOCK_DECL = re.compile(
    r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^<>;]*>)?\s+(\w+)\s*[({]"
)
_LOCK_RELEASE = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(")
# Blocking operations only: member sends/receives (bounded recv_for included —
# 200ms under a contended lock is still a stall the pool can observe) and the
# free-function collectives, every one a rendezvous.
_LOCKED_COMM_CALL = re.compile(
    r"\.\s*(send_value|send_bytes|send|recv_value|recv_bytes_for|recv_bytes"
    r"|recv_for|recv)\s*(?:<[^<>()]*>)?\s*\("
    r"|\b(allreduce|allgather|bcast|reduce|sendrecv|barrier)\s*"
    r"(?:<[^<>()]*>)?\s*\("
)


def rule_lock_held_comm(rel: str, code: str, out: list):
    if not rel.startswith("src/") or rel.startswith(LOCK_COMM_EXEMPT_PREFIXES):
        return
    events = []
    for i, ch in enumerate(code):
        if ch == "{":
            events.append((i, "open", None))
        elif ch == "}":
            events.append((i, "close", None))
    for m in _LOCK_DECL.finditer(code):
        events.append((m.start(), "lock", m.group(1)))
    for m in _LOCK_RELEASE.finditer(code):
        events.append((m.start(), "release", m.group(1)))
    for m in _LOCKED_COMM_CALL.finditer(code):
        events.append((m.start(), "comm", m.group(1) or m.group(2)))
    events.sort(key=lambda e: e[0])

    depth = 0
    live = []  # (brace depth at declaration, variable name)
    for off, kind, name in events:
        if kind == "open":
            depth += 1
        elif kind == "close":
            depth -= 1
            live = [(d, n) for d, n in live if d <= depth]
        elif kind == "lock":
            live.append((depth, name))
        elif kind == "release":
            live = [(d, n) for d, n in live if n != name]
        elif kind == "comm" and live:
            out.append(
                Violation(
                    "lock-held-comm",
                    rel,
                    line_of(code, off),
                    f"blocking {name}() while '{live[-1][1]}' is held — a "
                    "schedule where the peer needs the same lock to reach "
                    "its matching call deadlocks; release the lock before "
                    "communicating (parpde-mc hunts exactly these schedules)",
                )
            )


# --- rule: serve-steady-alloc ------------------------------------------------

# The serving layer's request path promises zero heap allocations per request
# (docs/serving.md; enforced dynamically by the counting-allocator test in
# tests/test_serve.cpp). This rule keeps the promise visible in review:
# allocation primitives are banned in src/serve/ except inside regions
# bracketed by `// serve-lint: setup-begin` ... `// serve-lint: setup-end`
# (construction, calibration, session open — the paths that are allowed to
# size buffers once).
SERVE_PREFIX = "src/serve/"

_SERVE_SETUP_BEGIN = re.compile(r"//\s*serve-lint:\s*setup-begin")
_SERVE_SETUP_END = re.compile(r"//\s*serve-lint:\s*setup-end")
_SERVE_ALLOC = re.compile(
    r"\bnew\b"
    r"|\bmake_(?:unique|shared)\s*<"
    r"|\.\s*(?:resize|reserve|push_back|emplace_back|assign|insert|append)"
    r"\s*\("
    r"|\bstd::to_string\s*\("
)


def rule_serve_steady_alloc(rel: str, code: str, raw: str, out: list):
    if not rel.startswith(SERVE_PREFIX):
        return
    begins = [m.start() for m in _SERVE_SETUP_BEGIN.finditer(raw)]
    ends = [m.start() for m in _SERVE_SETUP_END.finditer(raw)]
    if len(begins) != len(ends) or any(b > e for b, e in zip(begins, ends)):
        out.append(
            Violation(
                "serve-steady-alloc",
                rel,
                1,
                "unbalanced serve-lint setup-begin/setup-end markers",
            )
        )
        return
    regions = list(zip(begins, ends))
    for m in _SERVE_ALLOC.finditer(code):
        if any(b <= m.start() < e for b, e in regions):
            continue
        out.append(
            Violation(
                "serve-steady-alloc",
                rel,
                line_of(code, m.start()),
                "heap allocation on a serving steady-state path — the "
                "per-request contract is zero allocations (pre-size in a "
                "`// serve-lint: setup-begin` region instead; "
                "docs/serving.md)",
            )
        )


# --- rule: include-hygiene ---------------------------------------------------

_INCLUDE = re.compile(r'#\s*include\s+(["<][^">]+[">])')


def rule_include_hygiene(rel: str, code_includes: str, raw: str, out: list):
    code = code_includes
    if rel.endswith((".hpp", ".h")):
        for line in raw.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("//", "/*", "*")):
                continue
            if stripped != "#pragma once":
                out.append(
                    Violation(
                        "include-hygiene",
                        rel,
                        1,
                        "header must open with #pragma once before any code",
                    )
                )
            break
    includes = list(_INCLUDE.finditer(code))
    for m in includes:
        target = m.group(1)
        if target.startswith('"../'):
            out.append(
                Violation(
                    "include-hygiene",
                    rel,
                    line_of(code, m.start()),
                    "relative-parent include — include project headers by "
                    "their src/-rooted path",
                )
            )
        if target.startswith("<bits/"):
            out.append(
                Violation(
                    "include-hygiene",
                    rel,
                    line_of(code, m.start()),
                    "non-portable <bits/...> include",
                )
            )
    if rel.endswith(".cpp") and includes:
        own = rel[len("src/"):-len(".cpp")] + ".hpp"
        first = includes[0].group(1)
        if first.strip('"') != own and os.path.basename(own) == os.path.basename(
            first.strip('"<>')
        ):
            out.append(
                Violation(
                    "include-hygiene",
                    rel,
                    line_of(code, includes[0].start()),
                    f'first include should be the matching header "{own}"',
                )
            )


# --- driver ------------------------------------------------------------------

SOURCE_EXTENSIONS = (".hpp", ".h", ".cpp")


def lint_file(root: str, rel: str) -> list:
    path = os.path.join(root, rel)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    code = sanitize(raw)
    code_includes = sanitize_comments(raw)
    rel_posix = rel.replace(os.sep, "/")
    out: list = []
    rule_literal_tag(rel_posix, code, out)
    rule_nondeterminism(rel_posix, code, out)
    rule_span_temporary(rel_posix, code, out)
    rule_zero_comm(rel_posix, code, code_includes, out)
    rule_unbounded_halo_recv(rel_posix, code, out)
    rule_raw_clock(rel_posix, code, out)
    rule_backend_bypass(rel_posix, code, out)
    rule_raw_rank_block(rel_posix, code, out)
    rule_lock_held_comm(rel_posix, code, out)
    rule_serve_steady_alloc(rel_posix, code, raw, out)
    rule_include_hygiene(rel_posix, code_includes, raw, out)
    return out


def lint_tree(root: str) -> list:
    violations = []
    src = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            violations.extend(lint_file(root, rel))
    return violations


# --- self-test ---------------------------------------------------------------

SEEDED_FILES = {
    # literal-tag: raw tag argument and a stray registry constant.
    "src/core/bad_tags.cpp": (
        '#include "core/bad_tags.hpp"\n'
        "constexpr int kTagRogue = 9000;\n"
        "void f(parpde::mpi::Communicator& comm) {\n"
        "  comm.send<float>(1, 4242, data);\n"
        "  comm.recv<float>(0, 17);\n"
        "}\n"
    ),
    # nondeterminism: rand + unordered_map in a kernel path.
    "src/tensor/bad_rng.cpp": (
        '#include "tensor/bad_rng.hpp"\n'
        "#include <unordered_map>\n"
        "int f() {\n"
        "  std::unordered_map<int, int> m;\n"
        "  return rand() + static_cast<int>(time(nullptr));\n"
        "}\n"
    ),
    # span-temporary: discarded RAII span.
    "src/domain/bad_span.cpp": (
        '#include "domain/bad_span.hpp"\n'
        "void f() {\n"
        '  telemetry::Span("halo.exchange", "comm");\n'
        "}\n"
    ),
    # zero-comm: a send inside the training phase and a minimpi include in nn.
    "src/core/parallel_trainer.cpp": (
        '#include "core/parallel_trainer.hpp"\n'
        "void g(parpde::mpi::Communicator& comm) {\n"
        "  comm.send<float>(0, parpde::mpi::tags::kHalo.base, w);\n"
        "}\n"
    ),
    "src/nn/bad_layer.cpp": (
        '#include "nn/bad_layer.hpp"\n'
        '#include "minimpi/communicator.hpp"\n'
        "void h() {}\n"
    ),
    # unbounded-halo-recv: one blocking halo receive (bad) next to an
    # allowlisted gather receive and a bounded recv_for (both fine).
    "src/core/inference.cpp": (
        '#include "core/inference.hpp"\n'
        "void f(parpde::mpi::Communicator& comm) {\n"
        "  auto bad = comm.recv<float>(1, parpde::mpi::tags::kHalo.base);\n"
        "  auto ok1 = comm.recv<float>(0, parpde::mpi::tags::kFieldGather.base);\n"
        "  std::vector<float> out;\n"
        "  comm.recv_for<float>(1, parpde::mpi::tags::kHalo.base,\n"
        "                       std::chrono::milliseconds(10), &out);\n"
        "}\n"
    ),
    # backend-bypass: direct kernel calls outside the backend layer (one
    # bare, one namespace-qualified) next to a legal member-call dispatch.
    "src/core/bad_bypass.cpp": (
        '#include "core/bad_bypass.hpp"\n'
        "void f() {\n"
        "  gemm(a, b, c, m, n, k);\n"
        "  parpde::nn::conv2d_forward_batched(x, w, bias, pad, y, ws);\n"
        "  parpde::backend::blocked_f32().gemm(a, b, c, m, n, k);  // fine\n"
        "}\n"
    ),
    # backend layer itself may name the raw kernels.
    "src/backend/ok_kernels.cpp": (
        '#include "backend/ok_kernels.hpp"\n'
        "void g() {\n"
        "  gemm(a, b, c, m, n, k);\n"
        "  conv2d_backward_weights(x, gy, pad, gw, col);\n"
        "}\n"
    ),
    # raw-clock: two raw chrono clocks outside util/ (each flagged) next to
    # the sanctioned telemetry::now_us() call (not flagged).
    "src/core/bad_clock.cpp": (
        '#include "core/bad_clock.hpp"\n'
        "#include <chrono>\n"
        "long f() {\n"
        "  auto t0 = std::chrono::steady_clock::now();\n"
        "  auto t1 = std::chrono::system_clock::now();\n"
        "  return telemetry::now_us();\n"
        "}\n"
    ),
    # util/ owns the epoch, so it may touch the raw clock.
    "src/util/ok_clock.cpp": (
        '#include "util/ok_clock.hpp"\n'
        "#include <chrono>\n"
        "long g() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
        "}\n"
    ),
    # lock-held-comm: a send under lock_guard and a collective under
    # unique_lock (both flagged) next to an unlock-before-recv and a
    # scope-closed lock (both fine).
    "src/domain/bad_lock_comm.cpp": (
        '#include "domain/bad_lock_comm.hpp"\n'
        "void f(parpde::mpi::Communicator& comm) {\n"
        "  std::lock_guard<std::mutex> lock(mu);\n"
        "  comm.send<float>(1, parpde::mpi::tags::kHalo.base, data);\n"
        "}\n"
        "void g(parpde::mpi::Communicator& comm) {\n"
        "  std::unique_lock<std::mutex> lock(mu);\n"
        "  lock.unlock();\n"
        "  auto v = comm.recv<float>(0, parpde::mpi::tags::kHalo.base);\n"
        "}\n"
        "void h(parpde::mpi::Communicator& comm) {\n"
        "  {\n"
        "    std::scoped_lock guard(mu);\n"
        "    counter += 1;\n"
        "  }\n"
        "  mpi::barrier(comm);\n"
        "}\n"
        "void k(parpde::mpi::Communicator& comm) {\n"
        "  std::unique_lock<std::mutex> lock(mu);\n"
        "  mpi::barrier(comm);\n"
        "}\n"
    ),
    # raw-rank-block: two rank-keyed block lookups in elastic code (flagged)
    # next to a task-coordinate lookup and a task-id lookup (both fine).
    "src/elastic/bad_rank_block.cpp": (
        '#include "elastic/bad_rank_block.hpp"\n'
        "void f(parpde::mpi::Communicator& comm,\n"
        "       const parpde::domain::Partition& partition, int rank) {\n"
        "  auto bad1 = partition.block_of_rank(comm.rank());\n"
        "  auto bad2 = partition.block_of_rank(rank);\n"
        "  auto ok1 = partition.block(ts.cx, ts.cy);\n"
        "  auto ok2 = partition.block_of_rank(task);\n"
        "}\n"
    ),
    # the classic engines keep the task == rank identity on purpose.
    "src/core/ok_rank_block.cpp": (
        '#include "core/ok_rank_block.hpp"\n'
        "void g(parpde::mpi::Communicator& comm,\n"
        "       const parpde::domain::Partition& partition) {\n"
        "  auto block = partition.block_of_rank(comm.rank());\n"
        "}\n"
    ),
    # serve-steady-alloc: a push_back and a bare new on steady-state serving
    # paths (both flagged) next to a resize inside the marked setup region
    # (fine) and an alloc mention in a comment (fine).
    "src/serve/bad_steady_alloc.cpp": (
        '#include "serve/bad_steady_alloc.hpp"\n'
        "// serve-lint: setup-begin\n"
        "Server::Server() {\n"
        "  sessions_.resize(64);\n"
        "}\n"
        "// serve-lint: setup-end\n"
        "void Server::step() {\n"
        "  // pre-sized: no resize here\n"
        "  pending_.push_back(req);\n"
        "  auto* node = new Request();\n"
        "}\n"
    ),
    # include-hygiene: missing pragma once, parent include, bits include.
    "src/util/bad_header.hpp": (
        "#include <vector>\n"
        '#include "../core/config.hpp"\n'
        "#include <bits/stdc++.h>\n"
    ),
    # clean file: must produce no violations.
    "src/util/clean.cpp": (
        '#include "util/clean.hpp"\n'
        "void ok(parpde::mpi::Communicator& comm) {\n"
        "  telemetry::Span span(\"ok\", \"test\");\n"
        "  comm.send<float>(1, parpde::mpi::tags::kHalo.base, data);\n"
        "  // comm.send<float>(1, 999, data);  <- commented out, no finding\n"
        '  const char* s = "comm.recv<float>(0, 123)";\n'
        "  (void)s;\n"
        "}\n"
    ),
}

EXPECTED = {
    "literal-tag": {"src/core/bad_tags.cpp"},
    "nondeterminism": {"src/tensor/bad_rng.cpp"},
    "span-temporary": {"src/domain/bad_span.cpp"},
    "zero-comm": {"src/core/parallel_trainer.cpp", "src/nn/bad_layer.cpp"},
    "unbounded-halo-recv": {"src/core/inference.cpp"},
    "include-hygiene": {"src/util/bad_header.hpp"},
    "backend-bypass": {"src/core/bad_bypass.cpp"},
    "raw-clock": {"src/core/bad_clock.cpp"},
    "raw-rank-block": {"src/elastic/bad_rank_block.cpp"},
    "lock-held-comm": {"src/domain/bad_lock_comm.cpp"},
    "serve-steady-alloc": {"src/serve/bad_steady_alloc.cpp"},
}


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="parpde_lint_selftest_") as tmp:
        for rel, content in SEEDED_FILES.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        violations = lint_tree(tmp)
        by_rule: dict = {}
        for v in violations:
            by_rule.setdefault(v.rule, set()).add(v.path)
        failures = []
        for rule, files in EXPECTED.items():
            missing = files - by_rule.get(rule, set())
            if missing:
                failures.append(f"rule {rule}: seeded violations not caught "
                                f"in {sorted(missing)}")
        flagged_clean = [
            str(v) for v in violations if v.path == "src/util/clean.cpp"
        ]
        if flagged_clean:
            failures.append(f"clean file flagged: {flagged_clean}")
        # The literal-tag seed has 3 findings (two calls + one constant).
        literal = [v for v in violations if v.rule == "literal-tag"]
        if len(literal) != 3:
            failures.append(
                f"literal-tag: expected 3 findings, got {len(literal)}"
            )
        # Exactly the blocking halo receive: the allowlisted gather receive
        # and the bounded recv_for in the same seed must not be flagged.
        unbounded = [
            v for v in violations if v.rule == "unbounded-halo-recv"
        ]
        if len(unbounded) != 1:
            failures.append(
                "unbounded-halo-recv: expected exactly 1 finding, got "
                f"{len(unbounded)}"
            )
        # Exactly the two raw clocks: the telemetry::now_us() call on the
        # same seed and the exempt util/ file must not be flagged.
        raw_clock = [v for v in violations if v.rule == "raw-clock"]
        if len(raw_clock) != 2:
            failures.append(
                f"raw-clock: expected exactly 2 findings, got "
                f"{len(raw_clock)}"
            )
        # Exactly the two direct calls: the member-call dispatch on the same
        # seed and the exempt backend-layer file must not be flagged.
        bypass = [v for v in violations if v.rule == "backend-bypass"]
        if len(bypass) != 2:
            failures.append(
                f"backend-bypass: expected exactly 2 findings, got "
                f"{len(bypass)}"
            )
        # Exactly the two rank-keyed lookups: the task-coordinate and
        # task-id lookups in the same seed and the classic engine file
        # (outside src/elastic/) must not be flagged.
        rank_block = [v for v in violations if v.rule == "raw-rank-block"]
        if len(rank_block) != 2:
            failures.append(
                f"raw-rank-block: expected exactly 2 findings, got "
                f"{len(rank_block)}"
            )
        # Exactly the held-lock send and the held-lock barrier: the
        # unlock-first and closed-scope functions in the same seed are legal.
        locked = [v for v in violations if v.rule == "lock-held-comm"]
        if len(locked) != 2:
            failures.append(
                f"lock-held-comm: expected exactly 2 findings, got "
                f"{len(locked)}"
            )
        # Exactly the push_back and the new: the marked-region resize and the
        # commented mention in the same seed must not be flagged.
        steady = [v for v in violations if v.rule == "serve-steady-alloc"]
        if len(steady) != 2:
            failures.append(
                f"serve-steady-alloc: expected exactly 2 findings, got "
                f"{len(steady)}"
            )
        if failures:
            print("parpde_lint self-test FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(
            f"parpde_lint self-test passed: {len(violations)} seeded "
            f"violations caught across {len(EXPECTED)} rules"
        )
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the parent of this script's dir)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches a tree of seeded violations",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(
            f"parpde_lint: {len(violations)} violation(s); see "
            "docs/static-analysis.md for the rule catalogue",
            file=sys.stderr,
        )
        return 1
    print("parpde_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
