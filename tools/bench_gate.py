#!/usr/bin/env python3
"""parpde-bench-gate: regression gate over the checked-in bench baselines.

Compares a freshly produced BENCH_rollout.json / BENCH_quant.json against the
snapshots in bench/baselines/ and fails (exit 1) when a key figure regressed.

Two kinds of fields are gated differently:

  ratios     speedup, overlap_efficiency, quant speedup, health overhead,
             error budgets, allocation counts. These are machine-portable
             (both sides of each ratio ran on the same machine), so they are
             gated everywhere, including CI.
  absolute   p50/mean step milliseconds. Only meaningful against a baseline
             recorded on the same machine — CI runners are too noisy — so
             the throughput gate (>20% regression on mean step time) only
             runs under --absolute.

Ratios are still shape-dependent (a tiny grid hides less halo latency behind
less compute), so the gate refuses to compare runs whose bench flags differ
from the baseline's. The checked-in baselines are recorded at the CI
perf-smoke shape (grid=64, steps=8, warmup=2, threads=1); regenerate with

  bench_rollout_latency --grid=64 --steps=8 --warmup=2 --backend=fp32
  tools/bench_gate.py --update

When a BENCH_recovery.json (bench_recovery) sits next to the other files it
is gated too — self-referentially against the lease budget embedded in the
run itself plus exact structural outcomes (one recovery, bit-identical
frames, nothing left degraded), so it needs no checked-in baseline.
BENCH_serving.json (bench_serving) works the same way: exact structural
outcomes (coalesced-vs-solo bit identity on both backends, zero rejections,
zero buffer regrowths, real coalescing at concurrency 8) plus a coalesced
throughput floor conditioned on the machine-capability figure the run
itself measured (see gate_serving).

Usage:
  tools/bench_gate.py [--baseline-dir bench/baselines]
                      [--rollout BENCH_rollout.json] [--quant BENCH_quant.json]
                      [--recovery BENCH_recovery.json]
                      [--serving BENCH_serving.json]
                      [--absolute] [--tolerance 0.20]
  tools/bench_gate.py --update   rewrite the baselines from the given files
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def partition(doc: dict, ranks: int) -> dict:
    for p in doc.get("partitions", []):
        if p.get("ranks") == ranks:
            return p
    raise KeyError(f"no {ranks}-rank partition in BENCH_rollout.json")


class Gate:
    def __init__(self, tolerance: float):
        self.tolerance = tolerance
        self.failures: list = []
        self.checked = 0

    def ratio_floor(self, label: str, current: float, baseline: float):
        """A ratio (bigger is better) may not drop more than tolerance below
        the baseline."""
        self.checked += 1
        floor = baseline * (1.0 - self.tolerance)
        if current < floor:
            self.failures.append(
                f"{label}: {current:.4f} fell below {floor:.4f} "
                f"(baseline {baseline:.4f} - {self.tolerance * 100:.0f}%)"
            )

    def ceiling(self, label: str, current: float, limit: float):
        """An absolute cost (smaller is better) against a fixed limit."""
        self.checked += 1
        if current > limit:
            self.failures.append(f"{label}: {current:.4f} exceeds {limit:.4f}")

    def exact(self, label: str, current, expected):
        self.checked += 1
        if current != expected:
            self.failures.append(f"{label}: {current!r}, expected {expected!r}")

    def time_regression(self, label: str, current: float, baseline: float):
        """Mean step time (smaller is better) may not grow more than
        tolerance over the baseline. --absolute only."""
        self.checked += 1
        limit = baseline * (1.0 + self.tolerance)
        if current > limit:
            self.failures.append(
                f"{label}: {current:.4f} ms exceeds {limit:.4f} ms "
                f"(baseline {baseline:.4f} + {self.tolerance * 100:.0f}%)"
            )


def shape_matches(gate: Gate, label: str, current: dict, baseline: dict,
                  keys: tuple) -> bool:
    """Comparing ratios across different bench shapes is meaningless; demand
    identical flags and point at --update when they drifted."""
    mismatched = [
        f"{k}: {current.get(k)!r} vs baseline {baseline.get(k)!r}"
        for k in keys
        if current.get(k) != baseline.get(k)
    ]
    if mismatched:
        gate.failures.append(
            f"{label}: bench shape differs from baseline "
            f"({'; '.join(mismatched)}) — rerun with the baseline's flags or "
            "refresh the snapshots with --update"
        )
        return False
    return True


def gate_rollout(gate: Gate, current: dict, baseline: dict, absolute: bool):
    if not shape_matches(
        gate,
        "rollout",
        current,
        baseline,
        ("grid", "steps", "warmup", "threads", "record_every", "backend"),
    ):
        return
    for ranks in (4, 16):
        try:
            cur = partition(current, ranks)
            base = partition(baseline, ranks)
        except KeyError as e:
            gate.failures.append(str(e))
            continue
        label = f"rollout[{ranks} ranks]"
        gate.ratio_floor(
            f"{label}.speedup", cur.get("speedup", 0.0), base.get("speedup", 0.0)
        )
        gate.ratio_floor(
            f"{label}.overlap_efficiency",
            cur.get("overlap_efficiency", 0.0),
            base.get("overlap_efficiency", 0.0),
        )
        gate.exact(
            f"{label}.overlapped.steady_state_allocs",
            cur.get("overlapped", {}).get("steady_state_allocs"),
            0,
        )
        if absolute:
            gate.time_regression(
                f"{label}.overlapped.mean_ms",
                cur.get("overlapped", {}).get("mean_ms", 0.0),
                base.get("overlapped", {}).get("mean_ms", 0.0),
            )
    # The always-on health monitor's acceptance bound is < 2% locally; CI
    # gates a looser 25% because sub-ms step times on shared runners put a
    # few percent of noise on every run.
    limit = 2.0 if absolute else 25.0
    gate.ceiling(
        "rollout.health_overhead_pct",
        current.get("health_overhead_pct", 0.0),
        limit,
    )


def gate_quant(gate: Gate, current: dict, baseline: dict, absolute: bool):
    if not shape_matches(
        gate,
        "quant",
        current,
        baseline,
        ("grid", "steps", "warmup", "threads", "ranks", "engine"),
    ):
        return
    gate.ratio_floor(
        "quant.speedup", current.get("speedup", 0.0), baseline.get("speedup", 0.0)
    )
    gate.ceiling(
        "quant.max_rel_l2",
        current.get("max_rel_l2", 1.0),
        current.get("error_budget", 5e-2),
    )
    gate.exact("quant.within_budget", current.get("within_budget"), True)
    if absolute:
        gate.time_regression(
            "quant.int8.mean_ms",
            current.get("int8", {}).get("mean_ms", 0.0),
            baseline.get("int8", {}).get("mean_ms", 0.0),
        )


def gate_recovery(gate: Gate, current: dict):
    """BENCH_recovery.json is self-gating: the structural outcomes are exact
    (one recovery, at least one adopted task, nothing left degraded, frames
    bit-identical), and the detection latency is bounded by the lease budget
    the run itself embedded — no baseline snapshot needed, so the gate stays
    machine-portable."""
    gate.exact("recovery.recoveries", current.get("recoveries"), 1)
    gate.exact("recovery.failed_ranks", current.get("failed_ranks"), 1)
    gate.exact("recovery.degraded_after", current.get("degraded_after"), 0)
    gate.exact("recovery.bit_identical", current.get("bit_identical"), True)
    if current.get("adopted_tasks", 0) < 1:
        gate.checked += 1
        gate.failures.append(
            f"recovery.adopted_tasks: {current.get('adopted_tasks')!r}, "
            "expected >= 1"
        )
    else:
        gate.checked += 1
    # Survivors burn the full lease budget before declaring the death; allow
    # 3x for scheduler noise on shared runners, never less than a second.
    budget_s = current.get("lease_budget_ms", 0.0) / 1e3
    gate.ceiling(
        "recovery.detection_seconds",
        current.get("detection_seconds", 0.0),
        max(1.0, 3.0 * budget_s),
    )
    # Rebalance + adoption + rollback is pure local work; it must stay well
    # under one lease budget or recovery starts racing the failure detector.
    gate.ceiling(
        "recovery.rebalance_seconds",
        current.get("rebalance_seconds", 0.0),
        max(1.0, budget_s),
    )


def gate_serving(gate: Gate, current: dict):
    """BENCH_serving.json is self-gating, like recovery: the structural
    outcomes are exact (bit-identical coalesced trajectories on both
    backends, zero rejected requests in an unsaturated queue, zero buffer
    regrowths, real coalescing at concurrency 8), and the throughput floor is
    conditioned on the machine-capability figure the run itself measured.

    batch_amortization is the plan-level per-sample speedup of one wide
    run_batched over max_batch solo runs — the ceiling coalescing can reach
    on this machine. On hosts where serving-width GEMMs already saturate the
    cores it sits near 1.0 and the floor degrades to "must not materially
    lose" (0.7x); on hosts with genuine wide-GEMM headroom the floor scales
    up to the 1.5x acceptance target (docs/serving.md, "Measured reality")."""
    backends = current.get("backends", [])
    if len(backends) < 2:
        gate.checked += 1
        gate.failures.append(
            f"serving.backends: {len(backends)} entries, expected fp32 + int8"
        )
        return
    for b in backends:
        name = b.get("backend", "?")
        label = f"serving[{name}]"
        gate.exact(f"{label}.bit_identical", b.get("bit_identical"), True)
        gate.exact(f"{label}.growth_events", b.get("growth_events"), 0)
        sweep = b.get("sweep", [])
        for entry in sweep:
            conc = entry.get("concurrency")
            for mode in ("serial", "coalesced"):
                gate.exact(
                    f"{label}.conc{conc}.{mode}.rejected",
                    entry.get(mode, {}).get("rejected"),
                    0,
                )
        at8 = next(
            (e for e in sweep if e.get("concurrency") == 8), None
        )
        if at8 is None:
            gate.checked += 1
            gate.failures.append(f"{label}: no concurrency-8 sweep entry")
            continue
        coalesced = at8.get("coalesced", {})
        # Coalescing must actually happen under 8 saturating sessions: some
        # dispatch carried >= 2 requests and the average batch is > 1.
        occupancy = coalesced.get("occupancy", [])
        gate.checked += 1
        if not any(n > 0 for n in occupancy[2:]):
            gate.failures.append(
                f"{label}.conc8.occupancy: no dispatch coalesced >= 2 "
                f"requests ({occupancy})"
            )
        gate.checked += 1
        if coalesced.get("mean_batch", 0.0) <= 1.0:
            gate.failures.append(
                f"{label}.conc8.mean_batch: "
                f"{coalesced.get('mean_batch')!r}, expected > 1.0"
            )
        # Latency sanity on both dispatch modes.
        for mode in ("serial", "coalesced"):
            stats = at8.get(mode, {})
            gate.checked += 1
            if not 0.0 < stats.get("p50_ms", 0.0) <= stats.get("p99_ms", 0.0):
                gate.failures.append(
                    f"{label}.conc8.{mode}: p50 {stats.get('p50_ms')!r} / "
                    f"p99 {stats.get('p99_ms')!r} not ordered positive"
                )
        amortization = b.get("batch_amortization", 0.0)
        floor = min(1.5, max(0.7, 0.75 * amortization))
        gate.checked += 1
        speedup = at8.get("speedup", 0.0)
        if speedup < floor:
            gate.failures.append(
                f"{label}.conc8.speedup: {speedup:.4f} below {floor:.4f} "
                f"(machine batch_amortization {amortization:.4f})"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--baseline-dir", default=os.path.join(root, "bench", "baselines")
    )
    parser.add_argument("--rollout", default="BENCH_rollout.json")
    parser.add_argument("--quant", default="BENCH_quant.json")
    parser.add_argument(
        "--recovery",
        default="BENCH_recovery.json",
        help="elastic recovery bench output; gated (self-referentially, no "
        "baseline) only when the file exists",
    )
    parser.add_argument(
        "--serving",
        default="BENCH_serving.json",
        help="serving bench output; gated (self-referentially, no baseline) "
        "only when the file exists",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression (0.20 = 20%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate absolute step times (same-machine baselines only)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline snapshots from the given bench files",
    )
    args = parser.parse_args()

    pairs = [
        (args.rollout, os.path.join(args.baseline_dir, "BENCH_rollout.json")),
        (args.quant, os.path.join(args.baseline_dir, "BENCH_quant.json")),
    ]

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for src, dst in pairs:
            doc = load(src)
            with open(dst, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"baseline updated: {dst}")
        return 0

    gate = Gate(args.tolerance)
    gate_rollout(gate, load(args.rollout), load(pairs[0][1]), args.absolute)
    gate_quant(gate, load(args.quant), load(pairs[1][1]), args.absolute)
    if os.path.exists(args.recovery):
        gate_recovery(gate, load(args.recovery))
    if os.path.exists(args.serving):
        gate_serving(gate, load(args.serving))

    if gate.failures:
        print("bench_gate FAILED:", file=sys.stderr)
        for failure in gate.failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"bench_gate passed: {gate.checked} figure(s) within "
        f"{args.tolerance * 100:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
