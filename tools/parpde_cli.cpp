// parpde command-line driver: runs the full pipeline of the paper as separate
// stages connected by files, so datasets and trained ensembles can be reused
// across processes.
//
//   parpde_cli simulate --pde=euler --grid=64 --frames=100 --out=frames.ppfr
//   parpde_cli train    --data=frames.ppfr --ranks=4 --epochs=20
//                       --out=model.ppde
//   parpde_cli eval     --data=frames.ppfr --model=model.ppde
//   parpde_cli rollout  --data=frames.ppfr --model=model.ppde --steps=5
//   parpde_cli info     --model=model.ppde
//   parpde_cli info     --data=frames.ppfr

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/checkpoint.hpp"
#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/parallel_trainer.hpp"
#include "data/dataset.hpp"
#include "euler/simulate.hpp"
#include "minimpi/fault.hpp"
#include "pde/advection.hpp"
#include "serve/surrogate_server.hpp"
#include "util/ascii_plot.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

// Shared percentile helpers (the same p50/p99 formula every BENCH_*.json
// uses); header-only, so the tools target needs no bench library.
#include "../bench/latency_stats.hpp"

using namespace parpde;
using namespace parpde::core;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parpde_cli <simulate|train|eval|rollout|serve|info> "
               "[--flags]\n"
               "  simulate --pde=euler|advection --grid=N --frames=N "
               "[--steps-per-frame=N] --out=FILE\n"
               "  train    --data=FILE --out=FILE [--ranks=N] [--epochs=N] "
               "[--threads=N] [--loss=mape|mse|mae] [--border=halo|zero|valid]"
               " [--lr=X]\n"
               "           [--checkpoint-dir=DIR] [--checkpoint-every=N] "
               "[--resume]\n"
               "           [--tasks-per-rank=N]   (over-decompose: each rank\n"
               "                             trains N subdomain tasks; enables\n"
               "                             the elastic rollout runtime)\n"
               "  eval     --data=FILE --model=FILE [--train-fraction=X]\n"
               "  rollout  --data=FILE --model=FILE [--steps=N] [--start=N] "
               "[--render]\n"
               "           [--halo-timeout-ms=N] [--halo-retries=N] "
               "[--record-every=N]\n"
               "           [--serialized]   (reference engine; default is the\n"
               "                             overlapped halo/compute pipeline)\n"
               "           [--backend=fp32|int8]   (execution provider; int8\n"
               "                             runs the quantized conv kernels,\n"
               "                             see docs/performance.md)\n"
               "           [--health-report]   (print the rollout health\n"
               "                             summary: NaN/Inf, seam residuals,\n"
               "                             int8 saturation, degradations)\n"
               "           [--elastic]   (self-healing elastic runtime:\n"
               "                             over-decomposed tasks, heartbeat\n"
               "                             failure detection, live adoption;\n"
               "                             see docs/robustness.md)\n"
               "           [--tasks-per-rank=N] [--lease-ms=N] [--no-recover]\n"
               "           [--state-dir=DIR] [--state-every=N]   (PPES rollout\n"
               "                             state snapshots for adoption)\n"
               "  serve    --model=FILE [--sessions=N] [--steps=N] "
               "[--backend=fp32|int8]\n"
               "           [--grid=N]   (synthetic seeded sessions; default)\n"
               "           [--data=FILE --start=N]   (replay-client mode:\n"
               "                             sessions start from successive\n"
               "                             recorded frames)\n"
               "           [--serial]   (disable cross-session coalescing;\n"
               "                             one request per dispatch)\n"
               "           [--max-batch=N] [--window-ms=X] [--queue-depth=N]\n"
               "           [--deadline-ms=X]   (per-request deadline; late\n"
               "                             queued requests are rejected)\n"
               "           requires a zero-padded model (--border=zero);\n"
               "           see docs/serving.md\n"
               "  info     --model=FILE | --data=FILE\n"
               "observability flags (any command; see docs/observability.md):\n"
               "  --trace=FILE      Chrome trace-event JSON of the run's spans,\n"
               "                    with cross-rank flow arrows on every halo\n"
               "                    message (analyze with tools/parpde_trace.py)\n"
               "  --metrics=FILE    JSONL run report (per rank per epoch +\n"
               "                    summary with comm/compute split)\n"
               "  --log-level=debug|info|warn|error   (or PARPDE_LOG_LEVEL)\n"
               "exit codes: 0 ok | 1 runtime error | 2 usage | 3 requested\n"
               "  --trace/--metrics file could not be written | 4 rollout\n"
               "  produced non-finite values\n"
               "robustness (see docs/robustness.md):\n"
               "  PARPDE_FAULT env  seeded fault plan (message drop/delay/dup/\n"
               "                    corrupt, rank kill); train checkpoints +\n"
               "                    --resume restart bit-identically\n");
  return 2;
}

std::string json_int_array(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string json_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += '"';
    for (const char c : values[i]) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  return out + "]";
}

// Injected-fault deaths as JSON objects: which rank, the epoch/step boundary
// where it died (-1 when not applicable), and the RankFailure message.
std::string json_rank_failures(
    const std::vector<RankFailureRecord>& failures) {
  std::string out = "[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i != 0) out += ",";
    telemetry::JsonObject obj;
    obj.field("rank", failures[i].rank)
        .field("epoch", static_cast<std::int64_t>(failures[i].epoch))
        .field("step", static_cast<std::int64_t>(failures[i].step))
        .field("error", failures[i].error);
    out += obj.str();
  }
  return out + "]";
}

std::string require(const util::Options& opts, const std::string& key) {
  const std::string v = opts.get_string(key, "");
  if (v.empty()) {
    std::fprintf(stderr, "missing required --%s\n", key.c_str());
    std::exit(2);
  }
  return v;
}

int cmd_simulate(const util::Options& opts) {
  const std::string out = require(opts, "out");
  const std::string pde = opts.get_string("pde", "euler");
  const int frames = opts.get_int("frames", 100);
  const int spf = opts.get_int("steps-per-frame", 4);
  if (pde == "euler") {
    euler::EulerConfig config;
    config.n = opts.get_int("grid", 64);
    euler::SimulateOptions sim_opts;
    sim_opts.num_frames = frames;
    sim_opts.steps_per_frame = spf;
    const auto sim = euler::simulate(config, sim_opts);
    data::save_frames(out, sim.frames);
    std::printf("wrote %zu linearized-Euler frames (%dx%d, frame dt %.5f) to %s\n",
                sim.frames.size(), config.n, config.n, sim.frame_dt,
                out.c_str());
  } else if (pde == "advection") {
    pde::AdvectionConfig config;
    config.n = opts.get_int("grid", 64);
    const auto sim = pde::simulate_advection(config, frames, spf);
    data::save_frames(out, sim.frames);
    std::printf("wrote %zu advection-diffusion frames (%dx%d) to %s\n",
                sim.frames.size(), config.n, config.n, out.c_str());
  } else {
    std::fprintf(stderr, "unknown --pde=%s\n", pde.c_str());
    return 2;
  }
  return 0;
}

TrainConfig config_from_options(const util::Options& opts,
                                std::int64_t channels) {
  TrainConfig config;
  if (channels != 4) {
    // Keep the Table-I interior but adapt the input/output channel count to
    // the dataset (e.g. the single-channel advection data).
    config.network.channels = {channels, 6, 16, 6, channels};
  }
  config.border =
      border_mode_from_string(opts.get_string("border", "halo-pad"));
  config.loss = opts.get_string("loss", "mape");
  config.optimizer = opts.get_string("optimizer", "adam");
  config.learning_rate = opts.get_double("lr", 1e-2);
  config.epochs = opts.get_int("epochs", 20);
  config.batch_size = opts.get_int("batch-size", 16);
  config.train_fraction = opts.get_double("train-fraction", 2.0 / 3.0);
  // Intra-rank pool threads (0 = auto; ranks x threads capped at hardware).
  config.num_threads = opts.get_int("threads", 0);
  return config;
}

// Unified per-rank run report: one JSONL record per rank per epoch, a
// per-rank comm summary, and a final record with the comm/compute split plus
// the registry counters (gemm flops, pool activity, traffic totals).
// Returns false when the report could not be opened or fully written — the
// caller turns that into exit code 3 (a run report the user asked for but
// never got is a failed run, not a warning).
bool write_train_metrics(const std::string& path,
                         const ParallelTrainReport& report) {
  telemetry::JsonlWriter writer(path);
  if (!writer.ok()) {
    std::fprintf(stderr, "error: cannot open --metrics file %s\n",
                 path.c_str());
    return false;
  }
  std::uint64_t sent_total = 0;
  std::uint64_t recv_total = 0;
  for (const auto& outcome : report.rank_outcomes) {
    for (std::size_t e = 0; e < outcome.result.epochs.size(); ++e) {
      const auto& stats = outcome.result.epochs[e];
      telemetry::JsonObject record;
      record.field("record", "epoch")
          .field("rank", outcome.rank)
          .field("epoch", static_cast<std::int64_t>(e))
          .field("loss", stats.loss)
          .field("val_loss", stats.val_loss)
          .field("seconds", stats.seconds);
      writer.write_line(record.str());
    }
    telemetry::JsonObject record;
    record.field("record", "rank_summary")
        .field("rank", outcome.rank)
        .field("final_loss", outcome.result.final_loss())
        .field("train_seconds", outcome.result.seconds)
        .field("bytes_sent", outcome.train_bytes_sent)
        .field("bytes_received", outcome.train_bytes_received);
    writer.write_line(record.str());
    sent_total += outcome.train_bytes_sent;
    recv_total += outcome.train_bytes_received;
  }
  auto& registry = telemetry::Registry::global();
  telemetry::JsonObject summary;
  summary.field("record", "run_summary")
      .field("ranks", report.ranks)
      .field("wall_seconds", report.wall_seconds)
      .field("compute_seconds", report.total_work_seconds())
      .field("comm_seconds",
             telemetry::histogram("halo.exchange_seconds").sum())
      .field("bytes_sent_total", sent_total)
      .field("bytes_received_total", recv_total)
      .raw("retrained_ranks", json_int_array(report.retrained_ranks))
      .raw("rank_failures", json_rank_failures(report.failures))
      .raw("metrics", registry.metrics_json());
  writer.write_line(summary.str());
  if (!writer.close()) {
    std::fprintf(stderr, "error: failed writing --metrics file %s\n",
                 path.c_str());
    return false;
  }
  std::printf("wrote run report to %s\n", path.c_str());
  return true;
}

int cmd_train(const util::Options& opts) {
  const std::string data_path = require(opts, "data");
  const std::string out = require(opts, "out");
  const int ranks = opts.get_int("ranks", 4);
  const int tasks_per_rank = opts.get_int("tasks-per-rank", 1);
  if (tasks_per_rank < 1) {
    std::fprintf(stderr, "--tasks-per-rank must be >= 1\n");
    return 2;
  }
  const data::FrameDataset dataset(data::load_frames(data_path));
  const TrainConfig config = config_from_options(opts, dataset.channels());

  std::printf("training %d subdomain networks on %lld pairs (%s, %s)...\n",
              ranks * tasks_per_rank,
              static_cast<long long>(dataset.num_pairs()), config.loss.c_str(),
              border_mode_name(config.border).c_str());
  const ParallelTrainer trainer(config, ranks, tasks_per_rank);

  FaultToleranceOptions fault_tolerance;
  fault_tolerance.checkpoint_dir = opts.get_string("checkpoint-dir", "");
  fault_tolerance.checkpoint_every = opts.get_int(
      "checkpoint-every", fault_tolerance.checkpoint_dir.empty() ? 0 : 1);
  fault_tolerance.resume = opts.get_bool("resume", false);
  if (fault_tolerance.resume && fault_tolerance.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  // Engage the fault-tolerant path whenever the user asked for checkpoints or
  // a fault plan is live; otherwise keep the plain (byte-identical) call.
  const bool tolerant = !fault_tolerance.checkpoint_dir.empty() ||
                        fault_tolerance.resume || mpi::fault::enabled();
  const auto report =
      trainer.train(dataset, ExecutionMode::kConcurrent, nullptr,
                    tolerant ? &fault_tolerance : nullptr);

  util::Table table({"rank", "final loss", "time [s]", "sent [B]", "recv [B]"});
  for (const auto& outcome : report.rank_outcomes) {
    table.add_row({std::to_string(outcome.rank),
                   util::Table::fmt_sci(outcome.result.final_loss()),
                   util::Table::fmt(outcome.result.seconds, 2),
                   std::to_string(outcome.train_bytes_sent),
                   std::to_string(outcome.train_bytes_received)});
  }
  table.print("per-rank training:");
  if (!report.retrained_ranks.empty()) {
    std::string list;
    for (const int r : report.retrained_ranks) {
      if (!list.empty()) list += ", ";
      list += std::to_string(r);
    }
    std::printf("retrained after rank failure: %s (see docs/robustness.md)\n",
                list.c_str());
  }
  bool metrics_ok = true;
  if (opts.has("metrics")) {
    metrics_ok = write_train_metrics(opts.get_string("metrics", ""), report);
  }
  // The ensemble is saved even when the run report failed — the training is
  // not lost — but the exit code still reports the observability failure.
  save_ensemble(out, make_checkpoint(config, report));
  std::printf("saved ensemble to %s\n", out.c_str());
  return metrics_ok ? 0 : 3;
}

// Rebuilds the minimal TrainConfig inference needs from a checkpoint.
TrainConfig inference_config(const EnsembleCheckpoint& checkpoint) {
  TrainConfig config;
  config.network = checkpoint.network;
  config.border = checkpoint.border;
  return config;
}

int cmd_eval(const util::Options& opts) {
  const auto checkpoint = load_ensemble(require(opts, "model"));
  const data::FrameDataset dataset(data::load_frames(require(opts, "data")));
  const double fraction = opts.get_double("train-fraction", 2.0 / 3.0);
  const TrainConfig config = inference_config(checkpoint);
  const SubdomainEnsemble ensemble(config, checkpoint.report, dataset.height(),
                                   dataset.width());
  const auto split = dataset.chronological_split(fraction);

  std::vector<double> mape(static_cast<std::size_t>(dataset.channels()), 0.0);
  std::vector<double> rel(static_cast<std::size_t>(dataset.channels()), 0.0);
  for (const auto pair : split.val) {
    const auto metrics =
        channel_metrics(ensemble.predict(dataset.frame(pair)),
                        dataset.frame(pair + 1));
    for (std::size_t c = 0; c < metrics.size(); ++c) {
      mape[c] += metrics[c].mape;
      rel[c] += metrics[c].rel_l2;
    }
  }
  util::Table table({"channel", "MAPE[%]", "rel-L2"});
  for (std::int64_t c = 0; c < dataset.channels(); ++c) {
    const auto n = static_cast<double>(split.val.size());
    table.add_row({channel_name(c),
                   util::Table::fmt(mape[static_cast<std::size_t>(c)] / n, 3),
                   util::Table::fmt_sci(rel[static_cast<std::size_t>(c)] / n)});
  }
  table.print("one-step validation metrics (" +
              std::to_string(split.val.size()) + " frames):");
  return 0;
}

int cmd_rollout(const util::Options& opts) {
  const auto checkpoint = load_ensemble(require(opts, "model"));
  const data::FrameDataset dataset(data::load_frames(require(opts, "data")));
  const TrainConfig config = inference_config(checkpoint);
  const int steps = opts.get_int("steps", 5);
  const auto start =
      static_cast<std::int64_t>(opts.get_int("start", static_cast<int>(
          dataset.num_pairs() * 2 / 3)));
  if (start < 0 || start + steps >= dataset.num_frames()) {
    std::fprintf(stderr, "rollout window [%lld, %lld] exceeds the dataset\n",
                 static_cast<long long>(start),
                 static_cast<long long>(start + steps));
    return 2;
  }
  RolloutOptions rollout_options;
  rollout_options.halo.recv_timeout =
      std::chrono::milliseconds(opts.get_int("halo-timeout-ms", 250));
  rollout_options.halo.max_retries = opts.get_int("halo-retries", 40);
  rollout_options.engine = opts.get_bool("serialized", false)
                               ? RolloutEngine::kSerialized
                               : RolloutEngine::kOverlapped;
  rollout_options.record_every = opts.get_int("record-every", 1);
  rollout_options.elastic.enabled = opts.get_bool("elastic", false);
  rollout_options.elastic.tasks_per_rank = opts.get_int("tasks-per-rank", 1);
  rollout_options.elastic.recover = !opts.get_bool("no-recover", false);
  rollout_options.elastic.lease =
      std::chrono::milliseconds(opts.get_int("lease-ms", 250));
  rollout_options.elastic.missed_leases = opts.get_int("missed-leases", 20);
  rollout_options.elastic.state_dir = opts.get_string("state-dir", "");
  rollout_options.elastic.state_every = opts.get_int(
      "state-every", rollout_options.elastic.state_dir.empty() ? 0 : 1);
  if (!rollout_options.elastic.enabled &&
      rollout_options.elastic.tasks_per_rank != 1) {
    std::fprintf(stderr, "--tasks-per-rank requires --elastic\n");
    return 2;
  }
  const std::string backend_name = opts.get_string("backend", "fp32");
  rollout_options.backend = backend::by_name(backend_name);
  if (rollout_options.backend == nullptr) {
    std::fprintf(stderr, "unknown --backend=%s (fp32 or int8)\n",
                 backend_name.c_str());
    return 2;
  }
  const auto result = parallel_rollout(config, checkpoint.report,
                                       dataset.frame(start), steps,
                                       rollout_options);
  std::vector<Tensor> truths;
  for (const int s : result.recorded_steps) {
    truths.push_back(dataset.frame(start + s + 1));
  }
  const auto curve = rollout_error_curve(result.frames, truths);
  util::Table table({"step", "rel-L2"});
  for (std::size_t k = 0; k < curve.size(); ++k) {
    table.add_row({std::to_string(result.recorded_steps[k] + 1),
                   util::Table::fmt_sci(curve[k])});
  }
  table.print("rollout error from frame " + std::to_string(start) + ":");
  std::printf(
      "halo traffic %llu sent / %llu received bytes | comm %.4fs | "
      "compute %.4fs\n",
      static_cast<unsigned long long>(result.halo_bytes),
      static_cast<unsigned long long>(result.halo_bytes_received),
      result.comm_seconds, result.compute_seconds);
  if (result.degraded_borders > 0) {
    std::fprintf(stderr,
                 "warning: %d border(s) degraded to zero padding after halo "
                 "message loss (docs/robustness.md):\n",
                 result.degraded_borders);
    for (const auto& line : result.degraded_detail) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
  }
  const HealthReport& health = result.health;
  if (health.failed_ranks > 0) {
    std::fprintf(stderr,
                 "elastic recovery: %d rank failure(s) detected at step %d "
                 "(%.3fs); %d recovery round(s) adopted %d task(s) in %.3fs, "
                 "assignment epoch %d\n",
                 health.failed_ranks, health.detection_step,
                 health.detection_seconds, health.recoveries,
                 health.adopted_tasks, health.rebalance_seconds,
                 health.assignment_epoch);
  }
  if (opts.get_bool("health-report", false)) {
    util::Table health_table({"health check", "value"});
    health_table.add_row(
        {"non-finite values", std::to_string(health.nonfinite_values)});
    health_table.add_row(
        {"first non-finite step",
         health.first_nonfinite_step < 0
             ? "-"
             : std::to_string(health.first_nonfinite_step) + " (rank " +
                   std::to_string(health.first_nonfinite_rank) + ")"});
    health_table.add_row({"max interface residual",
                          util::Table::fmt_sci(health.max_interface_residual)});
    health_table.add_row(
        {"int8 saturated values", std::to_string(health.quant_saturations)});
    health_table.add_row(
        {"degraded borders", std::to_string(health.degraded_borders)});
    if (rollout_options.elastic.enabled) {
      health_table.add_row(
          {"rank failures", std::to_string(health.failed_ranks)});
      health_table.add_row(
          {"recovery rounds", std::to_string(health.recoveries)});
      health_table.add_row(
          {"adopted tasks", std::to_string(health.adopted_tasks)});
      health_table.add_row(
          {"failure detected at step",
           health.detection_step < 0 ? "-"
                                     : std::to_string(health.detection_step)});
      health_table.add_row({"detection seconds",
                            util::Table::fmt(health.detection_seconds, 3)});
      health_table.add_row({"rebalance seconds",
                            util::Table::fmt(health.rebalance_seconds, 3)});
      health_table.add_row(
          {"assignment epoch", std::to_string(health.assignment_epoch)});
      health_table.add_row(
          {"degraded during recovery",
           std::to_string(health.degraded_during_recovery)});
    }
    health_table.print("rollout health:");
  }
  int rc = 0;
  if (opts.has("metrics")) {
    telemetry::JsonlWriter writer(opts.get_string("metrics", ""));
    if (writer.ok()) {
      for (std::size_t k = 0; k < curve.size(); ++k) {
        telemetry::JsonObject record;
        record.field("record", "rollout_step")
            .field("step",
                   static_cast<std::int64_t>(result.recorded_steps[k] + 1))
            .field("rel_l2", curve[k]);
        writer.write_line(record.str());
      }
      telemetry::JsonObject summary;
      summary.field("record", "rollout_summary")
          .field("steps", steps)
          .field("engine",
                 rollout_options.elastic.enabled
                     ? "elastic"
                     : (rollout_options.engine == RolloutEngine::kSerialized
                            ? "serialized"
                            : "overlapped"))
          .field("backend", result.backend)
          .field("record_every",
                 static_cast<std::int64_t>(rollout_options.record_every))
          .field("recorded_frames",
                 static_cast<std::int64_t>(result.frames.size()))
          .field("comm_seconds", result.comm_seconds)
          .field("compute_seconds", result.compute_seconds)
          .field("overlap_seconds", result.overlap_seconds)
          .field("steady_state_allocs",
                 static_cast<std::int64_t>(result.steady_state_allocs))
          .field("halo_bytes_sent", result.halo_bytes)
          .field("halo_bytes_received", result.halo_bytes_received)
          .field("bytes_sent_total", result.bytes_sent)
          .field("bytes_received_total", result.bytes_received)
          .field("degraded_borders",
                 static_cast<std::int64_t>(result.degraded_borders))
          .raw("degraded_detail", json_string_array(result.degraded_detail));
      telemetry::JsonObject health_json;
      health_json
          .field("nonfinite_values",
                 static_cast<std::int64_t>(health.nonfinite_values))
          .field("first_nonfinite_step",
                 static_cast<std::int64_t>(health.first_nonfinite_step))
          .field("first_nonfinite_rank",
                 static_cast<std::int64_t>(health.first_nonfinite_rank))
          .field("max_interface_residual", health.max_interface_residual)
          .field("quant_saturations",
                 static_cast<std::int64_t>(health.quant_saturations))
          .field("degraded_borders",
                 static_cast<std::int64_t>(health.degraded_borders));
      summary.raw("health", health_json.str());
      if (rollout_options.elastic.enabled) {
        telemetry::JsonObject recovery_json;
        recovery_json.field("recoveries", health.recoveries)
            .field("adopted_tasks", health.adopted_tasks)
            .field("failed_ranks", health.failed_ranks)
            .field("detection_step", health.detection_step)
            .field("detection_seconds", health.detection_seconds)
            .field("rebalance_seconds", health.rebalance_seconds)
            .field("assignment_epoch", health.assignment_epoch)
            .field("degraded_during_recovery",
                   health.degraded_during_recovery);
        summary.raw("recovery", recovery_json.str());
      }
      const std::string trace_path = opts.get_string("trace", "");
      if (!trace_path.empty()) summary.field("trace_file", trace_path);
      summary.raw("metrics", telemetry::Registry::global().metrics_json());
      writer.write_line(summary.str());
      if (!writer.close()) {
        std::fprintf(stderr, "error: failed writing --metrics file %s\n",
                     opts.get_string("metrics", "").c_str());
        rc = 3;
      }
    } else {
      std::fprintf(stderr, "error: cannot open --metrics file %s\n",
                   opts.get_string("metrics", "").c_str());
      rc = 3;
    }
  }
  if (opts.get_bool("render", false) && !result.frames.empty()) {
    std::printf("\n%s", util::render_comparison(
                            result.frames.back(), truths.back(), 0,
                            "channel 0 after " + std::to_string(steps) +
                                " steps")
                            .c_str());
  }
  // Non-finite values mean every frame after first_nonfinite_step is garbage;
  // that must not look like a successful rollout to scripts.
  if (health.nonfinite()) {
    std::fprintf(stderr,
                 "error: rollout produced %llu non-finite value(s), first at "
                 "step %d on rank %d (run with --health-report for details)\n",
                 static_cast<unsigned long long>(health.nonfinite_values),
                 health.first_nonfinite_step, health.first_nonfinite_rank);
    return 4;
  }
  return rc;
}

// Multi-session inference service over one trained network (docs/serving.md).
// Sessions run autoregressively inside the process: client threads step their
// sessions in a closed loop while the coalescing scheduler batches
// same-geometry requests into wide GEMMs. With --data the sessions replay
// recorded states — each session starts from a different dataset frame
// (replay-client mode); without it they start from seeded synthetic fields
// at --grid. Requires a "same"-padded model (train with --border=zero):
// sessions keep a fixed geometry across steps.
int cmd_serve(const util::Options& opts) {
  const auto checkpoint = load_ensemble(require(opts, "model"));
  if (checkpoint.border != BorderMode::kZeroPad) {
    std::fprintf(stderr,
                 "serve requires a zero-padded model (fixed session geometry);"
                 " this checkpoint was trained with --border=%s\n",
                 border_mode_name(checkpoint.border).c_str());
    return 2;
  }
  if (checkpoint.report.rank_outcomes.empty() ||
      checkpoint.report.rank_outcomes[0].parameters.empty()) {
    std::fprintf(stderr, "checkpoint carries no trained parameters\n");
    return 2;
  }
  const TrainConfig config = inference_config(checkpoint);
  const auto model =
      rebuild_model(config, checkpoint.report.rank_outcomes[0].parameters);
  const std::int64_t channels = config.network.channels.front();

  const int sessions = opts.get_int("sessions", 4);
  const int steps = opts.get_int("steps", 16);
  const double deadline_ms = opts.get_double("deadline-ms", 0.0);
  const std::string backend_name = opts.get_string("backend", "fp32");
  const backend::KernelBackend* bk = backend::by_name(backend_name);
  if (bk == nullptr) {
    std::fprintf(stderr, "unknown --backend=%s (fp32 or int8)\n",
                 backend_name.c_str());
    return 2;
  }

  // Session initial conditions: recorded frames (replay-client mode) or
  // seeded synthetic fields.
  std::vector<Tensor> initials;
  std::int64_t grid_h = 0, grid_w = 0;
  if (opts.has("data")) {
    const data::FrameDataset dataset(
        data::load_frames(opts.get_string("data", "")));
    if (dataset.channels() != channels) {
      std::fprintf(stderr,
                   "dataset has %lld channels, the model expects %lld\n",
                   static_cast<long long>(dataset.channels()),
                   static_cast<long long>(channels));
      return 2;
    }
    const auto start = static_cast<std::int64_t>(opts.get_int("start", 0));
    if (start + sessions > dataset.num_frames()) {
      std::fprintf(stderr, "replay window [%lld, %lld) exceeds the dataset\n",
                   static_cast<long long>(start),
                   static_cast<long long>(start + sessions));
      return 2;
    }
    grid_h = dataset.height();
    grid_w = dataset.width();
    for (int s = 0; s < sessions; ++s) {
      initials.push_back(dataset.frame(start + s));
    }
  } else {
    grid_h = grid_w = static_cast<std::int64_t>(opts.get_int("grid", 64));
    for (int s = 0; s < sessions; ++s) {
      Tensor ic({channels, grid_h, grid_w});
      util::Rng rng(100 + static_cast<std::uint64_t>(s));
      rng.fill_uniform(ic.values(), 0.5f, 1.5f);
      initials.push_back(std::move(ic));
    }
  }

  serve::ServerOptions server_options;
  server_options.backend = bk;
  server_options.max_batch = opts.get_int("max-batch", 8);
  server_options.queue_depth = opts.get_int("queue-depth", 64);
  server_options.max_sessions = sessions;
  server_options.coalesce = !opts.get_bool("serial", false);
  server_options.coalesce_window_ms = opts.get_double("window-ms", 0.0);
  serve::SurrogateServer server(*model, channels, grid_h, grid_w,
                                server_options);
  if (server.needs_calibration()) server.calibrate(initials[0].data());

  std::vector<std::int64_t> ids(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    ids[static_cast<std::size_t>(s)] =
        server.open_session(initials[static_cast<std::size_t>(s)].data());
  }
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(sessions));
  std::atomic<std::uint64_t> deadline_misses{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      for (int t = 0; t < steps; ++t) {
        const serve::StepResult r =
            server.step(ids[static_cast<std::size_t>(s)], deadline_ms);
        if (r.ok()) {
          latencies[static_cast<std::size_t>(s)].push_back(r.latency_seconds);
        } else if (r.reject == serve::Reject::kDeadline) {
          deadline_misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  const parpde::bench::LatencySummary lat =
      parpde::bench::summarize_latencies(all);
  const serve::ServerStats stats = server.stats();
  util::Table table({"figure", "value"});
  table.add_row({"sessions", std::to_string(sessions)});
  table.add_row({"steps/session", std::to_string(steps)});
  table.add_row({"backend", backend_name});
  table.add_row({"dispatch", server_options.coalesce ? "coalesced" : "serial"});
  table.add_row({"requests", std::to_string(stats.requests)});
  table.add_row({"rejected", std::to_string(stats.rejected)});
  table.add_row({"deadline misses", std::to_string(deadline_misses.load())});
  table.add_row(
      {"throughput [req/s]",
       util::Table::fmt(static_cast<double>(all.size()) / wall, 1)});
  table.add_row({"p50 latency [ms]", util::Table::fmt(lat.p50 * 1e3, 3)});
  table.add_row({"p99 latency [ms]", util::Table::fmt(lat.p99 * 1e3, 3)});
  table.add_row(
      {"mean batch",
       util::Table::fmt(stats.batches > 0
                            ? static_cast<double>(stats.requests -
                                                  stats.rejected) /
                                  static_cast<double>(stats.batches)
                            : 0.0,
                        2)});
  table.add_row({"growth events", std::to_string(server.growth_events())});
  table.print("serve summary (" +
              std::string(opts.has("data") ? "replay" : "synthetic") +
              " sessions):");
  std::printf("batch occupancy:");
  for (std::size_t b = 1; b < stats.occupancy.size(); ++b) {
    std::printf(" %zux%llu", b,
                static_cast<unsigned long long>(stats.occupancy[b]));
  }
  std::printf("\n");
  return 0;
}

int cmd_info(const util::Options& opts) {
  if (opts.has("model")) {
    const auto checkpoint = load_ensemble(opts.get_string("model", ""));
    std::printf("ensemble checkpoint:\n  ranks: %d (%d x %d)\n  border: %s\n",
                checkpoint.report.ranks, checkpoint.report.dims.px,
                checkpoint.report.dims.py,
                border_mode_name(checkpoint.border).c_str());
    std::printf("  network channels:");
    for (const auto c : checkpoint.network.channels) {
      std::printf(" %lld", static_cast<long long>(c));
    }
    std::printf(" | kernel %lldx%lld\n",
                static_cast<long long>(checkpoint.network.kernel),
                static_cast<long long>(checkpoint.network.kernel));
    std::int64_t params = 0;
    for (const auto& o : checkpoint.report.rank_outcomes) {
      for (const auto& t : o.parameters) params += t.size();
    }
    std::printf("  total parameters: %lld\n", static_cast<long long>(params));
    return 0;
  }
  if (opts.has("data")) {
    const data::FrameDataset dataset(
        data::load_frames(opts.get_string("data", "")));
    std::printf("frame dataset: %lld frames of [%lld, %lld, %lld]\n",
                static_cast<long long>(dataset.num_frames()),
                static_cast<long long>(dataset.channels()),
                static_cast<long long>(dataset.height()),
                static_cast<long long>(dataset.width()));
    return 0;
  }
  return usage();
}

}  // namespace

int run_command(const std::string& command, const util::Options& opts) {
  if (command == "simulate") return cmd_simulate(opts);
  if (command == "train") return cmd_train(opts);
  if (command == "eval") return cmd_eval(opts);
  if (command == "rollout") return cmd_rollout(opts);
  if (command == "serve") return cmd_serve(opts);
  if (command == "info") return cmd_info(opts);
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Options opts(argc - 1, argv + 1);

  // --log-level beats the PARPDE_LOG_LEVEL environment fallback.
  std::string level_name = opts.get_string("log-level", "");
  if (level_name.empty()) {
    if (const char* env = std::getenv("PARPDE_LOG_LEVEL")) level_name = env;
  }
  if (!level_name.empty()) {
    util::LogLevel level = util::LogLevel::kInfo;
    if (!util::parse_log_level(level_name, &level)) {
      std::fprintf(stderr, "unknown log level '%s' (debug|info|warn|error)\n",
                   level_name.c_str());
      return 2;
    }
    util::set_log_level(level);
  }

  // PARPDE_FAULT installs a seeded fault plan before any command runs, so an
  // injected drop/kill covers the whole pipeline (docs/robustness.md).
  try {
    mpi::fault::install_from_env();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad PARPDE_FAULT: %s\n", e.what());
    return 2;
  }

  const std::string trace_path = opts.get_string("trace", "");
  if (!trace_path.empty()) {
    // Fail fast when the trace destination is unwritable: finding out after
    // the run would silently throw the whole trace away.
    std::FILE* probe = std::fopen(trace_path.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "error: cannot open --trace file %s\n",
                   trace_path.c_str());
      return 3;
    }
    std::fclose(probe);
    telemetry::set_enabled(true);
  }

  int rc;
  try {
    rc = run_command(command, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!trace_path.empty()) {
    telemetry::set_enabled(false);
    if (telemetry::write_chrome_trace(trace_path)) {
      std::printf("wrote %zu trace events to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  telemetry::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write --trace file %s\n",
                   trace_path.c_str());
      if (rc == 0) rc = 3;
    }
  }
  return rc;
}
