#!/bin/sh
# Sanitizer gate for the concurrency-sensitive parts of the library.
#
#   tools/check.sh [build-root]
#
# Two out-of-tree builds under <build-root> (default: build-sanitize):
#   * tsan:  ThreadSanitizer over the mini-MPI runtime and the intra-rank
#            thread pool — the tests that exercise cross-thread mailboxes,
#            collectives, concurrent rank training, the blocked GEMM's
#            parallel_for fan-out, the overlapped rollout engine's
#            begin/finish halo split (bit-identity under races), the
#            cross-rank trace collector's concurrent event buffers, the
#            int8 quantized rollout path, and the SurrogateServer's
#            scheduler/client handoff (coalesced batching under many
#            concurrent session threads).
#   * asan:  Address+UB sanitizers over the full ctest suite, with
#            PARPDE_CHECKED_TENSOR=ON so every Tensor access is also
#            bounds- and rank-checked, plus a second pass over the `chaos`
#            label with the runtime message validator on.
#
# Fault injection: any of these binaries also honours the PARPDE_FAULT
# environment variable (seeded message drop/delay/dup/corrupt and rank
# kills — grammar in docs/robustness.md), so a chaotic sanitizer run is
# e.g.  PARPDE_FAULT="seed=3;drop:tag=4096-4099,prob=0.3" tools/check.sh
# The deterministic crash/resume soak itself is the `chaos` ctest label:
#   ctest -L chaos --output-on-failure
#
# Exits non-zero on the first failing build or test.

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build_root=${1:-"$root/build-sanitize"}
jobs=$(nproc 2>/dev/null || echo 2)

echo "== ThreadSanitizer: minimpi + thread pool + parallel trainers =="
cmake -S "$root" -B "$build_root/tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build "$build_root/tsan" -j "$jobs" --target \
  test_minimpi_p2p test_minimpi_collectives test_minimpi_collectives2 \
  test_minimpi_cart test_gemm_blocked test_core_parallel test_fault \
  test_rollout_overlap test_trace test_quant_rollout test_serve >/dev/null
(cd "$build_root/tsan" && ctest --output-on-failure -R \
  'test_minimpi_p2p|test_minimpi_collectives|test_minimpi_collectives2|test_minimpi_cart|test_gemm_blocked|test_core_parallel|test_fault|test_rollout_overlap|test_trace|test_quant_rollout|test_serve')

echo "== Address/UB sanitizer + checked tensor accessors: full test suite =="
cmake -S "$root" -B "$build_root/asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPARPDE_CHECKED_TENSOR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build "$build_root/asan" -j "$jobs" >/dev/null
(cd "$build_root/asan" && ctest --output-on-failure -j "$jobs")

echo "== Chaos soak under ASan with the runtime message validator on =="
(cd "$build_root/asan" && PARPDE_MPI_VALIDATE=1 ctest --output-on-failure -L chaos)

echo "All sanitizer checks passed."
