// Sec. II ablation: optimizer choice. The paper: "After trying different
// available options, we found the ADAM optimizer to have the best performance
// in our case." This bench trains the same subdomain network with ADAM, plain
// SGD, and SGD+momentum and prints the loss-vs-epoch curves.

#include <cmath>
#include <cstdio>
#include <limits>

#include "common.hpp"
#include "core/parallel_trainer.hpp"

using namespace parpde;
using namespace parpde::core;

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  setup.epochs = opts.get_int("epochs", std::max(setup.epochs, 10));
  bench::print_setup("Sec. II ablation: optimizers", setup);

  const auto dataset = bench::generate_dataset(setup);

  struct Run {
    std::string name;
    double lr = 0.0;
    std::vector<double> losses;
    double seconds = 0.0;
  };
  std::vector<Run> runs = {{"adam"}, {"sgd"}, {"momentum"}};

  // Fair comparison: each optimizer gets its best learning rate from a short
  // probe grid (the raw MAPE gradients are ~1e4x larger than MSE gradients,
  // so a single shared rate would just show SGD diverging).
  const double probe_lrs[] = {3e-2, 1e-2, 3e-3, 1e-3, 1e-4, 1e-5, 1e-6};
  for (auto& run : runs) {
    double best_loss = std::numeric_limits<double>::infinity();
    for (const double lr : probe_lrs) {
      TrainConfig config = bench::make_train_config(setup);
      config.optimizer = run.name;
      config.learning_rate = lr;
      config.epochs = 2;
      const ParallelTrainer probe(config, 1);
      const auto report = probe.train(dataset, ExecutionMode::kIsolated);
      const double loss = report.mean_final_loss();
      if (std::isfinite(loss) && loss < best_loss) {
        best_loss = loss;
        run.lr = lr;
      }
    }
    std::printf("%-9s picked lr=%g from the probe grid\n", run.name.c_str(),
                run.lr);
    std::fflush(stdout);
  }

  for (auto& run : runs) {
    TrainConfig config = bench::make_train_config(setup);
    config.optimizer = run.name;
    config.learning_rate = run.lr;
    // Single-subdomain training (the optimizer comparison does not depend on
    // the decomposition).
    const ParallelTrainer trainer(config, 1);
    const auto report = trainer.train(dataset, ExecutionMode::kIsolated);
    for (const auto& epoch : report.rank_outcomes[0].result.epochs) {
      run.losses.push_back(epoch.loss);
    }
    run.seconds = report.rank_outcomes[0].result.seconds;
    std::printf("%-9s trained: final loss %.6g (%.2fs)\n", run.name.c_str(),
                run.losses.back(), run.seconds);
    std::fflush(stdout);
  }

  util::Table table({"epoch", "adam", "sgd", "momentum"});
  for (std::size_t e = 0; e < runs[0].losses.size(); ++e) {
    table.add_row({std::to_string(e + 1),
                   util::Table::fmt_sci(runs[0].losses[e]),
                   util::Table::fmt_sci(runs[1].losses[e]),
                   util::Table::fmt_sci(runs[2].losses[e])});
  }
  table.print("\nSec. II | " + setup.loss + " training loss per epoch (lr " +
              util::Table::fmt(setup.learning_rate, 4) + "):");
  std::printf("\nExpectation (paper): ADAM converges fastest and lowest.\n");
  return 0;
}
