// Serving-layer benchmark (docs/serving.md): drives a SurrogateServer with a
// synthetic multi-session load — per-session Poisson arrival schedules over a
// seeded exponential stream — and compares the coalescing scheduler against
// the serial dispatch baseline across a concurrency sweep. Per-request
// latency is measured from the *scheduled* arrival time, not the issue time,
// so queueing delay is charged to the server (no coordinated omission).
//
// Besides the sweep, the run records two machine-capability figures the gate
// conditions on (tools/bench_gate.py, gate_serving):
//
//   batch_amortization   plan-level per-sample speedup of one
//                        run_batched(max_batch) over max_batch solo run()
//                        calls. This is the ceiling coalescing can reach on
//                        this machine: where GEMMs at serving width already
//                        saturate the core (large tiles, few cores) it sits
//                        near 1.0 and the gate only demands coalescing never
//                        materially loses; where wide GEMMs genuinely
//                        amortize, the gate scales its floor up to the 1.5x
//                        acceptance target.
//   bit_identical        every session's trajectory under coalesced dispatch
//                        matches a solo ForwardPlan::run replay byte for
//                        byte (the determinism contract, both backends).
//
// Emits one JSON object on stdout and writes it to BENCH_serving.json
// (progress on stderr).
//
//   bench_serving [--grid G] [--steps N] [--warmup N] [--max-batch B]
//                 [--window-ms X] [--queue-depth N] [--gap-ms X]
//                 [--threads N] [--out FILE]
//
// --gap-ms 0 (default) auto-calibrates the per-session mean arrival gap to
// the measured solo step time, so the offered load at concurrency C is about
// C times one core's service rate — saturating, which is the regime
// coalescing exists for.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "latency_stats.hpp"
#include "nn/forward_plan.hpp"
#include "serve/surrogate_server.hpp"
#include "util/options.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace {

using parpde::Tensor;
namespace core = parpde::core;
namespace serve = parpde::serve;
namespace nn = parpde::nn;

using Clock = std::chrono::steady_clock;

struct RunStats {
  double throughput_rps = 0.0;
  parpde::bench::LatencySummary latency;
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  double mean_batch = 0.0;
  std::vector<std::uint64_t> occupancy;
  std::uint64_t growth_events = 0;
};

// Table-I weights damped toward a contractive map (the test_quant_rollout
// idiom) keep the autoregressive sessions bounded; loading through
// core::rebuild_model is the same path the CLI `serve` command uses.
std::unique_ptr<nn::Sequential> damped_model(const core::TrainConfig& cfg) {
  parpde::util::Rng rng(cfg.seed);
  const auto raw = core::build_model(cfg.network, cfg.border, rng);
  auto params = core::export_parameters(*raw);
  parpde::util::Rng weight_rng(1234);
  for (auto& t : params) {
    if (t.ndim() == 1) {
      weight_rng.fill_uniform(t.values(), -0.3f, 0.3f);
    } else {
      for (std::int64_t i = 0; i < t.size(); ++i) t[i] *= 0.5f;
    }
  }
  return core::rebuild_model(cfg, params);
}

std::vector<Tensor> session_initials(int sessions, std::int64_t channels,
                                     std::int64_t grid) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    Tensor ic({channels, grid, grid});
    parpde::util::Rng rng(100 + static_cast<std::uint64_t>(s));
    rng.fill_uniform(ic.values(), 0.5f, 1.5f);
    out.push_back(std::move(ic));
  }
  return out;
}

// One server run: `sessions` client threads, each following its own seeded
// Poisson arrival schedule (mean gap `gap_ms`; 0 = closed loop). Latency per
// request = completion wall time minus the scheduled arrival time.
RunStats run_server(nn::Sequential& model, const parpde::backend::KernelBackend*
                        bk,
                    const std::vector<float>& calibration,
                    const std::vector<Tensor>& initials, int sessions,
                    int steps, int warmup, bool coalesce, int max_batch,
                    double window_ms, int queue_depth, double gap_ms) {
  const std::int64_t channels = initials[0].shape()[0];
  const std::int64_t grid = initials[0].shape()[1];
  serve::ServerOptions opt;
  opt.backend = bk;
  opt.max_batch = max_batch;
  opt.queue_depth = queue_depth;
  opt.max_sessions = sessions;
  opt.coalesce = coalesce;
  opt.coalesce_window_ms = window_ms;
  serve::SurrogateServer server(model, channels, grid, grid, opt);
  if (server.needs_calibration()) {
    server.set_calibration(calibration);
  }
  std::vector<std::int64_t> ids(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    ids[static_cast<std::size_t>(s)] =
        server.open_session(initials[static_cast<std::size_t>(s)].data());
  }

  // Warmup outside the measured window (first-touch, branch warm).
  {
    std::vector<std::thread> clients;
    for (int s = 0; s < sessions; ++s) {
      clients.emplace_back([&, s] {
        for (int t = 0; t < warmup; ++t) {
          (void)server.step(ids[static_cast<std::size_t>(s)]);
        }
      });
    }
    for (auto& c : clients) c.join();
  }

  std::vector<std::vector<double>> lat(static_cast<std::size_t>(sessions));
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      auto& mine = lat[static_cast<std::size_t>(s)];
      mine.reserve(static_cast<std::size_t>(steps));
      std::mt19937_64 rng(9000 + static_cast<std::uint64_t>(s));
      std::exponential_distribution<double> gap(1.0);
      double scheduled_s = 0.0;  // arrival schedule, relative to t0
      for (int t = 0; t < steps; ++t) {
        if (gap_ms > 0.0) {
          scheduled_s += gap(rng) * gap_ms * 1e-3;
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(scheduled_s)));
        }
        const serve::StepResult r =
            server.step(ids[static_cast<std::size_t>(s)]);
        const double done_s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (r.ok()) {
          mine.push_back(gap_ms > 0.0 ? done_s - scheduled_s
                                      : r.latency_seconds);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunStats out;
  std::vector<double> all;
  for (const auto& mine : lat) all.insert(all.end(), mine.begin(), mine.end());
  out.latency = parpde::bench::summarize_latencies(all);
  out.throughput_rps = static_cast<double>(all.size()) / wall;
  const serve::ServerStats stats = server.stats();
  // Subtract the warmup phase so the JSON counts only measured requests.
  out.requests = stats.requests -
                 static_cast<std::uint64_t>(sessions) *
                     static_cast<std::uint64_t>(warmup);
  out.rejected = stats.rejected;
  out.occupancy = stats.occupancy;
  out.mean_batch = stats.batches > 0
                       ? static_cast<double>(stats.requests) /
                             static_cast<double>(stats.batches)
                       : 0.0;
  out.growth_events = server.growth_events();
  return out;
}

// Plan-level amortization ceiling: per-sample time of max_batch solo run()
// calls over one run_batched(max_batch) call, medians over `reps` rounds.
double batch_amortization(nn::Sequential& model, const parpde::backend::
                              KernelBackend* bk,
                          const std::vector<float>& calibration,
                          const std::vector<Tensor>& initials, int max_batch,
                          std::int64_t channels, std::int64_t grid, int reps) {
  nn::ForwardPlan plan(model, channels, grid, grid, bk, max_batch);
  if (plan.needs_calibration()) plan.set_calibration(calibration);
  const std::int64_t frame = channels * grid * grid;
  parpde::util::AlignedVector<float> stacked(
      static_cast<std::size_t>(max_batch * frame));
  for (int s = 0; s < max_batch; ++s) {
    std::memcpy(stacked.data() + s * frame,
                initials[static_cast<std::size_t>(s % initials.size())].data(),
                static_cast<std::size_t>(frame) * sizeof(float));
  }
  std::vector<double> solo_s, batch_s;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point t0 = Clock::now();
    for (int s = 0; s < max_batch; ++s) {
      (void)plan.run(stacked.data() + s * frame, grid, grid);
    }
    Clock::time_point t1 = Clock::now();
    (void)plan.run_batched(stacked.data(), max_batch, grid, grid);
    Clock::time_point t2 = Clock::now();
    solo_s.push_back(std::chrono::duration<double>(t1 - t0).count());
    batch_s.push_back(std::chrono::duration<double>(t2 - t1).count());
  }
  return parpde::bench::percentile(solo_s, 0.5) /
         parpde::bench::percentile(batch_s, 0.5);
}

// Determinism spot check at bench scale: every session's coalesced trajectory
// must replay byte-identically through the solo plan (the full randomized
// matrix lives in tests/test_serve.cpp).
bool coalesced_bit_identical(nn::Sequential& model, const parpde::backend::
                                 KernelBackend* bk,
                             const std::vector<float>& calibration,
                             const std::vector<Tensor>& initials, int sessions,
                             int steps, std::int64_t channels,
                             std::int64_t grid) {
  const std::int64_t frame = channels * grid * grid;
  nn::ForwardPlan solo(model, channels, grid, grid, bk, 1);
  if (solo.needs_calibration()) solo.set_calibration(calibration);

  serve::ServerOptions opt;
  opt.backend = bk;
  opt.max_batch = sessions;
  opt.coalesce = true;
  opt.coalesce_window_ms = 0.2;
  serve::SurrogateServer server(model, channels, grid, grid, opt);
  if (server.needs_calibration()) server.set_calibration(calibration);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    ids[static_cast<std::size_t>(s)] =
        server.open_session(initials[static_cast<std::size_t>(s)].data());
  }
  std::vector<std::thread> clients;
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      for (int t = 0; t < steps; ++t) {
        (void)server.step(ids[static_cast<std::size_t>(s)]);
      }
    });
  }
  for (auto& c : clients) c.join();

  bool identical = true;
  std::vector<float> ref(static_cast<std::size_t>(frame));
  for (int s = 0; s < sessions; ++s) {
    std::memcpy(ref.data(), initials[static_cast<std::size_t>(s)].data(),
                static_cast<std::size_t>(frame) * sizeof(float));
    for (int t = 0; t < steps; ++t) {
      const nn::ForwardPlan::Output o = solo.run(ref.data(), grid, grid);
      std::memcpy(ref.data(), o.data,
                  static_cast<std::size_t>(frame) * sizeof(float));
    }
    if (std::memcmp(ref.data(), server.frame(ids[static_cast<std::size_t>(s)]),
                    static_cast<std::size_t>(frame) * sizeof(float)) != 0) {
      identical = false;
    }
  }
  return identical;
}

std::string occupancy_json(const std::vector<std::uint64_t>& occ) {
  std::string out = "[";
  for (std::size_t i = 0; i < occ.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(occ[i]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const parpde::util::Options opts(argc, argv);
  const auto grid = static_cast<std::int64_t>(opts.get_int("grid", 64));
  const int steps = opts.get_int("steps", 24);
  const int warmup = opts.get_int("warmup", 3);
  const int max_batch = opts.get_int("max-batch", 8);
  const double window_ms = opts.get_double("window-ms", 0.0);
  const int queue_depth = opts.get_int("queue-depth", 64);
  const double gap_flag_ms = opts.get_double("gap-ms", 0.0);
  const int threads = opts.get_int("threads", 1);
  const std::string out_path = opts.get_string("out", "BENCH_serving.json");
  parpde::util::ThreadPool::configure_global(threads);

  core::TrainConfig cfg;
  cfg.border = core::BorderMode::kZeroPad;  // same-geometry net: serving mode
  const auto model = damped_model(cfg);
  const std::int64_t channels = cfg.network.channels.front();
  const std::vector<int> sweep = {1, 2, 4, 8};
  const int max_sessions = sweep.back();
  const auto initials = session_initials(max_sessions, channels, grid);

  // One backend-independent calibration shared by every plan and server in
  // the run (fp32 ignores it; int8 must see identical scales everywhere).
  std::vector<float> calibration;
  {
    nn::ForwardPlan probe(*model, channels, grid, grid,
                          &parpde::backend::quantized_int8(), 1);
    probe.calibrate(initials[0].data(), grid, grid);
    calibration = probe.calibration();
  }

  struct BackendReport {
    std::string name;
    double solo_step_ms = 0.0;
    double amortization = 0.0;
    bool bit_identical = false;
    std::uint64_t growth_events = 0;
    std::vector<int> conc;
    std::vector<RunStats> serial, coalesced;
  };
  std::vector<BackendReport> reports;

  for (const char* name : {"fp32", "int8"}) {
    const parpde::backend::KernelBackend* bk = parpde::backend::by_name(name);
    BackendReport rep;
    rep.name = name;

    std::fprintf(stderr, "[%s] plan amortization probe...\n", name);
    rep.amortization = batch_amortization(*model, bk, calibration, initials,
                                          max_batch, channels, grid, 12);
    std::fprintf(stderr, "[%s] determinism spot check...\n", name);
    rep.bit_identical = coalesced_bit_identical(
        *model, bk, calibration, initials, 4, 6, channels, grid);

    // Solo step time calibrates the Poisson arrival gap: mean gap == service
    // time, so concurrency C offers ~C times one core's service rate.
    {
      nn::ForwardPlan plan(*model, channels, grid, grid, bk, 1);
      if (plan.needs_calibration()) plan.set_calibration(calibration);
      std::vector<double> xs;
      for (int r = 0; r < 12; ++r) {
        const Clock::time_point t0 = Clock::now();
        (void)plan.run(initials[0].data(), grid, grid);
        xs.push_back(
            std::chrono::duration<double>(Clock::now() - t0).count());
      }
      rep.solo_step_ms = parpde::bench::percentile(xs, 0.5) * 1e3;
    }
    const double gap_ms =
        gap_flag_ms > 0.0 ? gap_flag_ms : rep.solo_step_ms;

    for (const int conc : sweep) {
      std::fprintf(stderr, "[%s] concurrency %d (gap %.2f ms)...\n", name,
                   conc, gap_ms);
      RunStats serial =
          run_server(*model, bk, calibration, initials, conc, steps, warmup,
                     /*coalesce=*/false, max_batch, window_ms, queue_depth,
                     gap_ms);
      RunStats coal =
          run_server(*model, bk, calibration, initials, conc, steps, warmup,
                     /*coalesce=*/true, max_batch, window_ms, queue_depth,
                     gap_ms);
      rep.growth_events += serial.growth_events + coal.growth_events;
      rep.conc.push_back(conc);
      rep.serial.push_back(std::move(serial));
      rep.coalesced.push_back(std::move(coal));
    }
    reports.push_back(std::move(rep));
  }

  auto emit = [&](std::FILE* f) {
    std::fprintf(f,
                 "{\n"
                 "  \"grid\": %lld,\n"
                 "  \"steps\": %d,\n"
                 "  \"warmup\": %d,\n"
                 "  \"threads\": %d,\n"
                 "  \"max_batch\": %d,\n"
                 "  \"window_ms\": %.3f,\n"
                 "  \"queue_depth\": %d,\n"
                 "  \"backends\": [\n",
                 static_cast<long long>(grid), steps, warmup, threads,
                 max_batch, window_ms, queue_depth);
    for (std::size_t b = 0; b < reports.size(); ++b) {
      const BackendReport& rep = reports[b];
      std::fprintf(f,
                   "    {\n"
                   "      \"backend\": \"%s\",\n"
                   "      \"solo_step_ms\": %.4f,\n"
                   "      \"batch_amortization\": %.4f,\n"
                   "      \"bit_identical\": %s,\n"
                   "      \"growth_events\": %llu,\n"
                   "      \"sweep\": [\n",
                   rep.name.c_str(), rep.solo_step_ms, rep.amortization,
                   rep.bit_identical ? "true" : "false",
                   static_cast<unsigned long long>(rep.growth_events));
      for (std::size_t i = 0; i < rep.conc.size(); ++i) {
        const RunStats& s = rep.serial[i];
        const RunStats& c = rep.coalesced[i];
        std::fprintf(
            f,
            "        {\"concurrency\": %d,\n"
            "         \"serial\": {\"throughput_rps\": %.2f, \"p50_ms\": "
            "%.4f, \"p99_ms\": %.4f, \"requests\": %llu, \"rejected\": "
            "%llu},\n"
            "         \"coalesced\": {\"throughput_rps\": %.2f, \"p50_ms\": "
            "%.4f, \"p99_ms\": %.4f, \"requests\": %llu, \"rejected\": "
            "%llu,\n"
            "                       \"mean_batch\": %.3f, \"occupancy\": "
            "%s},\n"
            "         \"speedup\": %.4f}%s\n",
            rep.conc[i], s.throughput_rps, s.latency.p50 * 1e3,
            s.latency.p99 * 1e3, static_cast<unsigned long long>(s.requests),
            static_cast<unsigned long long>(s.rejected), c.throughput_rps,
            c.latency.p50 * 1e3, c.latency.p99 * 1e3,
            static_cast<unsigned long long>(c.requests),
            static_cast<unsigned long long>(c.rejected), c.mean_batch,
            occupancy_json(c.occupancy).c_str(),
            c.throughput_rps / s.throughput_rps,
            i + 1 < rep.conc.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n    }%s\n",
                   b + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
  };
  emit(stdout);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    emit(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }

  for (const BackendReport& rep : reports) {
    const RunStats& c8 = rep.coalesced.back();
    const RunStats& s8 = rep.serial.back();
    std::fprintf(stderr,
                 "[%s] amortization %.2fx | conc=8 coalesced %.1f req/s vs "
                 "serial %.1f req/s (%.2fx) | mean batch %.2f | identical %s\n",
                 rep.name.c_str(), rep.amortization, c8.throughput_rps,
                 s8.throughput_rps, c8.throughput_rps / s8.throughput_rps,
                 c8.mean_batch, rep.bit_identical ? "yes" : "NO");
    if (!rep.bit_identical) return 1;
  }
  return 0;
}
