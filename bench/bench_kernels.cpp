// Kernel microbenchmark seeding the BENCH trajectory: GFLOP/s of the blocked
// GEMM against the naive reference on the Table I conv shapes, plus the
// samples/sec of a full Table-I training step. Emits a single JSON object on
// stdout so runs can be archived and diffed.
//
//   bench_kernels [--threads N] [--grid G] [--batch B] [--full]
//
// --threads sets the intra-rank pool size (1 = fully inline). The paper's
// full-scale shapes (grid 256) are selected with --full / PARPDE_FULL=1.

#include <cstdio>
#include <string>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/config.hpp"
#include "core/trainer.hpp"
#include "tensor/gemm.hpp"
#include "util/options.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using parpde::util::WallTimer;

std::vector<float> random_vec(std::int64_t n, parpde::util::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  rng.fill_uniform(v, -1.0f, 1.0f);
  return v;
}

// Runs `fn` repeatedly until ~0.2 s has elapsed; returns seconds per call.
template <typename Fn>
double time_call(Fn&& fn) {
  fn();  // warm-up (first call may fault in workspaces)
  WallTimer timer;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (timer.seconds() < 0.2);
  return timer.seconds() / reps;
}

struct GemmCase {
  std::string name;
  std::int64_t m, k, n;
};

}  // namespace

int main(int argc, char** argv) {
  const parpde::util::Options opts(argc, argv);
  const bool full =
      parpde::util::env_flag("PARPDE_FULL") || opts.get_bool("full", false);
  const int grid = opts.get_int("grid", full ? 256 : 64);
  const int batch = opts.get_int("batch", 16);
  const int threads = opts.get_int("threads", 1);
  parpde::util::ThreadPool::configure_global(threads - 1);

  // Table I: conv layers 4 -> 6 -> 16 -> 6 -> 4, 5x5 kernels, same padding.
  // Forward GEMM per layer: [Cout x Cin*25] * [Cin*25 x batch*grid^2].
  const std::int64_t plane = static_cast<std::int64_t>(grid) * grid * batch;
  const std::vector<std::int64_t> channels = {4, 6, 16, 6, 4};
  std::vector<GemmCase> cases;
  for (std::size_t l = 0; l + 1 < channels.size(); ++l) {
    cases.push_back({"layer" + std::to_string(l + 1) + "_fwd",
                     channels[l + 1], channels[l] * 25, plane});
  }
  // Backward shapes of the widest layer: data (A^T) and weights (B^T).
  cases.push_back({"layer2_bwd_data", channels[1] * 25, channels[2], plane});
  cases.push_back({"layer2_bwd_weights", channels[2], plane, channels[1] * 25});

  parpde::util::Rng rng(20260805);
  std::printf("{\n  \"threads\": %d,\n  \"grid\": %d,\n  \"batch\": %d,\n",
              threads, grid, batch);
  std::printf("  \"gemm\": [\n");
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& gc = cases[ci];
    const auto a = random_vec(gc.m * gc.k, rng);
    const auto b = random_vec(gc.k * gc.n, rng);
    std::vector<float> c(static_cast<std::size_t>(gc.m * gc.n));
    const double flops = 2.0 * static_cast<double>(gc.m) *
                         static_cast<double>(gc.k) * static_cast<double>(gc.n);

    double naive_s = 0.0, blocked_s = 0.0;
    if (gc.name == "layer2_bwd_data") {
      // A stored [k x m]: same buffer sizes, strided reads.
      naive_s = time_call([&] {
        parpde::gemm_naive_at(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n);
      });
      blocked_s = time_call([&] {
        parpde::gemm_at(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n);
      });
    } else if (gc.name == "layer2_bwd_weights") {
      naive_s = time_call([&] {
        parpde::gemm_naive_bt_acc(a.data(), b.data(), c.data(), gc.m, gc.k,
                                  gc.n);
      });
      blocked_s = time_call([&] {
        parpde::gemm_bt_acc(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n);
      });
    } else {
      naive_s = time_call([&] {
        parpde::gemm_naive(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n);
      });
      blocked_s = time_call([&] {
        parpde::gemm(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n);
      });
    }
    std::printf("    {\"name\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
                "\"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
                "\"speedup\": %.2f}%s\n",
                gc.name.c_str(), static_cast<long long>(gc.m),
                static_cast<long long>(gc.k), static_cast<long long>(gc.n),
                flops / naive_s * 1e-9, flops / blocked_s * 1e-9,
                naive_s / blocked_s, ci + 1 < cases.size() ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ],\n");

  // Per-backend fused inference conv on each Table-I layer: the single-sample
  // [Cin, grid+4, grid+4] valid conv the rollout's ForwardPlan runs (halo-pad
  // geometry), fp32 vs int8 through the KernelBackend conv_forward entry.
  {
    namespace backend = parpde::backend;
    const std::int64_t kernel = 5, h = grid + 4, w = grid + 4;
    const std::int64_t oh = h - kernel + 1, ow = w - kernel + 1;
    std::vector<backend::ConvLayerDesc> descs;
    std::vector<std::vector<float>> weights, biases;
    std::vector<float> ranges;
    for (std::size_t l = 0; l + 1 < channels.size(); ++l) {
      const std::int64_t cin = channels[l], cout = channels[l + 1];
      weights.push_back(random_vec(cout * cin * kernel * kernel, rng));
      biases.push_back(random_vec(cout, rng));
      backend::ConvLayerDesc d;
      d.weight = weights.back().data();
      d.bias = biases.back().data();
      d.in_channels = cin;
      d.out_channels = cout;
      d.kernel = kernel;
      d.pad = 0;
      d.fused = backend::Fused::kLeakyReLU;
      d.slope = 0.01f;
      descs.push_back(d);
      ranges.push_back(1.0f);  // inputs are drawn uniform in [-1, 1]
    }
    const backend::KernelBackend& fp32 = backend::blocked_f32();
    const backend::KernelBackend& int8 = backend::quantized_int8();
    auto fp32_ctx = fp32.make_plan_context(descs, h, w);
    auto int8_ctx = int8.make_plan_context(descs, h, w);
    int8.set_input_ranges(*int8_ctx, ranges);

    std::printf("  \"conv_backends\": [\n");
    for (std::size_t l = 0; l < descs.size(); ++l) {
      const auto& d = descs[l];
      const auto x = random_vec(d.in_channels * h * w, rng);
      std::vector<float> y(static_cast<std::size_t>(d.out_channels * oh * ow));
      const double flops = 2.0 * static_cast<double>(d.out_channels) *
                           static_cast<double>(d.in_channels) * kernel *
                           kernel * static_cast<double>(oh) * ow;
      const double fp32_s = time_call([&] {
        fp32.conv_forward(*fp32_ctx, static_cast<int>(l), x.data(), h, w,
                          y.data());
      });
      const double int8_s = time_call([&] {
        int8.conv_forward(*int8_ctx, static_cast<int>(l), x.data(), h, w,
                          y.data());
      });
      std::printf(
          "    {\"name\": \"layer%zu_conv\", \"cin\": %lld, \"cout\": %lld, "
          "\"hw\": %lld, \"fp32_gflops\": %.3f, \"int8_gflops\": %.3f, "
          "\"int8_speedup\": %.2f}%s\n",
          l + 1, static_cast<long long>(d.in_channels),
          static_cast<long long>(d.out_channels), static_cast<long long>(oh),
          flops / fp32_s * 1e-9, flops / int8_s * 1e-9, fp32_s / int8_s,
          l + 1 < descs.size() ? "," : "");
      std::fflush(stdout);
    }
    std::printf("  ],\n");
  }

  // Full Table-I training step (forward + backward + ADAM) on random data.
  {
    parpde::core::TrainConfig cfg;  // Table I network
    cfg.border = parpde::core::BorderMode::kZeroPad;
    cfg.num_threads = threads;
    parpde::core::NetworkTrainer trainer(cfg, /*seed_stream=*/0);
    parpde::Tensor inputs({batch, channels.front(), grid, grid});
    parpde::Tensor targets({batch, channels.back(), grid, grid});
    rng.fill_uniform(inputs.values(), 0.1f, 1.0f);
    rng.fill_uniform(targets.values(), 0.1f, 1.0f);
    const double step_s =
        time_call([&] { trainer.train_batch(inputs, targets); });
    std::printf("  \"train_step\": {\"grid\": %d, \"batch\": %d, "
                "\"ms_per_step\": %.3f, \"samples_per_sec\": %.1f}\n",
                grid, batch, step_s * 1e3, batch / step_s);
  }
  std::printf("}\n");
  return 0;
}
