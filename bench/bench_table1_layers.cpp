// Table I reproduction: cost of each CNN layer of the per-subdomain network
// (channels 4 -> 6 -> 16 -> 6 -> 4, 5x5 kernels) plus the assembled network,
// forward and forward+backward, at the paper's subdomain sizes.
//
// google-benchmark binary; run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "core/config.hpp"
#include "core/model.hpp"
#include "nn/conv2d.hpp"
#include "util/random.hpp"

namespace {

using namespace parpde;

// Table I rows: {in_channels, out_channels}.
constexpr std::pair<int, int> kTable1Layers[] = {
    {4, 6}, {6, 16}, {16, 6}, {6, 4}};

void BM_Table1LayerForward(benchmark::State& state) {
  const auto [cin, cout] = kTable1Layers[state.range(0)];
  const auto n = state.range(1);
  nn::Conv2d conv(cin, cout, 5);
  util::Rng rng(1);
  conv.init(rng);
  Tensor x({1, cin, n, n});
  rng.fill_uniform(x.values(), -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.counters["pixels/s"] = benchmark::Counter(
      static_cast<double>(n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel("conv " + std::to_string(cin) + "->" + std::to_string(cout) +
                 " @" + std::to_string(n) + "^2");
}

void BM_Table1LayerForwardBackward(benchmark::State& state) {
  const auto [cin, cout] = kTable1Layers[state.range(0)];
  const auto n = state.range(1);
  nn::Conv2d conv(cin, cout, 5);
  util::Rng rng(2);
  conv.init(rng);
  Tensor x({1, cin, n, n});
  rng.fill_uniform(x.values(), -1.0f, 1.0f);
  Tensor g({1, cout, n, n});
  rng.fill_uniform(g.values(), -1.0f, 1.0f);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.forward(x));
    benchmark::DoNotOptimize(conv.backward(g));
  }
}

void BM_Table1NetworkForward(benchmark::State& state) {
  const auto n = state.range(0);
  const core::NetworkConfig net;  // Table I
  util::Rng rng(3);
  auto model = core::build_model(net, core::BorderMode::kZeroPad, rng);
  Tensor x({1, 4, n, n});
  rng.fill_uniform(x.values(), -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
  state.counters["pixels/s"] = benchmark::Counter(
      static_cast<double>(n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Table1NetworkTrainStep(benchmark::State& state) {
  const auto n = state.range(0);
  const core::NetworkConfig net;
  util::Rng rng(4);
  auto model = core::build_model(net, core::BorderMode::kZeroPad, rng);
  Tensor x({1, 4, n, n});
  rng.fill_uniform(x.values(), -1.0f, 1.0f);
  Tensor g({1, 4, n, n});
  rng.fill_uniform(g.values(), -1.0f, 1.0f);
  for (auto _ : state) {
    model->zero_grad();
    benchmark::DoNotOptimize(model->forward(x));
    benchmark::DoNotOptimize(model->backward(g));
  }
}

}  // namespace

// Layer index x subdomain size. 32 is the 64-rank subdomain of the paper's
// 256^2 grid; 128 is the 4-rank subdomain.
BENCHMARK(BM_Table1LayerForward)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table1LayerForwardBackward)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table1NetworkForward)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Table1NetworkTrainStep)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
