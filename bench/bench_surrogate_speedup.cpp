// Intro claim, measured: "classical models frequently suffer from very
// costly solution processes. A data-driven modeling approach has the
// capability of resolving such issues." This bench compares the cost of
// advancing the physical state by one recorded-frame interval with
//   (a) the classical domain-decomposed RK4 solver (K solver steps with 4
//       ghost exchanges each), and
//   (b) the trained CNN surrogate (one forward pass + 1 halo exchange),
// as a function of K = solver steps per frame. The surrogate's cost is
// K-independent, the solver's grows linearly — the crossover is the paper's
// economic argument.
//
// Flags: --grid --ranks; PARPDE_FULL=1 for the 256^2 grid.

#include <cstdio>

#include "common.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "domain/exchange.hpp"
#include "domain/halo.hpp"
#include "euler/parallel_solver.hpp"
#include "minimpi/environment.hpp"
#include "util/timer.hpp"

using namespace parpde;
using namespace parpde::core;

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  const int ranks = opts.get_int("ranks", 4);
  const int repeats = opts.get_int("repeats", 5);
  bench::print_setup("Intro claim: classical solver vs CNN surrogate", setup);
  std::printf("ranks: %d\n", ranks);

  euler::EulerConfig pde;
  pde.n = setup.grid;
  const mpi::Dims dims = mpi::dims_create(ranks);
  const domain::Partition part(pde.n, pde.n, dims.px, dims.py);
  const TrainConfig config = bench::make_train_config(setup);
  const std::int64_t halo = config.network.receptive_halo();

  // Untrained weights are fine: the cost of a forward pass does not depend on
  // the weight values.
  util::Rng rng(config.seed);
  auto model = build_model(config.network, BorderMode::kHaloPad, rng);

  // --- measure one surrogate step (per rank, isolated) ---------------------
  double surrogate_step = 0.0;
  double surrogate_comm = 0.0;
  {
    std::vector<double> compute(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> comm_s(static_cast<std::size_t>(ranks), 0.0);
    Tensor frame({4, pde.n, pde.n});
    util::Rng fr(1);
    fr.fill_uniform(frame.values(), 0.5f, 1.5f);
    mpi::Environment env(ranks);
    env.run([&](mpi::Communicator& comm) {
      mpi::CartComm cart(comm, dims.px, dims.py);
      util::Rng lrng(config.seed);
      auto local_model = build_model(config.network, BorderMode::kHaloPad, lrng);
      Tensor interior =
          domain::extract_interior(frame, part.block(cart.cx(), cart.cy()));
      util::AccumulatingTimer comm_timer;
      util::WallTimer wall;
      for (int r = 0; r < repeats; ++r) {
        Tensor input =
            domain::exchange_halo(cart, part, interior, halo, &comm_timer);
        input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
        Tensor out = local_model->forward(input);
      }
      compute[static_cast<std::size_t>(comm.rank())] =
          (wall.seconds() - comm_timer.seconds()) / repeats;
      comm_s[static_cast<std::size_t>(comm.rank())] =
          comm_timer.seconds() / repeats;
    });
    for (int r = 0; r < ranks; ++r) {
      surrogate_step = std::max(surrogate_step, compute[static_cast<std::size_t>(r)]);
      surrogate_comm = std::max(surrogate_comm, comm_s[static_cast<std::size_t>(r)]);
    }
  }

  // --- measure one classical solver step (per rank) ------------------------
  double solver_step = 0.0;
  double solver_comm = 0.0;
  {
    std::vector<double> wall_s(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> comm_s(static_cast<std::size_t>(ranks), 0.0);
    mpi::Environment env(ranks);
    env.run([&](mpi::Communicator& comm) {
      mpi::CartComm cart(comm, dims.px, dims.py);
      euler::ParallelEulerSolver solver(cart, part, pde);
      solver.initialize();
      util::WallTimer wall;
      for (int r = 0; r < repeats; ++r) solver.step(pde.dt());
      wall_s[static_cast<std::size_t>(comm.rank())] = wall.seconds() / repeats;
      comm_s[static_cast<std::size_t>(comm.rank())] =
          solver.comm_seconds() / repeats;
    });
    for (int r = 0; r < ranks; ++r) {
      solver_step = std::max(solver_step, wall_s[static_cast<std::size_t>(r)]);
      solver_comm = std::max(solver_comm, comm_s[static_cast<std::size_t>(r)]);
    }
  }

  std::printf("\nper-step costs (max over %d ranks, %dx%d grid):\n", ranks,
              setup.grid, setup.grid);
  std::printf("  CNN surrogate : %.3f ms compute + %.3f ms halo exchange\n",
              surrogate_step * 1e3, surrogate_comm * 1e3);
  std::printf("  RK4 solver    : %.3f ms per step (incl. %.3f ms ghost "
              "exchange)\n\n",
              solver_step * 1e3, solver_comm * 1e3);

  util::Table table({"solver steps per frame K", "solver time [ms]",
                     "surrogate time [ms]", "surrogate speedup"});
  const double surrogate_total = (surrogate_step + surrogate_comm) * 1e3;
  for (const int k : {1, 4, 16, 64, 256}) {
    const double solver_total = solver_step * 1e3 * k;
    table.add_row({std::to_string(k), util::Table::fmt(solver_total, 3),
                   util::Table::fmt(surrogate_total, 3),
                   util::Table::fmt(solver_total / surrogate_total, 2)});
  }
  table.print("time to advance one recorded-frame interval:");
  std::printf("\nThe surrogate replaces K solver steps with one forward pass; "
              "its advantage\ngrows linearly in K (and in solver stiffness), "
              "which is the paper's motivation.\n");
  return 0;
}
