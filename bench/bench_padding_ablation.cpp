// Sec. III ablation: the three implemented border strategies for the conv
// dimension mismatch at subdomain boundaries — zero padding, halo (overlap)
// padding with neighbour data, and valid-inner comparison. The paper uses
// approaches 1 and 2 and rejects 3 for production ("data at subdomain
// interfaces are missing"); this bench quantifies the accuracy differences.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/inference.hpp"
#include "domain/halo.hpp"
#include "core/metrics.hpp"
#include "core/parallel_trainer.hpp"
#include "util/stats.hpp"

using namespace parpde;
using namespace parpde::core;

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  // Valid-inner needs blocks larger than twice the receptive halo (16 for the
  // Table I network), so the default grid is 40 (2x2 ranks -> 20^2 blocks).
  // Border effects are second-order; they only become visible once the
  // networks are trained well, hence the higher epoch default.
  if (!opts.has("grid") && !setup.full_scale) setup.grid = 40;
  if (!opts.has("epochs") && !setup.full_scale) setup.epochs = 60;
  // The comparison is about border geometry, not loss weighting: MSE trains
  // the pressure channel fastest, which is where the seam signal lives.
  if (!opts.has("loss")) setup.loss = "mse";
  const int ranks = opts.get_int("ranks", 4);
  bench::print_setup("Sec. III ablation: border strategies", setup);
  std::printf("ranks: %d\n", ranks);

  const auto dataset = bench::generate_dataset(setup);
  const auto split = dataset.chronological_split(setup.train_fraction);

  util::Table table({"border mode", "pressure rel-L2 (interior)",
                     "pressure rel-L2 (seams)", "final train loss",
                     "rollout capable"});

  for (const auto mode : {BorderMode::kZeroPad, BorderMode::kHaloPad,
                          BorderMode::kValidInner, BorderMode::kDeconv}) {
    TrainConfig config = bench::make_train_config(setup);
    config.border = mode;

    const std::int64_t shrink = 2 * config.network.receptive_halo();
    const mpi::Dims dims = mpi::dims_create(ranks);
    if (mode == BorderMode::kValidInner &&
        (dataset.height() / dims.py <= shrink ||
         dataset.width() / dims.px <= shrink)) {
      table.add_row({border_mode_name(mode), "n/a (blocks too small)", "n/a",
                     "n/a", "no"});
      continue;
    }

    const ParallelTrainer trainer(config, ranks);
    const auto report = trainer.train(dataset, ExecutionMode::kIsolated);

    // Validation error. Valid-inner mode predicts only the inner block, so
    // score all modes on the same inner region (fair) and, for the two
    // full-output modes, also on a seam band around the subdomain interfaces.
    const std::int64_t halo = config.network.receptive_halo();
    util::RunningStat inner_err, seam_err;
    const domain::Partition part(dataset.height(), dataset.width(),
                                 report.dims.px, report.dims.py);

    if (mode == BorderMode::kValidInner) {
      // Assemble inner-block predictions only.
      std::vector<std::unique_ptr<nn::Sequential>> models;
      for (const auto& outcome : report.rank_outcomes) {
        util::Rng rng(config.seed);
        auto model = build_model(config.network, config.border, rng);
        import_parameters(*model, outcome.parameters);
        models.push_back(std::move(model));
      }
      for (const auto pair : split.val) {
        for (int r = 0; r < report.ranks; ++r) {
          const auto block = part.block_of_rank(r);
          Tensor input = domain::extract_interior(dataset.frame(pair), block);
          input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
          Tensor out = models[static_cast<std::size_t>(r)]->forward(input);
          out.reshape({out.dim(1), out.dim(2), out.dim(3)});
          domain::BlockRange inner = block;
          inner.h0 += halo;
          inner.h1 -= halo;
          inner.w0 += halo;
          inner.w1 -= halo;
          const Tensor target =
              domain::extract_interior(dataset.frame(pair + 1), inner);
          inner_err.add(
              channel_metrics(out, target)[euler::kPressure].rel_l2);
        }
      }
      table.add_row({border_mode_name(mode),
                     util::Table::fmt_sci(inner_err.mean()), "n/a (no seam output)",
                     util::Table::fmt_sci(report.mean_final_loss()), "no"});
      continue;
    }

    const SubdomainEnsemble ensemble(config, report, dataset.height(),
                                     dataset.width());
    for (const auto pair : split.val) {
      const Tensor pred = ensemble.predict(dataset.frame(pair));
      const Tensor& target = dataset.frame(pair + 1);
      // Seam band: within `halo` lines of an interior subdomain interface.
      // Scored on the pressure channel only — the channel the networks learn
      // best, so border artifacts are not drowned by the harder velocity
      // channels.
      double seam_sq = 0.0, seam_t = 0.0, in_sq = 0.0, in_t = 0.0;
      for (std::int64_t c = euler::kPressure; c <= euler::kPressure; ++c) {
        for (std::int64_t y = 0; y < pred.dim(1); ++y) {
          for (std::int64_t x = 0; x < pred.dim(2); ++x) {
            bool near_seam = false;
            for (int bx = 1; bx < report.dims.px && !near_seam; ++bx) {
              const auto edge = part.block(bx, 0).w0;
              near_seam = std::abs(x - edge) < halo;
            }
            for (int by = 1; by < report.dims.py && !near_seam; ++by) {
              const auto edge = part.block(0, by).h0;
              near_seam = std::abs(y - edge) < halo;
            }
            const double d = pred.at(c, y, x) - target.at(c, y, x);
            const double t = target.at(c, y, x);
            if (near_seam) {
              seam_sq += d * d;
              seam_t += t * t;
            } else {
              in_sq += d * d;
              in_t += t * t;
            }
          }
        }
      }
      if (seam_t > 0) seam_err.add(std::sqrt(seam_sq / seam_t));
      if (in_t > 0) inner_err.add(std::sqrt(in_sq / in_t));
    }
    table.add_row({border_mode_name(mode), util::Table::fmt_sci(inner_err.mean()),
                   util::Table::fmt_sci(seam_err.mean()),
                   util::Table::fmt_sci(report.mean_final_loss()), "yes"});
  }

  table.print("\nSec. III | border-strategy ablation (" +
              std::to_string(ranks) + " ranks):");
  std::printf("\nExpectation: halo-pad ~= zero-pad in the interior, but "
              "halo-pad wins on the seam band\n(real neighbour data instead "
              "of zeros at internal borders).\n");
  return 0;
}
