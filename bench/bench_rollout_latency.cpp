// Rollout engine microbenchmark (ISSUE 5): per-step latency of the overlapped
// halo/compute pipeline against the serialized reference loop on the Table-I
// network, for 2x2 and 4x4 partitions. Reports p50/p99 step latency, the
// overlap efficiency (halo time hidden by interior compute / serialized halo
// time), the steady-state allocation count, and the per-step speedup. Emits a
// single JSON object on stdout and writes it to BENCH_rollout.json (progress
// lines go to stderr so stdout stays machine-parseable).
//
//   bench_rollout_latency [--grid G] [--steps N] [--warmup N] [--threads N]
//                         [--record-every K] [--backend fp32|int8]
//                         [--out FILE] [--quant-out FILE] [--full]
//
// Defaults are laptop-scale (grid 128); --full / PARPDE_FULL=1 selects the
// paper's 256 x 256 grid. The engine comparison target is >= 1.3x per-step
// throughput on the 4-rank 256 x 256 halo-pad rollout; --backend selects the
// execution provider it runs on (entries are tagged, so fp32 and int8
// BENCH_rollout.json archives can sit side by side). A second section races
// the int8 backend against fp32 on the 4-rank overlapped rollout and writes
// BENCH_quant.json (per-step speedup — target >= 2x — plus the worst
// relative L2 divergence against the quantization error budget).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "core/config.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "latency_stats.hpp"
#include "util/options.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace {

using parpde::Tensor;
using parpde::bench::percentile;
namespace core = parpde::core;

struct EngineStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double comm_seconds = 0.0;
  double compute_seconds = 0.0;
  double overlap_seconds = 0.0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t steady_state_allocs = 0;
};

EngineStats summarize(const core::RolloutResult& r, int warmup) {
  EngineStats s;
  std::vector<double> steady;
  for (std::size_t i = static_cast<std::size_t>(warmup); i < r.step_seconds.size();
       ++i) {
    steady.push_back(r.step_seconds[i]);
  }
  double sum = 0.0;
  for (const double v : steady) sum += v;
  s.p50_ms = percentile(steady, 0.50) * 1e3;
  s.p99_ms = percentile(steady, 0.99) * 1e3;
  s.mean_ms = steady.empty() ? 0.0 : sum / static_cast<double>(steady.size()) * 1e3;
  s.comm_seconds = r.comm_seconds;
  s.compute_seconds = r.compute_seconds;
  s.overlap_seconds = r.overlap_seconds;
  s.halo_bytes = r.halo_bytes;
  s.steady_state_allocs = r.steady_state_allocs;
  return s;
}

void print_engine_json(std::FILE* f, const char* name, const EngineStats& s) {
  std::fprintf(f,
               "    \"%s\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"mean_ms\": %.4f, \"comm_seconds\": %.4f, "
               "\"compute_seconds\": %.4f, \"overlap_seconds\": %.4f, "
               "\"halo_bytes\": %llu, \"steady_state_allocs\": %llu}",
               name, s.p50_ms, s.p99_ms, s.mean_ms, s.comm_seconds,
               s.compute_seconds, s.overlap_seconds,
               static_cast<unsigned long long>(s.halo_bytes),
               static_cast<unsigned long long>(s.steady_state_allocs));
}

// Relative L2 distance between two recorded frames.
double relative_l2(const Tensor& a, const Tensor& b) {
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace

int main(int argc, char** argv) {
  const parpde::util::Options opts(argc, argv);
  const bool full =
      parpde::util::env_flag("PARPDE_FULL") || opts.get_bool("full", false);
  const int grid = opts.get_int("grid", full ? 256 : 128);
  const int steps = opts.get_int("steps", full ? 40 : 24);
  const int warmup = opts.get_int("warmup", 3);
  const int threads = opts.get_int("threads", 1);
  const int record_every = opts.get_int("record-every", 0);
  const std::string backend_name = opts.get_string("backend", "fp32");
  const std::string out_path = opts.get_string("out", "BENCH_rollout.json");
  const std::string quant_path =
      opts.get_string("quant-out", "BENCH_quant.json");
  const parpde::backend::KernelBackend* bk =
      parpde::backend::by_name(backend_name);
  if (bk == nullptr) {
    std::fprintf(stderr, "unknown --backend=%s (fp32 or int8)\n",
                 backend_name.c_str());
    return 2;
  }
  parpde::util::ThreadPool::configure_global(threads - 1);

  core::TrainConfig cfg;  // Table I network
  cfg.border = core::BorderMode::kHaloPad;

  // Shared random weights on every rank: the bench measures latency, not
  // accuracy, and identical weights keep both engines numerically comparable.
  // Damped weights + bounded biases keep the autoregressive rollout on a
  // finite attractor (raw random weights explode within a few steps), so the
  // int8-vs-fp32 divergence number below reflects quantization error rather
  // than two different overflow trajectories.
  parpde::util::Rng weight_rng(cfg.seed);
  const auto model = core::build_model(cfg.network, cfg.border, weight_rng);
  auto params = core::export_parameters(*model);
  parpde::util::Rng bias_rng(1234);
  for (auto& t : params) {
    if (t.ndim() == 1) {
      bias_rng.fill_uniform(t.values(), -0.3f, 0.3f);
    } else {
      for (std::int64_t i = 0; i < t.size(); ++i) t[i] *= 0.5f;
    }
  }

  Tensor initial({cfg.network.channels.front(), grid, grid});
  parpde::util::Rng data_rng(1234);
  data_rng.fill_uniform(initial.values(), 0.5f, 1.5f);

  std::fprintf(stderr,
               "== bench_rollout_latency ==\n"
               "grid %dx%d | steps %d (+%d warmup) | threads %d | "
               "record_every %d | backend %s | Table-I halo %lld\n",
               grid, grid, steps, warmup, threads, record_every, bk->name(),
               static_cast<long long>(cfg.network.receptive_halo()));

  struct Row {
    int px, py;
    EngineStats serialized, overlapped;
    double speedup = 0.0;
    double overlap_efficiency = 0.0;
  };
  std::vector<Row> rows;

  for (const int side : {2, 4}) {
    const int ranks = side * side;
    core::ParallelTrainReport report;
    report.ranks = ranks;
    report.dims = parpde::mpi::dims_create(ranks);
    const parpde::domain::Partition part(grid, grid, report.dims.px,
                                         report.dims.py);
    report.rank_outcomes.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
      outcome.rank = r;
      outcome.block = part.block_of_rank(r);
      outcome.parameters = params;
    }

    Row row;
    row.px = report.dims.px;
    row.py = report.dims.py;
    const int total_steps = steps + warmup;

    core::RolloutOptions serialized;
    serialized.engine = core::RolloutEngine::kSerialized;
    serialized.record_every = record_every;
    serialized.backend = bk;
    std::fprintf(stderr, "%dx%d serialized...\n", row.px, row.py);
    row.serialized = summarize(
        core::parallel_rollout(cfg, report, initial, total_steps, serialized),
        warmup);

    core::RolloutOptions overlapped;
    overlapped.engine = core::RolloutEngine::kOverlapped;
    overlapped.record_every = record_every;
    overlapped.backend = bk;
    std::fprintf(stderr, "%dx%d overlapped...\n", row.px, row.py);
    row.overlapped = summarize(
        core::parallel_rollout(cfg, report, initial, total_steps, overlapped),
        warmup);

    row.speedup = row.overlapped.mean_ms > 0.0
                      ? row.serialized.mean_ms / row.overlapped.mean_ms
                      : 0.0;
    // Fraction of the serialized engine's halo time that the overlapped
    // engine removed from the critical path.
    row.overlap_efficiency =
        row.serialized.comm_seconds > 0.0
            ? std::max(0.0, row.serialized.comm_seconds -
                                row.overlapped.comm_seconds) /
                  row.serialized.comm_seconds
            : 0.0;
    std::fprintf(stderr,
                 "%dx%d: serialized p50 %.3f ms | overlapped p50 %.3f ms | "
                 "speedup %.2fx | overlap efficiency %.0f%% | steady allocs "
                 "%llu\n",
                 row.px, row.py, row.serialized.p50_ms, row.overlapped.p50_ms,
                 row.speedup, row.overlap_efficiency * 100.0,
                 static_cast<unsigned long long>(
                     row.overlapped.steady_state_allocs));
    rows.push_back(row);
  }

  // --- health-monitor overhead: the always-on monitor must cost < 2% per
  // step. Same 2x2 overlapped rollout with the monitor off, then on; the
  // difference in mean step time is the per-step NaN/Inf scan plus the
  // per-strip interface-residual probes (docs/observability.md).
  double health_overhead_pct = 0.0;
  {
    core::ParallelTrainReport report;
    report.ranks = 4;
    report.dims = parpde::mpi::dims_create(4);
    const parpde::domain::Partition part(grid, grid, report.dims.px,
                                         report.dims.py);
    report.rank_outcomes.resize(4);
    for (int r = 0; r < 4; ++r) {
      auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
      outcome.rank = r;
      outcome.block = part.block_of_rank(r);
      outcome.parameters = params;
    }
    const int total_steps = steps + warmup;
    double mean_ms[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
      core::RolloutOptions ropts;
      ropts.engine = core::RolloutEngine::kOverlapped;
      ropts.record_every = record_every;
      ropts.backend = bk;
      ropts.monitor_health = i == 1;
      std::fprintf(stderr, "2x2 overlapped, health monitor %s...\n",
                   i == 1 ? "on" : "off");
      mean_ms[i] =
          summarize(core::parallel_rollout(cfg, report, initial, total_steps,
                                           ropts),
                    warmup)
              .mean_ms;
    }
    health_overhead_pct = mean_ms[0] > 0.0
                              ? (mean_ms[1] - mean_ms[0]) / mean_ms[0] * 100.0
                              : 0.0;
    std::fprintf(stderr,
                 "health monitor: off %.3f ms | on %.3f ms | overhead "
                 "%.2f%%\n",
                 mean_ms[0], mean_ms[1], health_overhead_pct);
  }

  const auto emit = [&](std::FILE* f) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"rollout_latency\",\n"
                 "  \"grid\": %d,\n"
                 "  \"steps\": %d,\n"
                 "  \"warmup\": %d,\n"
                 "  \"threads\": %d,\n"
                 "  \"record_every\": %d,\n"
                 "  \"backend\": \"%s\",\n"
                 "  \"network\": \"table1\",\n"
                 "  \"health_overhead_pct\": %.2f,\n"
                 "  \"partitions\": [\n",
                 grid, steps, warmup, threads, record_every, bk->name(),
                 health_overhead_pct);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "  {\"px\": %d, \"py\": %d, \"ranks\": %d,\n",
                   row.px, row.py, row.px * row.py);
      print_engine_json(f, "serialized", row.serialized);
      std::fprintf(f, ",\n");
      print_engine_json(f, "overlapped", row.overlapped);
      std::fprintf(f,
                   ",\n    \"speedup\": %.4f, \"overlap_efficiency\": %.4f}%s\n",
                   row.speedup, row.overlap_efficiency,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
  };

  emit(stdout);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    emit(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }

  // --- int8 vs fp32 backend race: the quantization acceptance numbers. -------
  // Same 4-rank overlapped halo-pad rollout through both execution providers;
  // reports the per-step speedup (target >= 2x) and the worst relative L2
  // between the recorded frames against the int8 error budget (the bound
  // tests/test_quant_rollout.cpp enforces; see docs/performance.md).
  {
    constexpr double kQuantErrorBudget = 5e-2;
    core::ParallelTrainReport report;
    report.ranks = 4;
    report.dims = parpde::mpi::dims_create(4);
    const parpde::domain::Partition part(grid, grid, report.dims.px,
                                         report.dims.py);
    report.rank_outcomes.resize(4);
    for (int r = 0; r < 4; ++r) {
      auto& outcome = report.rank_outcomes[static_cast<std::size_t>(r)];
      outcome.rank = r;
      outcome.block = part.block_of_rank(r);
      outcome.parameters = params;
    }
    const int total_steps = steps + warmup;
    const int quant_record = std::max(1, steps / 4);

    EngineStats stats[2];
    std::vector<Tensor> frames[2];
    const char* names[2] = {"fp32", "int8"};
    for (int i = 0; i < 2; ++i) {
      core::RolloutOptions ropts;
      ropts.engine = core::RolloutEngine::kOverlapped;
      ropts.record_every = quant_record;
      ropts.backend = parpde::backend::by_name(names[i]);
      std::fprintf(stderr, "2x2 overlapped, %s backend...\n", names[i]);
      auto result =
          core::parallel_rollout(cfg, report, initial, total_steps, ropts);
      stats[i] = summarize(result, warmup);
      frames[i] = std::move(result.frames);
    }
    double max_rel_l2 = 0.0;
    for (std::size_t i = 0;
         i < std::min(frames[0].size(), frames[1].size()); ++i) {
      max_rel_l2 = std::max(max_rel_l2, relative_l2(frames[1][i], frames[0][i]));
    }
    const double speedup =
        stats[1].mean_ms > 0.0 ? stats[0].mean_ms / stats[1].mean_ms : 0.0;
    std::fprintf(stderr,
                 "int8 vs fp32: fp32 p50 %.3f ms | int8 p50 %.3f ms | "
                 "speedup %.2fx | max rel L2 %.2e (budget %.0e)\n",
                 stats[0].p50_ms, stats[1].p50_ms, speedup, max_rel_l2,
                 kQuantErrorBudget);

    const auto emit_quant = [&](std::FILE* f) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"quant_rollout\",\n"
                   "  \"grid\": %d,\n"
                   "  \"steps\": %d,\n"
                   "  \"warmup\": %d,\n"
                   "  \"threads\": %d,\n"
                   "  \"ranks\": 4,\n"
                   "  \"engine\": \"overlapped\",\n"
                   "  \"network\": \"table1\",\n",
                   grid, steps, warmup, threads);
      for (int i = 0; i < 2; ++i) {
        std::fprintf(f, "  ");
        print_engine_json(f, names[i], stats[i]);
        std::fprintf(f, ",\n");
      }
      std::fprintf(f,
                   "  \"speedup\": %.4f,\n"
                   "  \"max_rel_l2\": %.6e,\n"
                   "  \"error_budget\": %.1e,\n"
                   "  \"within_budget\": %s\n"
                   "}\n",
                   speedup, max_rel_l2, kQuantErrorBudget,
                   max_rel_l2 <= kQuantErrorBudget ? "true" : "false");
    };
    // Only the file gets the quant JSON — stdout already carries the rollout
    // object and must stay parseable as a single document.
    if (std::FILE* f = std::fopen(quant_path.c_str(), "w")) {
      emit_quant(f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", quant_path.c_str());
    } else {
      std::fprintf(stderr, "could not open %s for writing\n",
                   quant_path.c_str());
      return 1;
    }
  }
  return 0;
}
