// How much neighbour data does inference actually need? A halo-pad model is
// trained with the full receptive-field halo (R = layers * (k-1)/2, the width
// that makes distributed inference exactly monolithic), then evaluated with
// the exchanged halo truncated to h < R (the missing rim is zero-filled).
// This trades accuracy against communication volume — the knob a production
// deployment of the paper's scheme would tune.
//
// Flags: --grid --frames --epochs --ranks

#include <cstdio>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/parallel_trainer.hpp"
#include "domain/halo.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"

using namespace parpde;
using namespace parpde::core;

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  if (!opts.has("grid") && !setup.full_scale) setup.grid = 40;
  if (!opts.has("epochs") && !setup.full_scale) setup.epochs = 40;
  if (!opts.has("loss")) setup.loss = "mse";
  setup.border = BorderMode::kHaloPad;
  const int ranks = opts.get_int("ranks", 4);
  bench::print_setup("halo-width sensitivity (inference)", setup);

  const auto dataset = bench::generate_dataset(setup);
  const TrainConfig config = bench::make_train_config(setup);
  const std::int64_t full_halo = config.network.receptive_halo();

  std::printf("training %d halo-pad networks (full halo %lld)...\n", ranks,
              static_cast<long long>(full_halo));
  std::fflush(stdout);
  const ParallelTrainer trainer(config, ranks);
  const auto report = trainer.train(dataset, ExecutionMode::kIsolated);

  // Rebuild the per-rank models once.
  std::vector<std::unique_ptr<nn::Sequential>> models;
  for (const auto& outcome : report.rank_outcomes) {
    util::Rng rng(config.seed);
    auto model = build_model(config.network, config.border, rng);
    import_parameters(*model, outcome.parameters);
    models.push_back(std::move(model));
  }
  const domain::Partition part(dataset.height(), dataset.width(),
                               report.dims.px, report.dims.py);
  const auto split = dataset.chronological_split(config.train_fraction);

  util::Table table({"exchanged halo h", "halo bytes/step (est)",
                     "pressure rel-L2", "overall rel-L2"});
  for (const std::int64_t h : {full_halo, full_halo / 2, full_halo / 4,
                               std::int64_t{1}, std::int64_t{0}}) {
    util::RunningStat p_err, all_err;
    std::uint64_t bytes = 0;
    for (const auto pair : split.val) {
      Tensor assembled({4, dataset.height(), dataset.width()});
      for (int r = 0; r < ranks; ++r) {
        const auto block = part.block_of_rank(r);
        // Exchange only h lines, zero-fill the remaining rim up to the full
        // receptive halo the model expects.
        Tensor input = domain::extract_with_halo(dataset.frame(pair), block, h);
        input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
        if (h < full_halo) input = ops::pad_nchw(input, full_halo - h);
        Tensor out = models[static_cast<std::size_t>(r)]->forward(input);
        out.reshape({out.dim(1), out.dim(2), out.dim(3)});
        domain::insert_interior(assembled, block, out);
        // Estimated exchanged volume: 4 channels, 4 edges of width h (upper
        // bound; boundary ranks send less).
        bytes += static_cast<std::uint64_t>(
            4 * h * 2 * (block.height() + block.width()) * sizeof(float));
      }
      const auto per_channel = channel_metrics(assembled, dataset.frame(pair + 1));
      p_err.add(per_channel[euler::kPressure].rel_l2);
      all_err.add(overall_metrics(assembled, dataset.frame(pair + 1)).rel_l2);
    }
    table.add_row({std::to_string(h),
                   std::to_string(bytes / split.val.size()),
                   util::Table::fmt_sci(p_err.mean()),
                   util::Table::fmt_sci(all_err.mean())});
  }
  table.print("\none-step accuracy vs exchanged halo width (model trained "
              "with h = " + std::to_string(full_halo) + "):");
  std::printf("\nh = full receptive halo reproduces the monolithic network "
              "exactly; smaller h\ntrades seam accuracy for proportionally "
              "less p2p traffic (h = 0 is zero-pad-style\ncommunication-free "
              "inference with a halo-pad-trained model).\n");
  return 0;
}
