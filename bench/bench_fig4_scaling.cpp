// Fig. 4 reproduction: strong scalability of the communication-free parallel
// training scheme, 1..64 ranks on a fixed dataset.
//
// Paper claim: "an almost perfect strong scaling, where the training time
// reduces as the number of CPU cores are increased."
//
// Measurement protocol on this single-core sandbox (DESIGN.md §5): each
// rank's training runs in isolation and is timed individually; since training
// is communication-free (asserted by the concurrent-mode counters and by
// tests), the parallel wall time on P dedicated cores is exactly
// max_r(T_r). Speedup is reported against the sequential (1-rank) baseline.
//
// Flags: --grid --frames --epochs --max-ranks; PARPDE_FULL=1 for paper scale.

#include <cstdio>
#include <string>

#include "common.hpp"
#include "core/parallel_trainer.hpp"
#include "util/telemetry.hpp"

using namespace parpde;
using namespace parpde::core;

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  // Scaling defaults: a 64^2 grid fits the full 1..64-rank sweep (the paper's
  // 256^2 needs PARPDE_FULL=1); few epochs suffice since the measurement is
  // time, not model quality. Zero-pad border keeps per-rank work exactly
  // proportional to subdomain area; --border=halo shows the halo-overlap
  // efficiency droop at high rank counts.
  if (!opts.has("grid") && !setup.full_scale) setup.grid = 64;
  if (!opts.has("epochs") && !setup.full_scale) setup.epochs = 4;
  if (!opts.has("border")) setup.border = core::BorderMode::kZeroPad;
  const int max_ranks = opts.get_int("max-ranks", 64);
  bench::print_setup("Fig. 4: strong scaling of training time", setup);

  const auto dataset = bench::generate_dataset(setup);
  const TrainConfig config = bench::make_train_config(setup);

  util::Table fig4({"ranks", "grid/rank", "T_rank max [s]", "T_rank min [s]",
                    "speedup", "efficiency", "sum work [s]"});
  double t1 = 0.0;
  std::string json_rows;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    const mpi::Dims dims = mpi::dims_create(ranks);
    if (dataset.height() / dims.py < config.network.kernel ||
        dataset.width() / dims.px < config.network.kernel) {
      std::printf("stopping at %d ranks: subdomains smaller than the kernel\n",
                  ranks);
      break;
    }
    const ParallelTrainer trainer(config, ranks);
    // Per-configuration telemetry window: the counters read below cover
    // exactly this training run.
    telemetry::Registry::global().reset();
    const auto report = trainer.train(dataset, ExecutionMode::kIsolated);

    double tmin = report.rank_outcomes.front().result.seconds;
    for (const auto& o : report.rank_outcomes) {
      tmin = std::min(tmin, o.result.seconds);
    }
    const double tmax = report.modeled_parallel_seconds();
    if (ranks == 1) t1 = tmax;
    const double speedup = t1 / tmax;
    char per_rank[32];
    std::snprintf(per_rank, sizeof(per_rank), "%lldx%lld",
                  static_cast<long long>(dataset.width() / dims.px),
                  static_cast<long long>(dataset.height() / dims.py));
    fig4.add_row({std::to_string(ranks), per_rank, util::Table::fmt(tmax, 3),
                  util::Table::fmt(tmin, 3), util::Table::fmt(speedup, 2),
                  util::Table::fmt(speedup / ranks, 3),
                  util::Table::fmt(report.total_work_seconds(), 3)});
    std::printf("ranks=%3d done: modeled parallel time %.3fs (speedup %.2fx)\n",
                ranks, tmax, speedup);
    std::fflush(stdout);

    // Measured comm/compute split from the telemetry registry: training is
    // communication-free by construction, so comm_seconds (halo-exchange
    // latency histogram) and comm bytes are expected to be 0 — the JSON makes
    // that measured, not assumed.
    telemetry::JsonObject row;
    row.field("ranks", ranks)
        .field("t_parallel_seconds", tmax)
        .field("t_min_seconds", tmin)
        .field("speedup", speedup)
        .field("efficiency", speedup / ranks)
        .field("compute_seconds", report.total_work_seconds())
        .field("comm_seconds",
               telemetry::histogram("halo.exchange_seconds").sum())
        .field("comm_bytes_sent",
               telemetry::counter("comm.bytes_sent").value())
        .field("comm_bytes_received",
               telemetry::counter("comm.bytes_received").value())
        .field("gemm_flops", telemetry::counter("gemm.flops").value())
        .field("pool_chunks", telemetry::counter("pool.chunks").value());
    if (!json_rows.empty()) json_rows += ',';
    json_rows += row.str();
  }
  fig4.print("\nFig. 4 | strong scaling (modeled parallel time = max over "
             "per-rank isolated training times):");
  std::printf("\n{\"bench\":\"fig4_scaling\",\"grid\":%d,\"epochs\":%d,"
              "\"results\":[%s]}\n",
              setup.grid, setup.epochs, json_rows.c_str());
  std::printf(
      "\nNote: training is communication-free, so max_r(T_r) is the exact\n"
      "wall time of P dedicated cores; this sandbox serializes ranks on one\n"
      "core (see DESIGN.md \"Fig. 4 measurement protocol\").\n");
  return 0;
}
