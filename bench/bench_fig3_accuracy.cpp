// Fig. 3 reproduction: one-step prediction accuracy of the domain-decomposed
// networks against the solver's validation frames, per physical channel
// (pressure, density, vel-x, vel-y), plus the centerline profile comparison
// and the Sec. IV-B rollout error-accumulation series.
//
// Paper claim: "a very good agreement between the prediction and target data
// ... small discrepancies in the velocities ... the accuracy drops after one
// time step prediction."
//
// Two variants are reported:
//   A. paper-faithful — raw fields (background included), MAPE loss;
//   B. normalized    — per-channel standardized fields, MSE loss.
// Variant A reproduces the paper's qualitative outcome (excellent pressure/
// density, weaker velocities); variant B closes the velocity gap (see
// EXPERIMENTS.md).
//
// Flags: --ranks=N --grid=N --frames=N --epochs=N --variant=paper|normalized
// PARPDE_FULL=1 switches to the paper's 256^2 / 1500-frame scale.

#include <cstdio>
#include <optional>

#include "common.hpp"
#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/parallel_trainer.hpp"
#include "util/stats.hpp"

using namespace parpde;
using namespace parpde::core;

namespace {

void run_variant(const std::string& name, const data::FrameDataset& train_view,
                 const data::FrameDataset& raw, const TrainConfig& config,
                 const data::ChannelNormalizer* normalizer, int ranks) {
  std::printf("\n--- variant: %s (loss %s) ---\n", name.c_str(),
              config.loss.c_str());
  std::printf("training %d subdomain networks (%d epochs each)...\n", ranks,
              config.epochs);
  std::fflush(stdout);
  const ParallelTrainer trainer(config, ranks);
  const auto report = trainer.train(train_view, ExecutionMode::kIsolated);
  std::printf("training done: mean final %s loss = %.6g, modeled parallel "
              "time = %.2fs\n",
              config.loss.c_str(), report.mean_final_loss(),
              report.modeled_parallel_seconds());

  const SubdomainEnsemble ensemble(config, report, train_view.height(),
                                   train_view.width());
  const auto split = train_view.chronological_split(config.train_fraction);

  auto to_physical = [&](const Tensor& t) {
    return normalizer != nullptr ? normalizer->invert(t) : t;
  };

  // --- per-channel one-step metrics over the validation set (Fig. 3) -------
  std::vector<util::RunningStat> mape(4), rmse(4), maxe(4), rel(4);
  for (const auto pair : split.val) {
    const Tensor pred = to_physical(ensemble.predict(train_view.frame(pair)));
    const auto per_channel = channel_metrics(pred, raw.frame(pair + 1));
    for (std::size_t c = 0; c < 4; ++c) {
      mape[c].add(per_channel[c].mape);
      rmse[c].add(per_channel[c].rmse);
      maxe[c].add(per_channel[c].max_err);
      rel[c].add(per_channel[c].rel_l2);
    }
  }
  util::Table fig3({"channel", "MAPE[%]", "RMSE", "max|err|", "rel-L2"});
  for (std::int64_t c = 0; c < 4; ++c) {
    fig3.add_row({channel_name(c), util::Table::fmt(mape[c].mean(), 3),
                  util::Table::fmt_sci(rmse[c].mean()),
                  util::Table::fmt_sci(maxe[c].mean()),
                  util::Table::fmt_sci(rel[c].mean())});
  }
  fig3.print("Fig. 3 | one-step prediction vs target, validation mean (" +
             std::to_string(split.val.size()) + " frames):");

  // --- centerline profile of the first validation pair ---------------------
  const auto pair0 = split.val.front();
  const Tensor pred0 = to_physical(ensemble.predict(train_view.frame(pair0)));
  const auto pred_line = centerline(pred0, euler::kPressure);
  const auto target_line = centerline(raw.frame(pair0 + 1), euler::kPressure);
  util::Table profile({"x-index", "target p", "predicted p", "abs err"});
  const std::size_t stride = std::max<std::size_t>(1, pred_line.size() / 8);
  for (std::size_t i = 0; i < pred_line.size(); i += stride) {
    profile.add_row({std::to_string(i), util::Table::fmt(target_line[i], 5),
                     util::Table::fmt(pred_line[i], 5),
                     util::Table::fmt_sci(std::abs(pred_line[i] - target_line[i]))});
  }
  profile.print("\nFig. 3 | pressure centerline, first validation frame:");

  // --- rollout error accumulation (Sec. IV-B) ------------------------------
  const int max_steps = std::min<int>(8, static_cast<int>(split.val.size()) - 1);
  if (max_steps >= 2) {
    const auto rollout = parallel_rollout(config, report,
                                          train_view.frame(pair0), max_steps);
    std::vector<Tensor> preds;
    std::vector<Tensor> truths;
    for (int k = 0; k < max_steps; ++k) {
      preds.push_back(to_physical(rollout.frames[static_cast<std::size_t>(k)]));
      truths.push_back(raw.frame(pair0 + k + 1));
    }
    const auto curve = rollout_error_curve(preds, truths);
    util::Table growth({"rollout step", "rel-L2 error"});
    for (std::size_t k = 0; k < curve.size(); ++k) {
      growth.add_row({std::to_string(k + 1), util::Table::fmt_sci(curve[k])});
    }
    growth.print(
        "\nSec. IV-B | autoregressive rollout error (accumulates with step):");
    std::printf("halo traffic during rollout: %llu bytes, comm %.4fs, "
                "compute %.4fs\n",
                static_cast<unsigned long long>(rollout.halo_bytes),
                rollout.comm_seconds, rollout.compute_seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto setup = bench::parse_setup(argc, argv);
  const util::Options opts(argc, argv);
  if (!opts.has("epochs") && !setup.full_scale) setup.epochs = 60;
  const int ranks = opts.get_int("ranks", 4);
  const std::string which = opts.get_string("variant", "both");
  bench::print_setup("Fig. 3: one-step prediction accuracy", setup);
  std::printf("ranks: %d\n", ranks);

  const auto raw = bench::generate_dataset(setup);

  if (which == "paper" || which == "both") {
    TrainConfig config = bench::make_train_config(setup);
    run_variant("paper-faithful (raw fields)", raw, raw, config, nullptr, ranks);
  }
  if (which == "normalized" || which == "both") {
    const auto normalized = bench::normalize_dataset(raw, setup.train_fraction);
    TrainConfig config = bench::make_train_config(setup);
    config.loss = "mse";
    config.learning_rate = std::max(setup.learning_rate, 5e-3);
    run_variant("normalized (per-channel standardized)", normalized.dataset,
                raw, config, &normalized.normalizer, ranks);
  }
  return 0;
}
